//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro over
//! named arguments drawn from strategies, numeric-range and `any::<T>()`
//! strategies, `collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Failing cases are **not shrunk** — the failure message reports the
//! case index and the assertion that fired. Case generation is seeded per
//! test-function name, so runs are deterministic.

use std::ops::Range;

pub mod test_runner {
    //! Runner configuration (mirrors `proptest::test_runner`).

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Deterministic source the strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng(rand::SplitMix64);

impl TestRng {
    /// Seeds the generator; each property function gets its own stream.
    pub fn new(seed: u64) -> Self {
        TestRng(rand::SplitMix64::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF))
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Hashes a test name into a seed (FNV-1a), so each property gets a
/// distinct but reproducible stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator. Unlike real proptest there is no shrinking; a
/// strategy is just a sampler.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_strategy_for_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_for_float_range!(f32, f64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e3
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() * 2.0 - 1.0) * 1e6
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of a nested strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len_range)` — a vector whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Runs the property body over `cases` sampled inputs. Used by the
/// [`proptest!`] expansion; not part of the public upstream API.
pub fn run_cases(cases: u32, mut case: impl FnMut(&mut TestRng, u32)) {
    let mut rng = TestRng::new(seed_from_name("proptest-shared-stream"));
    for i in 0..cases {
        case(&mut rng, i);
    }
}

/// Property-test entry macro. Matches the upstream grammar for the forms
/// this workspace uses:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]   // optional
///     #[test]
///     fn prop_name(x in 0u32..10, v in collection::vec(0f32..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for case_index in 0..config.cases {
                    $( let $arg = $crate::Strategy::new_value(&($strat), &mut rng); )+
                    // The body runs inside a closure so that `prop_assume!`
                    // can skip the case with a plain `return`.
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || $body,
                    ));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest stand-in: property `{}` failed on case {} of {} (no shrinking)",
                            stringify!($name), case_index, config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )+
        }
    };
}

/// Asserts within a property body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_length(v in collection::vec(0u64..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(seed in any::<u64>()) {
            let _ = seed;
        }
    }
}
