//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/API surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with `sample_size` / `measurement_time`, and
//! [`BenchmarkId`] — backed by a simple median-of-samples wall-clock
//! harness rather than criterion's statistical machinery. Output goes to
//! stdout as `name ... median ns/iter`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's own is a re-export
/// of the same intrinsic on recent toolchains).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing state handed to bench closures.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Median nanoseconds per iteration of the last `iter` call.
    last_median_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median ns/iter across samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a per-call cost.
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        // Aim each sample at ~budget/samples of wall time.
        let per_sample = (self.budget / self.samples.max(1) as u32).max(Duration::from_micros(10));
        let iters_per_sample = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut medians: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            medians.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        medians.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.last_median_ns = medians[medians.len() / 2];
    }
}

fn run_one(label: &str, samples: usize, budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        budget,
        last_median_ns: 0.0,
    };
    f(&mut b);
    println!("bench {label:<48} {:>14.1} ns/iter", b.last_median_ns);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            self.criterion.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepts CLI args for compatibility; filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, self.measurement_time, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let mut group = c.benchmark_group("grp");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
