//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (D. J. Bernstein's
//! ChaCha with 8 double-rounds) behind the `rand` stand-in's traits. The
//! workspace only relies on *seeded determinism* and statistical quality,
//! not on bit-compatibility with the upstream crate's stream layout.

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter + 64-bit nonce (fixed to zero).
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14/15 are the nonce, fixed to zero.
        let input = state;
        for _ in 0..4 {
            // One iteration = two double-rounds; 4 × 2 = ChaCha8.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_floats_have_sane_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits; expect ~32 000 ones.
        assert!((31_000..33_000).contains(&ones), "{ones}");
    }
}
