//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the (small) subset of the `rand 0.8` API the workspace
//! uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen_range` / `gen_bool` / `gen`, and [`seq::SliceRandom::shuffle`].
//!
//! The generators behind it live in the sibling `rand_chacha` stand-in.
//! Streams are deterministic in the seed but are **not** bit-compatible
//! with the upstream crates — nothing in this workspace depends on exact
//! upstream streams, only on seeded reproducibility.

pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: the raw integer sources.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly once per seed word (the upstream convention).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as the engine behind the
/// strategy sampling in the vendored `proptest`.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A type with a canonical uniform sampler over half-open and inclusive
/// bounds. Mirrors upstream's `SampleUniform`, whose *blanket*
/// `SampleRange` impls over `Range<T>` / `RangeInclusive<T>` are what let
/// type inference flow outward from expressions like
/// `x += rng.gen_range(-0.05..0.05)`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

// Float units use exactly mantissa-many random bits ((u >> (64-M)) / 2^M)
// so the division is exact: the unit is strictly below 1.0 for the
// half-open case rather than occasionally rounding up to 1.0 and
// returning `hi`.
macro_rules! impl_sample_uniform_float {
    ($($t:ty, $mant:expr);*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> (64 - $mant)) as $t / (1u64 << $mant) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> (64 - $mant)) as $t / ((1u64 << $mant) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, 24; f64, 53);

/// A range that knows how to sample a uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value uniformly over the type's canonical domain
    /// (`[0, 1)` for floats, all bit patterns for integers).
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::draw(self) < p
    }

    /// Uniform draw over a type's canonical domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&m));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
