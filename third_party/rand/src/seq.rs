//! Slice helpers mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Shuffling and random selection over slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chooses one element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SplitMix64::new(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
