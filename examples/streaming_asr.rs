//! Streaming ASR demo: two live speakers stream audio chunks into the
//! serving runtime as stateful sessions. Recurrent state persists
//! between chunks on each session's pinned device, partial phone
//! hypotheses grow as chunks complete, and both the stitched logits and
//! the final transcript are bit-identical to serving each utterance
//! whole.
//!
//! Run with: `cargo run --release --example streaming_asr`

use ernn::asr::phones::PhoneSet;
use ernn::asr::{decode_frames, IncrementalDecoder, SynthCorpus, SynthCorpusConfig};
use ernn::model::{CellType, ModelSpec};
use ernn::pipeline::Pipeline;
use ernn::serve::{
    BatchPolicy, ExecutorKind, Request, Response, RuntimeConfig, ServeRuntime, Workload,
};
use rand::SeedableRng;

const CHUNK_FRAMES: usize = 8;

fn main() {
    // 1. A corpus and a compiled acoustic model (paper preset: block 8,
    //    12-bit datapath, XCKU060). Random weights exercise exactly the
    //    same streaming path a trained model would.
    let corpus = SynthCorpus::generate(&SynthCorpusConfig::tiny(42));
    let phones = PhoneSet::standard();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let spec =
        ModelSpec::new(CellType::Gru, corpus.feature_dim, corpus.num_classes()).layer_dims(&[64]);
    let model = Pipeline::paper(spec)
        .expect("valid spec")
        .init(&mut rng)
        .project()
        .expect("paper block policy")
        .quantize()
        .expect("paper datapath")
        .compile()
        .expect("paper platform")
        .into_model();

    // 2. Two speakers stream concurrently: each utterance becomes a
    //    session of CHUNK_FRAMES-frame chunks arriving on a real-time
    //    cadence, interleaved in arrival order.
    let utts: Vec<Vec<Vec<f32>>> = corpus
        .test
        .iter()
        .take(2)
        .map(|u| u.features.clone())
        .collect();
    let mut requests = Vec::new();
    let mut next_id = 0u64;
    for (session, utt) in utts.iter().enumerate() {
        let chunks = utt.len().div_ceil(CHUNK_FRAMES);
        for i in 0..chunks {
            let frames = utt[i * CHUNK_FRAMES..((i + 1) * CHUNK_FRAMES).min(utt.len())].to_vec();
            requests.push(Request::chunk(
                next_id,
                session as u64,
                i as u32,
                i == chunks - 1,
                frames,
                40.0 * session as f64 + 120.0 * i as f64,
            ));
            next_id += 1;
        }
        println!(
            "session {session}: {} frames as {chunks} chunks of ≤ {CHUNK_FRAMES}",
            utt.len()
        );
    }
    requests.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us).then(a.id.cmp(&b.id)));

    // 3. Serve on two devices with the thread-pool executor. Sessions
    //    are pinned (state never migrates); batches may span sessions
    //    but close at chunk boundaries.
    let runtime = ServeRuntime::with_config(
        model,
        2,
        BatchPolicy::new(4, 60.0),
        RuntimeConfig::new()
            .executor(ExecutorKind::ThreadPool)
            .max_live_sessions(8),
    );
    let model = runtime.model().clone();
    let report = runtime.run(requests);
    println!(
        "\nserved {} chunks across {} sessions; {}",
        report.metrics.chunks, report.metrics.sessions, report.metrics
    );

    // 4. Replay each session's responses in chunk order through the
    //    incremental decoder: the hypothesis grows while the speaker is
    //    still talking, and the finished transcript is bit-identical to
    //    batch-decoding the whole utterance.
    for (session, utt) in utts.iter().enumerate() {
        let mut chunks: Vec<&Response> = report
            .responses
            .iter()
            .filter(|r| r.workload.session() == Some(session as u64))
            .collect();
        chunks.sort_by_key(|r| r.id);
        let device = chunks[0].device.expect("served");
        assert!(
            chunks.iter().all(|r| r.device == Some(device)),
            "session state never migrates"
        );

        println!("\nsession {session} (pinned to device {device}):");
        let mut decoder = IncrementalDecoder::new(PhoneSet::SILENCE, 2);
        let mut stitched: Vec<Vec<f32>> = Vec::new();
        for r in &chunks {
            decoder.push_chunk(&r.logits);
            stitched.extend(r.logits.iter().cloned());
            let Workload::Chunk { index, .. } = r.workload else {
                unreachable!("session responses are chunks");
            };
            let partial: Vec<&str> = decoder
                .hypothesis()
                .iter()
                .map(|&p| phones.get(p).symbol)
                .collect();
            println!(
                "  chunk {index} done at t = {:7.1} µs → partial: [{}]",
                r.complete_us,
                partial.join(" ")
            );
        }

        // The streamed path reproduces whole-utterance serving exactly.
        let whole = model.infer(utt);
        assert_eq!(stitched, whole, "stitched logits are bit-identical");
        let final_hyp = decoder.finish();
        assert_eq!(
            final_hyp,
            decode_frames(&whole, PhoneSet::SILENCE, 2),
            "incremental decode matches the batch decoder"
        );
        let symbols: Vec<&str> = final_hyp.iter().map(|&p| phones.get(p).symbol).collect();
        println!("  final transcript: [{}]", symbols.join(" "));
    }
    println!("\nstreamed results bit-identical to whole-utterance serving ✓");
}
