//! The two-phase E-RNN design-optimization flow (paper Fig. 2 + Sec. VII):
//! Phase I derives the model (cell type, block sizes) under an accuracy
//! budget with a bounded number of training trials; Phase II derives the
//! datapath (quantization, PWL activations) and reports the hardware.
//!
//! Run with: `cargo run --release --example design_explorer`
//! (add `--full` for the experiment-scale configuration)

use ernn::core::explore::{block_size_bounds, Fig8Curve};
use ernn::core::flow::{run_flow, FlowConfig};
use ernn::fpga::XCKU060;

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    // The two explorations that bound Phase I's search:
    let bounds = block_size_bounds(1024, &XCKU060);
    println!(
        "block-size bounds on {}: BRAM floor {} .. compute ceiling {} ({} candidates)",
        XCKU060.name, bounds.lower, bounds.upper, bounds.candidates
    );
    println!("{}", Fig8Curve::paper(1024).render());

    // The full flow: Phase I (real ADMM training trials on the synthetic
    // corpus) + Phase II (quantization scan + hardware report).
    let config = if full {
        FlowConfig::standard(11)
    } else {
        FlowConfig::quick(11)
    };
    let report = run_flow(config);
    println!("{}", report.render());
    println!("Phase-I trials:");
    for (i, t) in report.phase1.trials.iter().enumerate() {
        println!(
            "  trial {}: {:?} block {} io {} -> PER {:.2}% [{}]",
            i + 1,
            t.spec.cell,
            t.spec.block,
            t.spec.io_block,
            t.per,
            if t.accepted { "ok" } else { "rejected" }
        );
    }
    println!("Phase-II quantization scan:");
    for (bits, per) in &report.phase2.quant_trials {
        println!("  {bits:>2}-bit fixed point -> PER {per:.2}%");
    }
}
