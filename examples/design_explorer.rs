//! The two-phase E-RNN design-optimization flow (paper Fig. 2 + Sec. VII):
//! Phase I derives the model (cell type, block sizes) under an accuracy
//! budget with a bounded number of training trials; Phase II derives the
//! datapath (quantization, PWL activations) and reports the hardware.
//!
//! Run with: `cargo run --release --example design_explorer`
//! (add `--full` for the experiment-scale configuration)

use ernn::core::explore::{block_size_bounds, Fig8Curve};
use ernn::core::flow::{run_flow_to_artifact, FlowConfig};
use ernn::fpga::XCKU060;

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    // The two explorations that bound Phase I's search:
    let bounds = block_size_bounds(1024, &XCKU060);
    println!(
        "block-size bounds on {}: BRAM floor {} .. compute ceiling {} ({} candidates)",
        XCKU060.name, bounds.lower, bounds.upper, bounds.candidates
    );
    println!("{}", Fig8Curve::paper(1024).render());

    // The full flow: Phase I (real ADMM training trials on the synthetic
    // corpus) + Phase II (quantization scan + hardware report), carried
    // through the lifecycle pipeline into a deployable artifact.
    let config = if full {
        FlowConfig::standard(11)
    } else {
        FlowConfig::quick(11)
    };
    let (report, built) = run_flow_to_artifact(config).expect("flow pipelines");
    println!("{}", report.render());
    println!("Phase-I trials:");
    for (i, t) in report.phase1.trials.iter().enumerate() {
        println!(
            "  trial {}: {:?} block {} io {} -> PER {:.2}% [{}]",
            i + 1,
            t.spec.cell,
            t.spec.block,
            t.spec.io_block,
            t.per,
            if t.accepted { "ok" } else { "rejected" }
        );
    }
    println!("Phase-II quantization scan:");
    for (bits, per) in &report.phase2.quant_trials {
        println!("  {bits:>2}-bit fixed point -> PER {per:.2}%");
    }

    // The flow's output is no longer just a report: the winning trained
    // model left as a versioned, loadable artifact.
    let bytes = built.save_bytes();
    println!(
        "deployable artifact: {} bytes ({} {:?} on {}, provenance: {} Phase-I trials, \
         {} quantization trials)",
        bytes.len(),
        built.artifact().spec.cell,
        built.artifact().spec.layer_dims,
        built.artifact().device.name,
        built
            .artifact()
            .provenance
            .phase1
            .as_ref()
            .map_or(0, |p| p.trials.len()),
        built.artifact().provenance.quant_trials.len(),
    );
}
