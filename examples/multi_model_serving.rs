//! Multi-model serving demo: two acoustic models of different sizes —
//! an interactive tenant with a tight SLO and a batch tenant with a
//! loose one — sharing a heterogeneous two-platform pool (XCKU060 +
//! Virtex-7 690t) under the SLO-aware scheduler.
//!
//! Shows the three scheduler levers side by side on the same offered
//! load:
//!
//! 1. the naive baseline (FIFO queue, earliest-free placement),
//! 2. EDF ordering + cost-model placement (deadline-aware, residency-
//!    and platform-speed-aware), and
//! 3. the same plus admission control (predicted-late requests get an
//!    immediate deadline-miss response instead of poisoning the queue).
//!
//! Both tenants are built through the `ernn::pipeline` lifecycle and
//! deployed as serialized `ModelArtifact` bytes — the registry loads
//! them with `register_artifact`, i.e. without retraining, recompressing
//! or refreshing weight spectra beyond the decode itself.
//!
//! Each run has the full observability surface on: the flight recorder,
//! the sampled metrics timeline, and the health monitor. The per-config
//! summary breaks down where each (device, model) cell's virtual time
//! went — queue wait, weight-load stalls, compute, padding waste — and
//! prints the health verdict (the overloaded FIFO baseline burns its
//! deadline budget; the deadline-aware configs stay clean). Pass
//! `--trace-out PATH` to dump the last config's journal as Chrome trace
//! JSON for `ui.perfetto.dev` (see `docs/observability.md`).
//!
//! Pass `--shards N` to additionally serve the same tenants through the
//! cluster tier (`ernn::serve::cluster`): N single-device shards behind
//! the load-feedback affinity router, artifact replication charged on
//! the wire, and a per-shard health verdict for every shard — the same
//! monitors as the single-node runs, one scheduler per shard (see
//! `docs/cluster.md`).
//!
//! Run with: `cargo run --release --example multi_model_serving`
//! (optionally `-- --shards 4`)

use ernn::fpga::{ADM_PCIE_7V3, XCKU060};
use ernn::model::{CellType, ModelSpec};
use ernn::pipeline::Pipeline;
use ernn::serve::loadgen::{open_loop_poisson, synthetic_utterances};
use ernn::serve::sched::{AdmissionPolicy, ModelRegistry, SchedPolicy, SchedRuntime};
use ernn::serve::{
    chrome_trace_json, ClusterConfig, ClusterRuntime, ClusterSpec, HealthConfig, ModelArtifact,
    Request, RuntimeConfig, Steering, TimelineConfig, TraceConfig,
};
use rand::SeedableRng;

const DIM: usize = 52;

/// Builds a tenant model through the lifecycle pipeline (the paper
/// preset: block 8, 12-bit datapath, XCKU060) and serializes it — the
/// production shape, where models are built once and deployed as bytes.
fn build_artifact(seed: u64, hidden: usize) -> Vec<u8> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    Pipeline::paper(ModelSpec::new(CellType::Gru, DIM, 40).layer_dims(&[hidden]))
        .expect("valid spec")
        .source("examples/multi_model_serving")
        .init(&mut rng)
        .project()
        .expect("paper block policy")
        .quantize()
        .expect("paper datapath")
        .compile()
        .expect("paper platform")
        .save_bytes()
}

/// Loads the serialized tenants into a registry — no retraining, no
/// recompression, zero extra weight-spectrum refreshes.
fn registry(tenants: &[(&str, &[u8])]) -> ModelRegistry {
    let mut reg = ModelRegistry::new();
    for (name, bytes) in tenants {
        let artifact = ModelArtifact::load_bytes(bytes).expect("artifact decodes");
        reg.register_artifact(*name, &artifact);
    }
    reg
}

/// 3:1 interactive:batch traffic with per-class SLOs.
fn mixed_load(n: usize) -> Vec<Request> {
    let short = synthetic_utterances(8, (5, 15), DIM, 21);
    let long = synthetic_utterances(8, (30, 60), DIM, 22);
    open_loop_poisson(&short, n, 450_000.0, 23)
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let t = r.arrival_us;
            if i % 4 == 3 {
                Request::new(r.id, long[(i / 4) % long.len()].clone(), t)
                    .with_model(1)
                    .with_deadline(t + 20_000.0)
            } else {
                r.with_model(0).with_deadline(t + 80.0)
            }
        })
        .collect()
}

fn main() {
    let interactive = build_artifact(3, 64);
    let batch = build_artifact(4, 256);
    let tenants: Vec<(&str, &[u8])> = vec![
        ("interactive-gru64", &interactive),
        ("batch-gru256", &batch),
    ];
    let reg = registry(&tenants);
    println!(
        "registry: {} ({} KiB artifact, {} KiB on-chip) + {} ({} KiB artifact, {} KiB on-chip)",
        reg.name(0),
        interactive.len() / 1024,
        reg.weight_bytes(0) / 1024,
        reg.name(1),
        batch.len() / 1024,
        reg.weight_bytes(1) / 1024,
    );
    // Weight budget per device: one image at a time — residency matters.
    let budget = reg.weight_bytes(1) + reg.weight_bytes(0) / 2;
    drop(reg);
    let platforms = vec![XCKU060, ADM_PCIE_7V3];

    let configs: Vec<(&str, SchedPolicy)> = vec![
        (
            "fifo + earliest-free",
            SchedPolicy::fifo_earliest_free(8, 200.0).with_bram_budget_bytes(budget),
        ),
        (
            "edf + cost-model",
            SchedPolicy::edf_cost_model(8, 200.0).with_bram_budget_bytes(budget),
        ),
        (
            "edf + cost-model + shed",
            SchedPolicy::edf_cost_model(8, 200.0)
                .with_bram_budget_bytes(budget)
                .with_admission(AdmissionPolicy::ShedPredictedLate),
        ),
    ];

    let args: Vec<String> = std::env::args().collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|n| n.parse::<usize>().expect("--shards takes a count"));

    let last = configs.len() - 1;
    for (c, (label, policy)) in configs.into_iter().enumerate() {
        let runtime = SchedRuntime::with_config(
            registry(&tenants),
            platforms.clone(),
            policy,
            RuntimeConfig::new()
                .tracing(TraceConfig::enabled(1 << 14))
                .timeline(TimelineConfig::enabled(100.0, 1 << 13))
                .health(HealthConfig::enabled()),
        );
        let report = runtime.run(mixed_load(400));
        println!("\n=== {label} ===");
        println!("{}", report.metrics);
        println!(
            "scheduler: {} loads, {} evictions, {:.1} µs streaming weights, {} shed",
            report.sched.model_loads,
            report.sched.model_evictions,
            report.sched.load_us_total,
            report.sched.shed
        );
        let h = &report.health;
        println!(
            "health: {} over {} timeline samples, EWMA queue delay {:.1} µs",
            if h.healthy() {
                "HEALTHY".to_string()
            } else {
                format!("{} alert(s)", h.events.len())
            },
            report.timeline.samples.len(),
            h.ewma_queue_us,
        );
        for event in h.events.iter().take(3) {
            println!(
                "  {:?} at {:.0} µs: {:.2} crossed {:.2}",
                event.rule, event.t_us, event.value, event.threshold
            );
        }
        println!("stage attribution (virtual µs):");
        println!(
            "  {:<22} {:>5} {:>7} {:>9} {:>8} {:>9} {:>9}",
            "device / model", "reqs", "batches", "queue", "load", "compute", "padding"
        );
        for (device, model, cell) in report.trace.attribution.iter() {
            println!(
                "  {:<22} {:>5} {:>7} {:>9.1} {:>8.1} {:>9.1} {:>9.1}",
                format!("dev{device} · model {model}"),
                cell.requests,
                cell.batches,
                cell.queue_us,
                cell.load_us,
                cell.compute_us,
                cell.padding_us
            );
        }
        if c == last {
            if let Some(path) = &trace_out {
                let json = chrome_trace_json(&report.trace);
                std::fs::write(path, json).expect("write trace");
                println!(
                    "\nwrote {path} ({} events) — drop into ui.perfetto.dev",
                    report.trace.journal.events.len()
                );
            }
        }
    }

    if let Some(shards) = shards {
        serve_cluster(&tenants, shards, budget);
    }
}

/// Serves the same tenants and load through the cluster tier: `shards`
/// single-device shards (alternating platforms, so steering also has a
/// speed gradient to exploit) behind the load-feedback affinity
/// router, with the metrics timeline and health monitor on every
/// shard's scheduler.
fn serve_cluster(tenants: &[(&str, &[u8])], shards: usize, budget: u64) {
    let mut spec = ClusterSpec::new();
    for (name, bytes) in tenants {
        let artifact = ModelArtifact::load_bytes(bytes).expect("artifact decodes");
        spec.register_artifact(*name, &artifact);
    }
    let platforms: Vec<_> = (0..shards)
        .map(|s| vec![if s % 2 == 0 { XCKU060 } else { ADM_PCIE_7V3 }])
        .collect();
    // Half the ring per model: enough replicas that placement covers
    // the cluster, and any shard can lose a neighbor.
    let replication = (shards / 2).max(2).min(shards);
    let runtime = ClusterRuntime::new(
        spec,
        platforms,
        SchedPolicy::edf_cost_model(8, 200.0)
            .with_bram_budget_bytes(budget)
            .with_admission(AdmissionPolicy::ShedPredictedLate),
        RuntimeConfig::new()
            .timeline(TimelineConfig::enabled(100.0, 1 << 13))
            .health(HealthConfig::enabled()),
        ClusterConfig::new()
            .replication(replication)
            .steering(Steering::LoadFeedback),
    );
    let report = runtime.run(mixed_load(400));
    println!(
        "\n=== cluster: {shards} shards × 1 device, replication {replication}, load-feedback ==="
    );
    println!("{}", report.metrics);
    println!(
        "router: {} routed ({:.1} µs on the wire), {} artifact replications ({:.1} µs), {} shed",
        report.stats.routed,
        report.stats.forward_us_total,
        report.stats.replications,
        report.stats.replication_us_total,
        report.stats.shed_no_capacity,
    );
    println!("per-shard health:");
    for shard in &report.shards {
        let placed: Vec<&str> = shard
            .placed
            .iter()
            .map(|&m| runtime.spec().name(m))
            .collect();
        let verdict = match &shard.report {
            Some(sr) if sr.health.healthy() => "HEALTHY".to_string(),
            Some(sr) => format!("{} alert(s)", sr.health.events.len()),
            None => "idle (no models placed)".to_string(),
        };
        println!(
            "  shard {:>2} [{}]: {} — {} request(s), EWMA queue delay {:.1} µs, {} live session(s), serving [{}]",
            shard.shard,
            if shard.alive { "up" } else { "down" },
            verdict,
            shard.report.as_ref().map_or(0, |sr| sr.responses.len()),
            shard.gauges.ewma_queue_us,
            shard.gauges.live_sessions,
            placed.join(", "),
        );
    }
}
