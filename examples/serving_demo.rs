//! Serving demo: load a synthetic speech corpus, compress an acoustic
//! model into block-circulant form, compile it for the accelerator, and
//! serve an open-loop Poisson request stream across a pool of simulated
//! devices — printing latency percentiles, throughput, device occupancy,
//! the FFT'd-weight cache statistics, and the wall-clock effect of the
//! parallel host executor (virtual-time results are bit-identical by
//! construction; only `host_us` moves).
//!
//! Run with: `cargo run --release --example serving_demo`

use ernn::asr::{SynthCorpus, SynthCorpusConfig};
use ernn::fft::stats;
use ernn::model::{CellType, ModelSpec};
use ernn::pipeline::Pipeline;
use ernn::serve::loadgen::{open_loop_poisson, with_uniform_slo};
use ernn::serve::{BatchPolicy, ExecutorKind, ServeRuntime};
use rand::SeedableRng;

fn main() {
    // 1. Load: a reproducible corpus and a compressed acoustic model.
    //    (A production system would load trained weights; random weights
    //    exercise exactly the same serving path.)
    let corpus = SynthCorpus::generate(&SynthCorpusConfig::tiny(42));
    let utterances: Vec<Vec<Vec<f32>>> = corpus.test.iter().map(|u| u.features.clone()).collect();
    println!(
        "corpus: {} utterances, feature dim {}",
        utterances.len(),
        corpus.feature_dim
    );

    // 2. Build through the lifecycle pipeline under the paper preset
    //    (block 8, 12-bit datapath, XCKU060): compress, quantize,
    //    compile — the FFT'd-weight cache is filled here, once.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let spec =
        ModelSpec::new(CellType::Gru, corpus.feature_dim, corpus.num_classes()).layer_dims(&[64]);
    let model = Pipeline::paper(spec)
        .expect("valid spec")
        .init(&mut rng)
        .project()
        .expect("paper block policy")
        .quantize()
        .expect("paper datapath")
        .compile()
        .expect("paper platform")
        .into_model();
    println!(
        "compiled: {} circulant matrices, {} cached weight spectra, \
         {} weight FFTs at load",
        model.load_stats.circulant_matrices,
        model.load_stats.cached_spectra,
        model.load_stats.fft.forward_transforms
    );
    println!(
        "timing: stage cycles {:?}, II {} cycles",
        model.stage_cycles().as_array(),
        model.stage_cycles().ii()
    );

    // 3. Serve: 2 devices, batches of up to 8 with a 200 µs wait budget,
    //    open-loop Poisson traffic at 500k req/s — above one device's
    //    capacity, so the pool is what keeps latency bounded — with a
    //    5 ms latency SLO.
    let runtime = ServeRuntime::new(model, 2, BatchPolicy::new(8, 200.0));
    let requests = with_uniform_slo(open_loop_poisson(&utterances, 400, 500_000.0, 11), 5_000.0);

    let before = stats::snapshot();
    let report = runtime.run(requests);
    let during = stats::snapshot().since(&before);

    println!("\n== serving report (2 devices, batch ≤ 8, wait ≤ 200 µs) ==");
    println!("{}", report.metrics);
    println!(
        "deadline misses: {:.1}% of requests against the 5 ms SLO",
        report.metrics.deadline_miss_rate * 100.0
    );
    println!(
        "FFT activity while serving: {} forward / {} inverse transforms, \
         {} new plans (weight spectra cached at load)",
        during.forward_transforms, during.inverse_transforms, during.plans_created
    );

    // 4. The same load on a single device, for contrast.
    let single = ServeRuntime::new(runtime.model().clone(), 1, BatchPolicy::new(8, 200.0));
    let single_report = single.run(with_uniform_slo(
        open_loop_poisson(&utterances, 400, 500_000.0, 11),
        5_000.0,
    ));
    println!(
        "\n1 device drains in {:.1} ms vs {:.1} ms on 2 devices ({:.2}× speedup)",
        single_report.metrics.makespan_us / 1e3,
        report.metrics.makespan_us / 1e3,
        single_report.metrics.makespan_us / report.metrics.makespan_us
    );

    // 5. The same load through the parallel host executor: one worker
    //    per device slot, host inference overlapped across devices. The
    //    virtual-time report is bit-identical; only wall-clock host time
    //    changes (a real speedup on multi-core hosts).
    let pooled = ServeRuntime::with_executor(
        runtime.model().clone(),
        2,
        BatchPolicy::new(8, 200.0),
        ExecutorKind::ThreadPool,
    );
    let pooled_report = pooled.run(with_uniform_slo(
        open_loop_poisson(&utterances, 400, 500_000.0, 11),
        5_000.0,
    ));
    assert_eq!(
        pooled_report.metrics, report.metrics,
        "virtual-time metrics must not depend on the host executor"
    );
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "\n== host executor ({cores} cores) ==\n\
         inline:     {:.1} ms wall-clock host time\n\
         threadpool: {:.1} ms wall-clock host time ({:.2}× vs inline; \
         virtual metrics bit-identical)",
        report.host_us / 1e3,
        pooled_report.host_us / 1e3,
        report.host_us / pooled_report.host_us
    );
    let worker_loads: Vec<String> = pooled_report
        .worker_fft
        .iter()
        .map(|w| format!("{}", w.forward_transforms))
        .collect();
    println!(
        "per-worker forward FFTs: [{}] (sum = inline's {})",
        worker_loads.join(", "),
        report.host_fft().forward_transforms
    );
}
