//! Quickstart: train a dense LSTM acoustic model on the synthetic speech
//! corpus, compress it into block-circulant form with ADMM, and compare
//! accuracy and model size before/after — the core E-RNN story in ~60
//! lines.
//!
//! Run with: `cargo run --release --example quickstart`

use ernn::admm::{AdmmConfig, AdmmTrainer};
use ernn::asr::{evaluate_per, SynthCorpus, SynthCorpusConfig};
use ernn::model::trainer::{train, TrainOptions};
use ernn::model::{compress_network, BlockPolicy, CellType, NetworkBuilder, Sgd};
use rand::SeedableRng;

fn main() {
    // 1. A reproducible synthetic speech corpus (the TIMIT stand-in).
    let corpus = SynthCorpus::generate(&SynthCorpusConfig::standard(42));
    println!(
        "corpus: {} train / {} test utterances, {} phone classes",
        corpus.train.len(),
        corpus.test.len(),
        corpus.num_classes()
    );

    // 2. Dense pre-training (the paper's Fig. 6 starts from a pretrained
    //    model).
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut net = NetworkBuilder::new(CellType::Lstm, corpus.feature_dim, corpus.num_classes())
        .layer_dims(&[64, 64])
        .peephole(true)
        .build(&mut rng);
    let data = corpus.train_sequences();
    let mut opt = Sgd::new(0.08).momentum(0.9).clip_norm(2.0);
    train(
        &mut net,
        &data,
        TrainOptions {
            epochs: 16,
            lr_decay: 0.92,
            shuffle: true,
        },
        &mut opt,
        &mut rng,
    );
    let dense_per = evaluate_per(&net, &corpus.test);
    println!(
        "dense LSTM: {} params, test PER {dense_per:.2}%",
        net.param_count()
    );

    // 3. ADMM training onto the block-circulant manifold (block size 8).
    let policy = BlockPolicy::uniform(8);
    let cfg = AdmmConfig::default();
    let mut trainer = AdmmTrainer::new(&net, policy, cfg);
    let mut admm_opt = Sgd::new(0.02).momentum(0.9).clip_norm(2.0);
    let report = trainer.run(&mut net, &data, &mut admm_opt, &mut rng);
    trainer.finalize(&mut net);
    let mut retrain_opt = Sgd::new(0.015).momentum(0.9).clip_norm(2.0);
    trainer.retrain_constrained(
        &mut net,
        &data,
        cfg.retrain_epochs,
        &mut retrain_opt,
        &mut rng,
    );
    println!(
        "ADMM: {} iterations, final residual {:.4}",
        report.iterations.len(),
        report.final_residual()
    );

    // 4. Lossless extraction into the compressed representation.
    let compressed = compress_network(&net, policy);
    let compressed_per = evaluate_per(&compressed, &corpus.test);
    println!(
        "block-circulant LSTM (L_b=8): {} params ({}x smaller), test PER {compressed_per:.2}% (Δ {:+.2})",
        compressed.param_count(),
        net.param_count() / compressed.param_count(),
        compressed_per - dense_per
    );
}
