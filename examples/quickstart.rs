//! Quickstart: the model lifecycle as one typed pipeline — train a dense
//! LSTM acoustic model on the synthetic speech corpus, compress it into
//! block-circulant form with ADMM, quantize it for the paper's 12-bit
//! datapath, and compile it into a deployable, byte-serializable
//! `ModelArtifact` — the core E-RNN story in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use ernn::admm::AdmmConfig;
use ernn::asr::{evaluate_per, SynthCorpus, SynthCorpusConfig};
use ernn::model::{CellType, ModelSpec};
use ernn::pipeline::{CompressSettings, Pipeline, PipelineError, TrainSettings};
use ernn::serve::{CompiledModel, ModelArtifact};
use rand::SeedableRng;

fn main() -> Result<(), PipelineError> {
    // 1. A reproducible synthetic speech corpus (the TIMIT stand-in).
    let corpus = SynthCorpus::generate(&SynthCorpusConfig::standard(42));
    println!(
        "corpus: {} train / {} test utterances, {} phone classes",
        corpus.train.len(),
        corpus.test.len(),
        corpus.num_classes()
    );
    let data = corpus.train_sequences();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);

    // 2. The lifecycle pipeline under the paper's deployment defaults
    //    (block 8, 12-bit datapath, XCKU060): dense pre-training, then
    //    the full ADMM recipe of Fig. 6 (ADMM iterations, projection,
    //    constrained retraining).
    let spec = ModelSpec::new(CellType::Lstm, corpus.feature_dim, corpus.num_classes())
        .layer_dims(&[64, 64])
        .peephole(true);
    let trained = Pipeline::paper(spec)?.source("examples/quickstart").train(
        &data,
        TrainSettings {
            epochs: 16,
            ..TrainSettings::default()
        },
        &mut rng,
    )?;
    let dense_per = evaluate_per(trained.network(), &corpus.test);
    let dense_params = trained.network().param_count();
    println!("dense LSTM: {dense_params} params, test PER {dense_per:.2}%");

    let compressed = trained.compress(
        &data,
        CompressSettings {
            admm: AdmmConfig::default(),
            lr: 0.02,
        },
        &mut rng,
    )?;
    let compressed_per = evaluate_per(compressed.network(), &corpus.test);
    let compressed_params = compressed.network().param_count();
    println!(
        "block-circulant LSTM (L_b=8): {compressed_params} params ({}x smaller), \
         test PER {compressed_per:.2}% (Δ {:+.2})",
        dense_params / compressed_params,
        compressed_per - dense_per
    );

    // 3. Quantize + compile: the terminal stage is both a servable model
    //    and a persistable artifact carrying its own provenance.
    let built = compressed.quantize()?.compile()?;
    let admm = built.artifact().provenance.admm.expect("ADMM ran");
    println!(
        "ADMM provenance: {} iterations, final residual {:.4} (converged: {})",
        admm.iterations, admm.final_residual, admm.converged
    );

    // 4. Round-trip through bytes: the loaded model is bit-identical.
    let bytes = built.save_bytes();
    let loaded = CompiledModel::from_artifact(&ModelArtifact::load_bytes(&bytes)?);
    let frames = &corpus.test[0].features;
    assert_eq!(loaded.infer(frames), built.model().infer(frames));
    assert_eq!(loaded.stage_cycles(), built.model().stage_cycles());
    println!(
        "artifact: {} bytes, loads back bit-identically ({} circulant matrices, II {} cycles)",
        bytes.len(),
        loaded.load_stats.circulant_matrices,
        loaded.stage_cycles().ii()
    );
    Ok(())
}
