//! The full ASR substrate, stage by stage: waveform synthesis → DSP front
//! end → framewise acoustic model → greedy decoding → PER scoring.
//!
//! Run with: `cargo run --release --example asr_pipeline`

use ernn::asr::features::FrontEnd;
use ernn::asr::phones::PhoneSet;
use ernn::asr::synth::{render_utterance, Speaker};
use ernn::asr::{decode_frames, edit_distance, SynthCorpus, SynthCorpusConfig};
use ernn::model::trainer::{train, TrainOptions};
use ernn::model::{CellType, NetworkBuilder, Sgd};
use rand::SeedableRng;

fn main() {
    let phones = PhoneSet::standard();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);

    // 1. Synthesize one utterance and inspect the raw signal path.
    let speaker = Speaker::random(&mut rng);
    let segs: Vec<_> = ["sil", "iy", "s", "aa", "n", "sil"]
        .iter()
        .map(|s| (*phones.get(phones.id_of(s).expect("known phone")), 1600))
        .collect();
    let (wave, _align) = render_utterance(&segs, &speaker, &mut rng);
    println!(
        "synthesized {} samples ({:.2} s at 16 kHz), peak {:.3}",
        wave.len(),
        wave.len() as f32 / 16_000.0,
        wave.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    );

    // 2. Front end: log-mel features with deltas.
    let fe = FrontEnd::standard().with_deltas(true);
    let feats = fe.extract(&wave);
    println!(
        "front end: {} frames x {} coefficients (25 ms window / 10 ms hop)",
        feats.len(),
        fe.feature_dim()
    );

    // 3. Train a small GRU acoustic model on a corpus of such utterances.
    let corpus = SynthCorpus::generate(&SynthCorpusConfig::standard(9));
    let mut net = NetworkBuilder::new(CellType::Gru, corpus.feature_dim, corpus.num_classes())
        .layer_dims(&[64])
        .build(&mut rng);
    let mut opt = Sgd::new(0.08).momentum(0.9).clip_norm(2.0);
    train(
        &mut net,
        &corpus.train_sequences(),
        TrainOptions {
            epochs: 12,
            lr_decay: 0.92,
            shuffle: true,
        },
        &mut opt,
        &mut rng,
    );

    // 4. Decode a few test utterances and show the raw error accounting.
    let mut errors = 0usize;
    let mut total = 0usize;
    for (i, utt) in corpus.test.iter().take(5).enumerate() {
        let logits = net.forward_logits(&utt.features);
        let hyp = decode_frames(&logits, PhoneSet::SILENCE, 2);
        let d = edit_distance(&utt.phone_seq, &hyp);
        errors += d;
        total += utt.phone_seq.len();
        let show = |ids: &[usize]| {
            ids.iter()
                .map(|&id| phones.get(id).symbol)
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "utt {i}: ref [{}] hyp [{}] ({d} edits)",
            show(&utt.phone_seq),
            show(&hyp)
        );
    }
    println!(
        "sample PER: {:.1}% ({errors} errors / {total} reference phones)",
        100.0 * errors as f64 / total as f64
    );
}
