//! Hardware modelling tour: configure the paper's accelerators, simulate
//! the CGPipe cycle by cycle, schedule the operation graph, and emit the
//! C-like code the HLS framework would hand to the synthesis backend.
//!
//! Run with: `cargo run --release --example hardware_sim`

use ernn::fpga::baseline::{clstm_report, EseModel};
use ernn::fpga::power::{board_power, energy_efficiency};
use ernn::fpga::sim::simulate_pipeline;
use ernn::fpga::{Accelerator, HwCell, RnnSpec, ADM_PCIE_7V3, XCKU060};
use ernn::hls::{generate_code, generate_report, graph_for_spec, schedule, ResourcePool};

fn main() {
    // 1. The paper's flagship design: E-RNN GRU, block 16, KU060.
    let spec = RnnSpec::gru_1024(16, 12);
    let acc = Accelerator::new(spec, XCKU060);
    let report = acc.report("E-RNN FFT16 GRU");
    println!(
        "{} on {}: {} PEs, stages {:?}, latency {:.1} µs, {:.0} FPS",
        report.name,
        report.platform,
        report.num_pes,
        report.stages.as_array(),
        report.latency_us,
        report.fps
    );
    let power = board_power(&report, &XCKU060, false);
    println!(
        "power {power:.1} W -> {:.0} FPS/W",
        energy_efficiency(report.fps, power)
    );

    // 2. Cycle-level simulation of 100k frames through the CGPipe.
    let sim = simulate_pipeline(report.stages, 100_000);
    println!(
        "cycle sim: makespan {} cycles, mean frame latency {:.0} cycles, throughput {:.0} FPS, occupancy {:?}",
        sim.makespan_cycles,
        sim.mean_latency_cycles,
        sim.throughput_fpc * 200e6,
        sim.occupancy.map(|o| (o * 100.0).round())
    );

    // 3. The baselines it displaces.
    let ese = EseModel::table_iii();
    println!(
        "ESE baseline: {:.1} µs, {:.0} FPS, {:.0} FPS/W",
        ese.latency_us(),
        ese.fps(),
        ese.fps() / EseModel::published_power_w()
    );
    let clstm = clstm_report(16, ADM_PCIE_7V3);
    println!(
        "C-LSTM FFT16: {:.1} µs, {:.0} FPS",
        clstm.latency_us, clstm.fps
    );

    // 4. HLS on a small GRU: graph -> schedule -> code.
    let small = RnnSpec {
        cell: HwCell::Gru,
        input_dim: 16,
        hidden_dim: 32,
        block_size: 8,
        io_block_size: 8,
        weight_bits: 12,
        layers: 1,
    };
    let graph = graph_for_spec(&small);
    let sched = schedule(&graph, ResourcePool::uniform(4));
    println!("\n{}", generate_report(&graph, &sched));
    let code = generate_code(&graph, &sched);
    let preview: String = code.lines().take(18).collect::<Vec<_>>().join("\n");
    println!("generated code (first lines):\n{preview}\n...");
}
