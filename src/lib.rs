//! # E-RNN
//!
//! A reproduction of *"E-RNN: Design Optimization for Efficient Recurrent
//! Neural Networks in FPGAs"* (Li, Ding, et al., HPCA 2019).
//!
//! E-RNN is an algorithm/hardware co-design framework: LSTM/GRU weight
//! matrices are constrained to the block-circulant format, trained with
//! ADMM, executed with FFT-based kernels, and mapped onto an FPGA through a
//! two-phase design-optimization flow.
//!
//! This facade crate re-exports the entire workspace; downstream users can
//! depend on `ernn` alone:
//!
//! * [`fft`] — FFT kernels, circular convolution, multiplication-cost model.
//! * [`linalg`] — dense kernels and the block-circulant matrix type.
//! * [`quant`] — fixed-point arithmetic and piecewise-linear activations.
//! * [`model`] — LSTM/GRU cells, stacked networks, BPTT training.
//! * [`admm`] — ADMM-based structured training (the paper's Sec. III-B).
//! * [`asr`] — synthetic speech corpus, DSP front end, PER scoring.
//! * [`baselines`] — ESE-style pruned LSTM and C-LSTM-style training.
//! * [`fpga`] — device models, PE/CU designs, cycle simulator, power model.
//! * [`hls`] — operation graphs, scheduling and C-like code generation.
//! * [`core`] — the Phase I / Phase II E-RNN framework itself.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end tour: train a dense LSTM
//! on synthetic speech, compress it with ADMM into block-circulant form, and
//! estimate the resulting FPGA implementation.

pub use ernn_admm as admm;
pub use ernn_asr as asr;
pub use ernn_baselines as baselines;
pub use ernn_core as core;
pub use ernn_fft as fft;
pub use ernn_fpga as fpga;
pub use ernn_hls as hls;
pub use ernn_linalg as linalg;
pub use ernn_model as model;
pub use ernn_quant as quant;
