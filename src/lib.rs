//! # E-RNN
//!
//! A reproduction of *"E-RNN: Design Optimization for Efficient Recurrent
//! Neural Networks in FPGAs"* (Li, Ding, et al., HPCA 2019).
//!
//! E-RNN is an algorithm/hardware co-design framework: LSTM/GRU weight
//! matrices are constrained to the block-circulant format, trained with
//! ADMM, executed with FFT-based kernels, and mapped onto an FPGA through a
//! two-phase design-optimization flow.
//!
//! This facade crate re-exports the entire workspace; downstream users can
//! depend on `ernn` alone:
//!
//! * [`fft`] — FFT kernels, circular convolution, multiplication-cost model.
//! * [`linalg`] — dense kernels and the block-circulant matrix type.
//! * [`quant`] — fixed-point arithmetic and piecewise-linear activations.
//! * [`model`] — LSTM/GRU cells, stacked networks, BPTT training.
//! * [`admm`] — ADMM-based structured training (the paper's Sec. III-B).
//! * [`asr`] — synthetic speech corpus, DSP front end, PER scoring.
//! * [`baselines`] — ESE-style pruned LSTM and C-LSTM-style training.
//! * [`fpga`] — device models, PE/CU designs, cycle simulator, power model.
//! * [`hls`] — operation graphs, scheduling and C-like code generation.
//! * [`core`] — the Phase I / Phase II E-RNN framework itself.
//! * [`serve`] — batched multi-accelerator inference serving: dynamic
//!   request batching, a virtual device pool driven by the CGPipe cycle
//!   simulation, an FFT'd-weight cache filled once per model load, and
//!   latency/throughput/occupancy metrics under open- and closed-loop
//!   traffic. Host inference runs on a zero-allocation, batch-fused
//!   kernel stack: every FFT/matvec has an in-place `_into` form fed by
//!   per-worker scratch buffers, and a dispatched batch streams the
//!   cached weight spectra once per batch (see the `_into`/scratch
//!   conventions in [`fft`] and [`linalg`], and `tests/kernel_alloc.rs`
//!   for the counting-allocator proof).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end tour: train a dense LSTM
//! on synthetic speech, compress it with ADMM into block-circulant form, and
//! estimate the resulting FPGA implementation.
//!
//! ## Serving
//!
//! See `examples/serving_demo.rs` for the serving path: load → compress →
//! compile → serve a Poisson request stream across a device pool, with
//! printed latency percentiles and per-device occupancy. The knobs are
//! [`serve::BatchPolicy`] (max batch size / max wait) and the device
//! count; `cargo run --release -p ernn-bench --bin serve_sweep` sweeps
//! both and prints the resulting throughput/latency frontier.

pub use ernn_admm as admm;
pub use ernn_asr as asr;
pub use ernn_baselines as baselines;
pub use ernn_core as core;
pub use ernn_fft as fft;
pub use ernn_fpga as fpga;
pub use ernn_hls as hls;
pub use ernn_linalg as linalg;
pub use ernn_model as model;
pub use ernn_quant as quant;
pub use ernn_serve as serve;
