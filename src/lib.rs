//! # E-RNN
//!
//! A reproduction of *"E-RNN: Design Optimization for Efficient Recurrent
//! Neural Networks in FPGAs"* (Li, Ding, et al., HPCA 2019).
//!
//! E-RNN is an algorithm/hardware co-design framework: LSTM/GRU weight
//! matrices are constrained to the block-circulant format, trained with
//! ADMM, executed with FFT-based kernels, and mapped onto an FPGA through a
//! two-phase design-optimization flow.
//!
//! This facade crate re-exports the entire workspace; downstream users can
//! depend on `ernn` alone:
//!
//! * [`fft`] — FFT kernels, circular convolution, multiplication-cost model.
//! * [`linalg`] — dense kernels and the block-circulant matrix type.
//! * [`quant`] — fixed-point arithmetic and piecewise-linear activations.
//! * [`model`] — LSTM/GRU cells, stacked networks, BPTT training, and the
//!   declarative [`model::ModelSpec`].
//! * [`admm`] — ADMM-based structured training (the paper's Sec. III-B).
//! * [`asr`] — synthetic speech corpus, DSP front end, PER scoring.
//! * [`baselines`] — ESE-style pruned LSTM and C-LSTM-style training.
//! * [`fpga`] — device models, PE/CU designs, cycle simulator, power model,
//!   and the versioned [`fpga::artifact::ModelArtifact`].
//! * [`hls`] — operation graphs, scheduling and C-like code generation.
//! * [`core`] — the Phase I / Phase II E-RNN framework itself.
//! * [`pipeline`] — the typed model-lifecycle builder (see below).
//! * [`serve`] — batched multi-accelerator inference serving: dynamic
//!   batching, the SLO-aware multi-model scheduler, heterogeneous device
//!   pools, and the zero-allocation batch-fused kernel stack.
//!
//! ## Quickstart: spec → artifact → registry → serve
//!
//! The model lifecycle is one typed path ([`pipeline`]): declare a spec,
//! give it weights (train, or adopt/initialize), compress, quantize,
//! compile. The result is simultaneously a servable
//! [`serve::CompiledModel`] and a versioned, byte-serializable
//! [`fpga::artifact::ModelArtifact`] that the serving registry loads
//! *without retraining or recompressing* — logits and stage cycles are
//! bit-identical to the in-process build:
//!
//! ```
//! use ernn::model::{CellType, ModelSpec};
//! use ernn::pipeline::Pipeline;
//! use ernn::serve::sched::{ModelRegistry, SchedPolicy, SchedRuntime};
//! use ernn::serve::loadgen::{open_loop_poisson, synthetic_utterances, with_uniform_slo};
//! use ernn::serve::ModelArtifact;
//! use rand::SeedableRng;
//!
//! // 1. Specify and build under the paper's deployment defaults
//! //    (block 8, 12-bit datapath, XCKU060). `init` skips training —
//! //    random weights exercise the same lifecycle; use `.train(..)` /
//! //    `.compress(..)` for the real Fig.-6 recipe.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let spec = ModelSpec::new(CellType::Gru, 8, 5).layer_dims(&[16]);
//! let built = Pipeline::paper(spec)?
//!     .init(&mut rng)
//!     .project()?
//!     .quantize()?
//!     .compile()?;
//!
//! // 2. Persist: a deterministic, versioned byte image.
//! let bytes = built.save_bytes();
//!
//! // 3. Deploy: decode and register — zero requantization, zero extra
//! //    weight-spectrum refreshes.
//! let artifact = ModelArtifact::load_bytes(&bytes)?;
//! let mut registry = ModelRegistry::new();
//! registry.register_artifact("gru-16", &artifact);
//!
//! // 4. Serve under the SLO-aware scheduler.
//! let runtime = SchedRuntime::new(
//!     registry,
//!     vec![ernn::fpga::XCKU060],
//!     SchedPolicy::edf_cost_model(4, 100.0),
//! );
//! let utts = synthetic_utterances(4, (3, 8), 8, 7);
//! let report = runtime.run(with_uniform_slo(open_loop_poisson(&utts, 16, 50_000.0, 9), 5_000.0));
//! assert_eq!(report.responses.len(), 16);
//! # Ok::<(), ernn::pipeline::PipelineError>(())
//! ```
//!
//! The design-optimization flow feeds the same pipeline:
//! [`core::flow::run_flow_to_artifact`] runs Phase I/II and hands the
//! winning trained model through
//! [`core::Phase1Result::into_pipeline`] /
//! [`core::Phase2Result::into_pipeline`], so the artifact carries the
//! trial log, ADMM residual and quantization scan as provenance.
//!
//! `examples/quickstart.rs` walks the trained version of this path;
//! `examples/multi_model_serving.rs` serves two artifact-built tenants
//! under the scheduler. The pre-pipeline free-function entry points
//! remain as thin deprecated wrappers (see ROADMAP for the removal
//! horizon).

pub use ernn_admm as admm;
pub use ernn_asr as asr;
pub use ernn_baselines as baselines;
pub use ernn_core as core;
pub use ernn_core::pipeline;
pub use ernn_fft as fft;
pub use ernn_fpga as fpga;
pub use ernn_hls as hls;
pub use ernn_linalg as linalg;
pub use ernn_model as model;
pub use ernn_quant as quant;
pub use ernn_serve as serve;
