//! Property tests spanning `ernn-fft`, `ernn-linalg` and `ernn-model`:
//! every execution path of a block-circulant weight matrix computes the
//! same linear map.

use ernn::linalg::{BlockCirculantMatrix, MatVec, Matrix, WeightMatrix};
use ernn::model::{compress_network, BlockPolicy, CellType, NetworkBuilder};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_matvec_paths_agree(
        lb_pow in 1u32..5,
        p in 1usize..4,
        q in 1usize..4,
        seed in any::<u64>(),
    ) {
        let lb = 1usize << lb_pow;
        let (rows, cols) = (p * lb, q * lb);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let dense = Matrix::xavier(rows, cols, &mut rng);
        let bc = BlockCirculantMatrix::project_dense(&dense, lb);
        let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        let via_fft = bc.matvec(&x);
        let via_direct = bc.matvec_direct(&x);
        let via_dense = bc.to_dense().matvec(&x);
        let via_enum = WeightMatrix::Circulant(bc.clone()).matvec(&x);
        for i in 0..rows {
            prop_assert!((via_fft[i] - via_direct[i]).abs() < 1e-3);
            prop_assert!((via_fft[i] - via_dense[i]).abs() < 1e-3);
            prop_assert!((via_fft[i] - via_enum[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_is_idempotent_for_any_shape(
        rows in 1usize..24,
        cols in 1usize..24,
        lb_pow in 0u32..4,
        seed in any::<u64>(),
    ) {
        let lb = 1usize << lb_pow;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let dense = Matrix::xavier(rows, cols, &mut rng);
        let once = BlockCirculantMatrix::project_dense(&dense, lb);
        let twice = BlockCirculantMatrix::project_dense(&once.to_dense(), lb);
        for (a, b) in once.blocks().iter().zip(twice.blocks()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}

#[test]
fn compressed_network_forward_matches_projected_dense() {
    // Projecting the dense weights and compressing must produce identical
    // framewise logits (FFT rounding aside) for both cell types.
    for cell in [CellType::Lstm, CellType::Gru] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let mut net = NetworkBuilder::new(cell, 6, 4)
            .layer_dims(&[8, 8])
            .peephole(true)
            .build(&mut rng);
        for w in net.weight_matrices_mut() {
            *w = BlockCirculantMatrix::project_dense(w, 4).to_dense();
        }
        let compressed = compress_network(&net, BlockPolicy::uniform(4));
        let frames: Vec<Vec<f32>> = (0..6)
            .map(|t| (0..6).map(|d| ((t * 6 + d) as f32 * 0.07).sin()).collect())
            .collect();
        let a = net.forward_logits(&frames);
        let b = compressed.forward_logits(&frames);
        for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
            assert!((x - y).abs() < 2e-3, "{cell}: {x} vs {y}");
        }
    }
}
