//! Cross-crate integration: dense training → ADMM → compression →
//! quantized execution, verifying the representations agree end to end.

use ernn::admm::{AdmmConfig, AdmmTrainer};
use ernn::asr::{evaluate_per, SynthCorpus, SynthCorpusConfig};
use ernn::fpga::exec::{DatapathConfig, QuantizedNetwork};
use ernn::model::trainer::{train, TrainOptions};
use ernn::model::{compress_network, BlockPolicy, CellType, NetworkBuilder, Sgd};
use rand::SeedableRng;

fn pipeline(cell: CellType) {
    let corpus = SynthCorpus::generate(&SynthCorpusConfig::tiny(5));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let mut net = NetworkBuilder::new(cell, corpus.feature_dim, corpus.num_classes())
        .layer_dims(&[16])
        .build(&mut rng);
    let data = corpus.train_sequences();
    let mut opt = Sgd::new(0.05).momentum(0.9).clip_norm(2.0);
    train(
        &mut net,
        &data,
        TrainOptions {
            epochs: 3,
            ..TrainOptions::default()
        },
        &mut opt,
        &mut rng,
    );

    // ADMM onto block size 4, then snap and compress.
    let policy = BlockPolicy::uniform(4);
    let mut trainer = AdmmTrainer::new(
        &net,
        policy,
        AdmmConfig {
            iterations: 2,
            epochs_per_iter: 1,
            ..AdmmConfig::default()
        },
    );
    let mut opt2 = Sgd::new(0.02).momentum(0.9).clip_norm(2.0);
    trainer.run(&mut net, &data, &mut opt2, &mut rng);
    trainer.finalize(&mut net);

    let compressed = compress_network(&net, policy);
    assert!(compressed.param_count() < net.param_count());

    // The compressed model computes the same function as the snapped
    // dense model (projection was lossless after finalize).
    let frames = &corpus.test[0].features;
    let dense_logits = net.forward_logits(frames);
    let comp_logits = compressed.forward_logits(frames);
    for (a, b) in dense_logits
        .iter()
        .flatten()
        .zip(comp_logits.iter().flatten())
    {
        assert!((a - b).abs() < 2e-3, "{a} vs {b}");
    }

    // PER is computable for every representation, including fixed point.
    let per_dense = evaluate_per(&net, &corpus.test);
    let per_comp = evaluate_per(&compressed, &corpus.test);
    assert!((per_dense - per_comp).abs() < 20.0);

    let quantized = QuantizedNetwork::new(&compressed, &DatapathConfig::paper_12bit());
    let q_logits = quantized.forward_logits(frames);
    for (a, b) in comp_logits.iter().flatten().zip(q_logits.iter().flatten()) {
        assert!((a - b).abs() < 0.2, "12-bit drift too large: {a} vs {b}");
    }
}

#[test]
fn lstm_pipeline_is_consistent() {
    pipeline(CellType::Lstm);
}

#[test]
fn gru_pipeline_is_consistent() {
    pipeline(CellType::Gru);
}
