//! The artifact round-trip contract, property-tested end to end:
//! `save_bytes → load_bytes → CompiledModel` must produce **bit-equal
//! logits** and **equal `StageCycles`** versus the in-process pipeline
//! for any model shape, and registering a loaded artifact must perform
//! **zero** additional weight-spectrum refreshes. Corrupted, truncated
//! and wrong-version bytes must surface as `PipelineError`s, never
//! panics.

use ernn::fpga::artifact::{ModelArtifact, PipelineError, ARTIFACT_VERSION};
use ernn::model::{BlockPolicy, CellType, ModelSpec};
use ernn::pipeline::Pipeline;
use ernn::serve::sched::ModelRegistry;
use ernn::serve::CompiledModel;
use proptest::prelude::*;
use rand::SeedableRng;

/// Builds a pipeline model from a drawn shape, returning the in-process
/// model and its byte image.
fn build(
    seed: u64,
    cell: CellType,
    hidden: usize,
    layers: usize,
    block: usize,
    bits: u8,
) -> (CompiledModel, Vec<u8>) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let dims = vec![hidden; layers];
    let spec = ModelSpec::new(cell, 6, 5)
        .layer_dims(&dims)
        .peephole(cell == CellType::Lstm);
    let built = Pipeline::spec(spec)
        .expect("valid spec")
        .block_policy(BlockPolicy::uniform(block))
        .datapath(ernn::fpga::exec::DatapathConfig {
            weight_bits: bits,
            activation_bits: bits,
            pwl_segments: 64,
        })
        .init(&mut rng)
        .project()
        .expect("pow2 block")
        .quantize()
        .expect("valid datapath")
        .compile()
        .expect("known device");
    let bytes = built.save_bytes();
    (built.into_model(), bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn round_trip_is_bit_identical_for_any_shape(
        seed in 0u64..1_000,
        cell_sel in 0u64..2,
        hidden_sel in 0u64..3,
        layers in 1usize..3,
        block_sel in 0u64..3,
        bits_sel in 0u64..3,
        frames in 1usize..6,
    ) {
        let cell = if cell_sel == 0 { CellType::Lstm } else { CellType::Gru };
        let hidden = [8usize, 16, 24][hidden_sel as usize];
        let block = [2usize, 4, 8][block_sel as usize];
        let bits = [8u8, 12, 16][bits_sel as usize];
        let (model, bytes) = build(seed, cell, hidden, layers, block, bits);

        let artifact = ModelArtifact::load_bytes(&bytes).expect("artifact decodes");
        // Deterministic byte image.
        prop_assert_eq!(artifact.save_bytes(), bytes.clone());

        let loaded = CompiledModel::from_artifact(&artifact);
        // Bit-equal logits on a seeded probe.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        use rand::Rng;
        let probe: Vec<Vec<f32>> = (0..frames)
            .map(|_| (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let a = model.infer(&probe);
        let b = loaded.infer(&probe);
        prop_assert_eq!(a, b);
        // Equal accelerator timing.
        prop_assert_eq!(loaded.stage_cycles(), model.stage_cycles());
        prop_assert_eq!(loaded.spec(), model.spec());
        prop_assert_eq!(loaded.weight_bytes(), model.weight_bytes());

        // Registration of the loaded artifact: zero additional spectrum
        // refreshes (decode was the load event).
        let mut reg = ModelRegistry::new();
        let before = CompiledModel::from_artifact(&artifact).weight_spectrum_refreshes();
        let id = reg.register_artifact("roundtrip", &artifact);
        prop_assert_eq!(reg.model(id).weight_spectrum_refreshes(), before);
    }

    #[test]
    fn every_truncation_is_a_clean_error(cut_sel in 0u64..10_000) {
        // One fixed artifact, cut at a drawn offset: load must return
        // Err, never panic, and never succeed on a strict prefix.
        let (_, bytes) = build(3, CellType::Gru, 16, 1, 4, 12);
        let cut = (cut_sel as usize) % bytes.len();
        prop_assert!(ModelArtifact::load_bytes(&bytes[..cut]).is_err());
    }
}

#[test]
fn wrong_version_and_magic_are_typed_errors() {
    let (_, bytes) = build(4, CellType::Gru, 16, 1, 4, 12);
    // Version byte lives right after the 8-byte magic.
    let mut wrong_version = bytes.clone();
    wrong_version[8] = ARTIFACT_VERSION as u8 + 3;
    match ModelArtifact::load_bytes(&wrong_version) {
        Err(PipelineError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, ARTIFACT_VERSION + 3);
            assert_eq!(supported, ARTIFACT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        ModelArtifact::load_bytes(&wrong_magic),
        Err(PipelineError::BadMagic)
    ));
    assert!(matches!(
        ModelArtifact::load_bytes(&[]),
        Err(PipelineError::Truncated { .. })
    ));
}

#[test]
fn corrupted_structure_fields_are_clean_errors() {
    let (_, bytes) = build(5, CellType::Lstm, 16, 2, 4, 12);
    // Flip every byte in the header region (device name, datapath,
    // policy, spec) one at a time: decode must never panic — each
    // corruption either errors or, if it lands in provenance float
    // payload, still decodes to *something* structurally valid.
    for i in 12..bytes.len().min(200) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xFF;
        let _ = ModelArtifact::load_bytes(&corrupt);
    }
    // A lying collection length is a typed error, not an OOM or panic:
    // the device-name length field is the first u64 after magic+version.
    let mut lying = bytes.clone();
    lying[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        ModelArtifact::load_bytes(&lying),
        Err(PipelineError::Truncated { .. }) | Err(PipelineError::Corrupt(_))
    ));
}
