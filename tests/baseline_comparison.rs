//! Integration test of the three compression approaches on one task:
//! ESE-style pruning, C-LSTM-style direct circulant training, and E-RNN's
//! ADMM — all must produce working compressed models, and the structured
//! ones must execute on the FFT path.

use ernn::admm::{AdmmConfig, AdmmTrainer};
use ernn::asr::{evaluate_per, SynthCorpus, SynthCorpusConfig};
use ernn::baselines::{magnitude_prune, train_circulant_direct};
use ernn::model::trainer::{train, TrainOptions};
use ernn::model::{compress_network, BlockPolicy, CellType, NetworkBuilder, Sgd};
use rand::SeedableRng;

#[test]
fn three_compression_methods_produce_working_models() {
    let corpus = SynthCorpus::generate(&SynthCorpusConfig::tiny(13));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let mut dense = NetworkBuilder::new(CellType::Lstm, corpus.feature_dim, corpus.num_classes())
        .layer_dims(&[16])
        .build(&mut rng);
    let data = corpus.train_sequences();
    let mut opt = Sgd::new(0.06).momentum(0.9).clip_norm(2.0);
    train(
        &mut dense,
        &data,
        TrainOptions {
            epochs: 4,
            ..TrainOptions::default()
        },
        &mut opt,
        &mut rng,
    );

    // (a) ESE: 8x pruning + masked retraining.
    let mut pruned = magnitude_prune(&dense, 1.0 - 1.0 / 8.0);
    let mut opt_p = Sgd::new(0.03).momentum(0.9).clip_norm(2.0);
    pruned.retrain(&data, 2, &mut opt_p, &mut rng);
    let prune_report = pruned.report(12, 12);
    assert!(prune_report.weight_compression > 6.0);
    assert!(prune_report.effective_compression < prune_report.weight_compression);
    let per_pruned = evaluate_per(&pruned.net, &corpus.test);

    // (b) C-LSTM: direct circulant training.
    let mut clstm = dense.clone();
    let mut opt_c = Sgd::new(0.03).momentum(0.9).clip_norm(2.0);
    train_circulant_direct(
        &mut clstm,
        BlockPolicy::uniform(4),
        &data,
        TrainOptions {
            epochs: 3,
            ..TrainOptions::default()
        },
        &mut opt_c,
        &mut rng,
    );
    let clstm_compressed = compress_network(&clstm, BlockPolicy::uniform(4));
    let per_clstm = evaluate_per(&clstm_compressed, &corpus.test);

    // (c) E-RNN: ADMM.
    let mut admm_net = dense.clone();
    let cfg = AdmmConfig {
        iterations: 2,
        epochs_per_iter: 1,
        retrain_epochs: 1,
        ..AdmmConfig::default()
    };
    let mut trainer = AdmmTrainer::new(&admm_net, BlockPolicy::uniform(4), cfg);
    let mut opt_a = Sgd::new(0.03).momentum(0.9).clip_norm(2.0);
    trainer.run(&mut admm_net, &data, &mut opt_a, &mut rng);
    trainer.finalize(&mut admm_net);
    let admm_compressed = compress_network(&admm_net, BlockPolicy::uniform(4));
    let per_admm = evaluate_per(&admm_compressed, &corpus.test);

    // All three produce finite, comparable PERs on the same corpus.
    for per in [per_pruned, per_clstm, per_admm] {
        assert!(per.is_finite());
        assert!((0.0..=100.0).contains(&per), "{per}");
    }

    // Structured methods compress by exactly the block factor; pruning's
    // effective ratio is dented by indices (the paper's ESE critique).
    assert_eq!(
        clstm_compressed.param_count(),
        admm_compressed.param_count()
    );
    assert!(prune_report.effective_compression < 4.5 + 0.5);
}
