//! The paper notes ADMM handles quantization as another combinatorial
//! constraint set (Sec. III-B: "For special types of combinatorial
//! constraints, including structured matrices, quantization, etc., the
//! second subproblem can be optimally and analytically solved"). This
//! integration test exercises that path: ADMM with per-matrix
//! quantization constraints, and a mixed circulant+quantized setup.

use ernn::admm::{AdmmConfig, AdmmTrainer, CirculantConstraint, Constraint, QuantizeConstraint};
use ernn::model::trainer::{train, TrainOptions};
use ernn::model::{CellType, NetworkBuilder, Sgd};
use rand::SeedableRng;

type Sequence = (Vec<Vec<f32>>, Vec<usize>);

fn toy_data(n: usize, seed: u64) -> Vec<Sequence> {
    use rand::Rng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut running = 0.0f32;
            let mut frames = Vec::new();
            let mut labels = Vec::new();
            for _ in 0..10 {
                let v: f32 = rng.gen_range(-1.0..1.0);
                running += v;
                frames.push(vec![v, rng.gen_range(-1.0..1.0)]);
                labels.push(usize::from(running > 0.0));
            }
            (frames, labels)
        })
        .collect()
}

#[test]
fn admm_trains_onto_a_quantization_grid() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let mut net = NetworkBuilder::new(CellType::Gru, 2, 2)
        .layer_dims(&[8])
        .build(&mut rng);
    let data = toy_data(12, 4);
    let mut opt = Sgd::new(0.08).momentum(0.9).clip_norm(2.0);
    train(
        &mut net,
        &data,
        TrainOptions {
            epochs: 4,
            ..TrainOptions::default()
        },
        &mut opt,
        &mut rng,
    );

    let step = 1.0 / 64.0;
    let constraints: Vec<Box<dyn Constraint>> = net
        .weight_matrices()
        .iter()
        .map(|_| Box::new(QuantizeConstraint::new(8, step)) as Box<dyn Constraint>)
        .collect();
    let mut trainer = AdmmTrainer::with_constraints(
        &net,
        constraints,
        AdmmConfig {
            rho: 0.1,
            rho_growth: 1.5,
            iterations: 4,
            epochs_per_iter: 1,
            retrain_epochs: 0,
            residual_tol: 1e-5,
        },
    );
    let mut opt2 = Sgd::new(0.02).momentum(0.9).clip_norm(2.0);
    trainer.run(&mut net, &data, &mut opt2, &mut rng);
    trainer.finalize(&mut net);

    // Every weight sits exactly on the quantization grid.
    for (_, _, w) in net.weight_matrices() {
        for &v in w.as_slice() {
            let level = v / step;
            assert!(
                (level - level.round()).abs() < 1e-4,
                "weight {v} is off-grid"
            );
        }
    }
    // And the network still classifies (loss is finite, model functional).
    let stats = ernn::model::trainer::evaluate_set(&net, &data);
    assert!(stats.mean_loss.is_finite());
    assert!(stats.frame_accuracy > 0.4);
}

#[test]
fn mixed_circulant_and_quantized_constraints_compose() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let mut net = NetworkBuilder::new(CellType::Lstm, 2, 2)
        .layer_dims(&[8])
        .build(&mut rng);
    let data = toy_data(8, 6);

    // Alternate constraint kinds across the weight matrices.
    let constraints: Vec<Box<dyn Constraint>> = net
        .weight_matrices()
        .iter()
        .enumerate()
        .map(|(i, _)| {
            if i % 2 == 0 {
                Box::new(CirculantConstraint::new(4)) as Box<dyn Constraint>
            } else {
                Box::new(QuantizeConstraint::new(8, 1.0 / 32.0)) as Box<dyn Constraint>
            }
        })
        .collect();
    let mut trainer = AdmmTrainer::with_constraints(
        &net,
        constraints,
        AdmmConfig {
            iterations: 3,
            epochs_per_iter: 1,
            retrain_epochs: 0,
            ..AdmmConfig::default()
        },
    );
    let mut opt = Sgd::new(0.02).momentum(0.9).clip_norm(2.0);
    let report = trainer.run(&mut net, &data, &mut opt, &mut rng);
    trainer.finalize(&mut net);
    assert!(report.final_residual().is_finite());

    // Even-indexed matrices are circulant, odd ones are on-grid.
    let circ = CirculantConstraint::new(4);
    for (i, (_, _, w)) in net.weight_matrices().iter().enumerate() {
        if i % 2 == 0 {
            let p = circ.project(w);
            for (a, b) in w.as_slice().iter().zip(p.as_slice()) {
                assert!((a - b).abs() < 1e-5, "matrix {i} not circulant");
            }
        } else {
            for &v in w.as_slice() {
                let level = v * 32.0;
                assert!((level - level.round()).abs() < 1e-3, "matrix {i} off-grid");
            }
        }
    }
}
