//! Integration test of the Phase I → Phase II framework against a
//! deterministic oracle, plus the paper's trial-count claim.

use ernn::core::phase1::{run_phase1, CandidateSpec, Phase1Config, TrainOracle};
use ernn::core::phase2::{run_phase2, Phase2Config};
use ernn::fpga::{RnnSpec, ADM_PCIE_7V3, XCKU060};
use ernn::model::CellType;

/// PER grows gently with block size; GRU is at parity (the paper's ASR
/// observation).
struct PaperLikeOracle {
    evaluations: usize,
}

impl TrainOracle for PaperLikeOracle {
    fn baseline_per(&mut self, _cell: CellType) -> f64 {
        20.01
    }
    fn evaluate(&mut self, spec: &CandidateSpec) -> f64 {
        self.evaluations += 1;
        // Mirrors Table I's 1024 rows: +0.00 at 4, +0.13 at 8, +0.31 at 16,
        // extrapolating upward.
        let deg_of = |b: usize| match b {
            0..=4 => 0.0,
            8 => 0.13,
            16 => 0.31,
            32 => 0.65,
            _ => 1.4,
        };
        20.01 + 0.75 * deg_of(spec.block) + 0.25 * deg_of(spec.io_block)
    }
}

#[test]
fn phase1_reproduces_the_paper_choice_under_a_03_budget() {
    // With the paper's 0.3 pp budget, block 16 is right at the edge and
    // block 8-with-io-16 is the fine-tuned pick when 16-16 misses.
    let mut oracle = PaperLikeOracle { evaluations: 0 };
    for dev in [XCKU060, ADM_PCIE_7V3] {
        let result = run_phase1(
            &mut oracle,
            &Phase1Config {
                device: dev,
                deploy_hidden: 1024,
                layer_dims: vec![64, 64],
                accuracy_budget: 0.31,
                max_block: None,
            },
        );
        // The paper's bound on trials.
        assert!(result.trial_count() <= 6, "{:?}", result.trials);
        // The chosen model satisfies the budget and is compressed.
        assert!(result.degradation() <= 0.31 + 1e-9);
        assert!(result.chosen.block >= 8, "{:?}", result.chosen);
        // GRU parity means the switch is taken.
        assert_eq!(result.chosen.cell, CellType::Gru);
        // And it fits in BRAM.
        let spec = RnnSpec::gru_1024(result.chosen.block, 12);
        assert!(spec.fits_in_bram(&dev));
    }
}

#[test]
fn phase2_finishes_the_design_with_12_bits() {
    let quant = |bits: u8| -> f64 {
        // The paper's quantization knee: <0.1% at 12 bits.
        match bits {
            0..=9 => 22.0,
            10..=11 => 20.4,
            _ => 20.05,
        }
    };
    let result = run_phase2(
        RnnSpec::gru_1024(16, 12),
        20.0,
        quant,
        &Phase2Config::default(),
    );
    assert_eq!(result.datapath.weight_bits, 12);
    // The full design point is the paper's flagship: check the headline
    // energy-efficiency band (Table III: 15,300-16,020 FPS/W region; our
    // power model is a calibrated approximation, so accept 8k-40k).
    assert!(
        (8_000.0..40_000.0).contains(&result.fps_per_w),
        "{}",
        result.fps_per_w
    );
}
