//! Integration tests for the serving runtime (`ernn::serve`):
//!
//! * batched execution is **bit-identical** to sequential single-request
//!   execution through the quantized datapath (`fpga::exec`),
//! * sharding the same open-loop load over 2 devices finishes strictly
//!   sooner than over 1 device, and
//! * the parallel host executor (`ExecutorKind::ThreadPool`) reproduces
//!   the inline reference bit for bit — logits, completion times, and
//!   metrics — while beating it on wall-clock host time when the machine
//!   actually has cores to spare.

use ernn::fpga::exec::{DatapathConfig, QuantizedNetwork};
use ernn::fpga::XCKU060;
use ernn::model::{compress_network, BlockPolicy, CellType, NetworkBuilder};
use ernn::serve::loadgen::{open_loop_poisson, synthetic_utterances};
use ernn::serve::{BatchPolicy, CompiledModel, ExecutorKind, ServeReport, ServeRuntime};
use rand::SeedableRng;
use std::sync::Mutex;

const INPUT_DIM: usize = 10;

/// Serializes the tests in this binary (cargo runs test binaries one at
/// a time, so holding this lock gives the wall-clock measurement below a
/// quiet machine instead of contending with sibling tests for cores).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn compiled(cell: CellType) -> CompiledModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(71);
    let dense = NetworkBuilder::new(cell, INPUT_DIM, 6)
        .layer_dims(&[16])
        .build(&mut rng);
    let net = compress_network(&dense, BlockPolicy::uniform(4));
    CompiledModel::compile(&net, &DatapathConfig::paper_12bit(), XCKU060)
}

#[test]
fn batched_results_are_bit_identical_to_sequential_exec() {
    let _quiet = serial();
    for cell in [CellType::Lstm, CellType::Gru] {
        // Reference: the raw quantized datapath, one utterance at a time.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(71);
        let dense = NetworkBuilder::new(cell, INPUT_DIM, 6)
            .layer_dims(&[16])
            .build(&mut rng);
        let net = compress_network(&dense, BlockPolicy::uniform(4));
        let reference = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());

        let utterances = synthetic_utterances(12, (4, 12), INPUT_DIM, 201);
        let expected: Vec<Vec<Vec<f32>>> = utterances
            .iter()
            .map(|u| reference.forward_logits(u))
            .collect();

        // Serve the same utterances under aggressive batching.
        let runtime = ServeRuntime::new(compiled(cell), 2, BatchPolicy::new(4, 500.0));
        let requests = open_loop_poisson(&utterances, 12, 1_000_000.0, 202);
        let report = runtime.run(requests);
        assert_eq!(report.responses.len(), 12);
        assert!(
            report.metrics.mean_batch_size > 1.0,
            "{cell}: load must actually batch (mean {})",
            report.metrics.mean_batch_size
        );

        for response in &report.responses {
            let want = &expected[response.id as usize % utterances.len()];
            assert_eq!(response.logits.len(), want.len());
            for (got, exp) in response.logits.iter().zip(want.iter()) {
                // Bit-identical, not approximately equal.
                assert_eq!(got, exp, "{cell}: request {}", response.id);
            }
        }
    }
}

#[test]
fn two_devices_beat_one_under_the_same_open_loop_load() {
    let _quiet = serial();
    // Heavy offered load: long utterances arriving far faster than one
    // device can serve them, so the drain time is capacity-bound.
    let utterances = synthetic_utterances(8, (40, 80), INPUT_DIM, 301);
    let requests = open_loop_poisson(&utterances, 96, 400_000.0, 302);
    let policy = BatchPolicy::new(4, 100.0);

    let one = ServeRuntime::new(compiled(CellType::Gru), 1, policy).run(requests.clone());
    let two = ServeRuntime::new(compiled(CellType::Gru), 2, policy).run(requests);

    assert_eq!(one.responses.len(), 96);
    assert_eq!(two.responses.len(), 96);
    assert!(
        two.metrics.makespan_us < one.metrics.makespan_us,
        "2-device makespan {} must be strictly below 1-device {}",
        two.metrics.makespan_us,
        one.metrics.makespan_us
    );
    // Under capacity-bound load the speedup should be substantial, and
    // both devices must have carried real work.
    assert!(
        two.metrics.makespan_us < 0.75 * one.metrics.makespan_us,
        "speedup too small: {} vs {}",
        two.metrics.makespan_us,
        one.metrics.makespan_us
    );
    let busy_devices = two
        .metrics
        .device_occupancy
        .iter()
        .filter(|&&o| o > 0.2)
        .count();
    assert_eq!(busy_devices, 2, "{:?}", two.metrics.device_occupancy);
}

/// A larger acoustic model (the sweep shape) so host inference dominates
/// event-loop bookkeeping — the regime the thread pool targets.
fn compiled_heavy() -> CompiledModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let dense = NetworkBuilder::new(CellType::Gru, 52, 40)
        .layer_dims(&[64])
        .build(&mut rng);
    let net = compress_network(&dense, BlockPolicy::uniform(8));
    CompiledModel::compile(&net, &DatapathConfig::paper_12bit(), XCKU060)
}

fn assert_reports_bit_identical(inline: &ServeReport, pool: &ServeReport) {
    assert_eq!(
        inline.metrics, pool.metrics,
        "virtual-time metrics must not depend on the host executor"
    );
    // Bit-identical responses (logits, timings, placement), not
    // approximately equal: `Response: PartialEq` covers every field.
    assert_eq!(inline.responses, pool.responses);
}

#[test]
fn executors_agree_bit_for_bit_on_the_same_seeded_load() {
    let _quiet = serial();
    let utterances = synthetic_utterances(10, (10, 30), INPUT_DIM, 501);
    let policy = BatchPolicy::new(4, 100.0);
    let load = || open_loop_poisson(&utterances, 48, 300_000.0, 502);

    let inline =
        ServeRuntime::with_executor(compiled(CellType::Gru), 4, policy, ExecutorKind::Inline)
            .run(load());
    let pool =
        ServeRuntime::with_executor(compiled(CellType::Gru), 4, policy, ExecutorKind::ThreadPool)
            .run(load());

    assert_reports_bit_identical(&inline, &pool);

    // Per-worker FFT accounting: one ledger entry per device-slot worker,
    // exactly summing to the inline run's single-threaded total — no FFT
    // work is lost or double-counted by parallel execution.
    assert_eq!(pool.worker_fft.len(), 4);
    assert_eq!(inline.worker_fft.len(), 1);
    assert_eq!(pool.host_fft(), inline.host_fft());
    assert!(
        pool.worker_fft.iter().all(|w| w.plans_created == 0),
        "serving must never build FFT plans (spectra are cached at load): {:?}",
        pool.worker_fft
    );
}

#[test]
fn thread_pool_beats_inline_on_wall_clock_for_cpu_bound_load() {
    let _quiet = serial();
    let utterances = synthetic_utterances(12, (30, 60), 52, 601);
    let requests = open_loop_poisson(&utterances, 64, 400_000.0, 602);
    let policy = BatchPolicy::new(8, 200.0);
    // One Arc'd compile shared by all seven runs below.
    let model = std::sync::Arc::new(compiled_heavy());
    let run = |kind: ExecutorKind| {
        ServeRuntime::with_executor(std::sync::Arc::clone(&model), 4, policy, kind)
            .run(requests.clone())
    };

    // Best-of-three wall clocks to damp scheduler noise; virtual-time
    // results are deterministic so any run serves as the reference.
    let inline_runs = [run(ExecutorKind::Inline), run(ExecutorKind::Inline)];
    let pool_runs = [run(ExecutorKind::ThreadPool), run(ExecutorKind::ThreadPool)];
    assert_reports_bit_identical(&inline_runs[0], &pool_runs[0]);
    let best = |runs: &[ServeReport], extra: &ServeReport| {
        runs.iter().map(|r| r.host_us).fold(extra.host_us, f64::min)
    };
    let inline_us = best(&inline_runs, &run(ExecutorKind::Inline));
    let pool_us = best(&pool_runs, &run(ExecutorKind::ThreadPool));

    // Every threshold is deliberately generous versus the expected
    // ~min(cores, 4)× speedup, so transient load on shared CI runners
    // can't turn an unrelated PR red (the `serial()` guard above already
    // keeps sibling tests in this binary off the cores).
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cores >= 4 {
        // Standard CI runner shape (4 vCPUs): the 4-worker overlap must
        // show a real win on the wall clock.
        assert!(
            pool_us < 0.9 * inline_us,
            "thread pool must beat inline on {cores} cores: {pool_us:.0} µs vs {inline_us:.0} µs"
        );
    } else if cores >= 2 {
        // Some parallelism available (expected ~1.8× at 2 cores): only
        // require the pool not to lose.
        assert!(
            pool_us < inline_us,
            "thread pool must not lose on {cores} cores: {pool_us:.0} µs vs {inline_us:.0} µs"
        );
    } else {
        // Single-core host (no parallelism to exploit): only require that
        // channel + thread overhead stays bounded.
        assert!(
            pool_us < 3.0 * inline_us,
            "thread pool overhead out of bounds on 1 core: {pool_us:.0} µs vs {inline_us:.0} µs"
        );
    }
}

#[test]
fn facade_reexports_the_serving_surface() {
    let _quiet = serial();
    // The facade path (`ernn::serve`) must expose the full serving API.
    let model = compiled(CellType::Gru);
    assert_eq!(model.input_dim(), INPUT_DIM);
    let policy = ernn::serve::BatchPolicy::immediate();
    let runtime = ernn::serve::ServeRuntime::new(model, 1, policy);
    let utterances = synthetic_utterances(1, (3, 3), INPUT_DIM, 7);
    let report = runtime.run_closed_loop(&utterances, 1, 3);
    assert_eq!(report.responses.len(), 3);
    assert!(report.metrics.latency.p99_us > 0.0);
}

#[test]
fn facade_exposes_the_scheduler() {
    let _quiet = serial();
    // The facade path (`ernn::serve::sched`) must expose the scheduling
    // subsystem end to end: registry, policy, runtime, per-model metrics.
    use ernn::serve::sched::{ModelRegistry, SchedPolicy, SchedRuntime};
    let mut registry = ModelRegistry::new();
    registry.register("gru", compiled(CellType::Gru));
    let rt = SchedRuntime::new(
        registry,
        vec![XCKU060, ernn::fpga::ADM_PCIE_7V3],
        SchedPolicy::edf_cost_model(2, 50.0),
    );
    let utterances = synthetic_utterances(2, (3, 5), INPUT_DIM, 7);
    let report = rt.run(open_loop_poisson(&utterances, 6, 50_000.0, 8));
    assert_eq!(report.responses.len(), 6);
    assert!(report.metrics.latency.p999_us > 0.0);
    assert_eq!(report.metrics.per_model.len(), 1);
    assert_eq!(report.sched.admission_log.len(), 6);
}
