//! Integration tests for the serving runtime (`ernn::serve`):
//!
//! * batched execution is **bit-identical** to sequential single-request
//!   execution through the quantized datapath (`fpga::exec`), and
//! * sharding the same open-loop load over 2 devices finishes strictly
//!   sooner than over 1 device.

use ernn::fpga::exec::{DatapathConfig, QuantizedNetwork};
use ernn::fpga::XCKU060;
use ernn::model::{compress_network, BlockPolicy, CellType, NetworkBuilder};
use ernn::serve::loadgen::{open_loop_poisson, synthetic_utterances};
use ernn::serve::{BatchPolicy, CompiledModel, ServeRuntime};
use rand::SeedableRng;

const INPUT_DIM: usize = 10;

fn compiled(cell: CellType) -> CompiledModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(71);
    let dense = NetworkBuilder::new(cell, INPUT_DIM, 6)
        .layer_dims(&[16])
        .build(&mut rng);
    let net = compress_network(&dense, BlockPolicy::uniform(4));
    CompiledModel::compile(&net, &DatapathConfig::paper_12bit(), XCKU060)
}

#[test]
fn batched_results_are_bit_identical_to_sequential_exec() {
    for cell in [CellType::Lstm, CellType::Gru] {
        // Reference: the raw quantized datapath, one utterance at a time.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(71);
        let dense = NetworkBuilder::new(cell, INPUT_DIM, 6)
            .layer_dims(&[16])
            .build(&mut rng);
        let net = compress_network(&dense, BlockPolicy::uniform(4));
        let reference = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());

        let utterances = synthetic_utterances(12, (4, 12), INPUT_DIM, 201);
        let expected: Vec<Vec<Vec<f32>>> = utterances
            .iter()
            .map(|u| reference.forward_logits(u))
            .collect();

        // Serve the same utterances under aggressive batching.
        let runtime = ServeRuntime::new(compiled(cell), 2, BatchPolicy::new(4, 500.0));
        let requests = open_loop_poisson(&utterances, 12, 1_000_000.0, 202);
        let report = runtime.run(requests);
        assert_eq!(report.responses.len(), 12);
        assert!(
            report.metrics.mean_batch_size > 1.0,
            "{cell}: load must actually batch (mean {})",
            report.metrics.mean_batch_size
        );

        for response in &report.responses {
            let want = &expected[response.id as usize % utterances.len()];
            assert_eq!(response.logits.len(), want.len());
            for (got, exp) in response.logits.iter().zip(want.iter()) {
                // Bit-identical, not approximately equal.
                assert_eq!(got, exp, "{cell}: request {}", response.id);
            }
        }
    }
}

#[test]
fn two_devices_beat_one_under_the_same_open_loop_load() {
    // Heavy offered load: long utterances arriving far faster than one
    // device can serve them, so the drain time is capacity-bound.
    let utterances = synthetic_utterances(8, (40, 80), INPUT_DIM, 301);
    let requests = open_loop_poisson(&utterances, 96, 400_000.0, 302);
    let policy = BatchPolicy::new(4, 100.0);

    let one = ServeRuntime::new(compiled(CellType::Gru), 1, policy).run(requests.clone());
    let two = ServeRuntime::new(compiled(CellType::Gru), 2, policy).run(requests);

    assert_eq!(one.responses.len(), 96);
    assert_eq!(two.responses.len(), 96);
    assert!(
        two.metrics.makespan_us < one.metrics.makespan_us,
        "2-device makespan {} must be strictly below 1-device {}",
        two.metrics.makespan_us,
        one.metrics.makespan_us
    );
    // Under capacity-bound load the speedup should be substantial, and
    // both devices must have carried real work.
    assert!(
        two.metrics.makespan_us < 0.75 * one.metrics.makespan_us,
        "speedup too small: {} vs {}",
        two.metrics.makespan_us,
        one.metrics.makespan_us
    );
    let busy_devices = two
        .metrics
        .device_occupancy
        .iter()
        .filter(|&&o| o > 0.2)
        .count();
    assert_eq!(busy_devices, 2, "{:?}", two.metrics.device_occupancy);
}

#[test]
fn facade_reexports_the_serving_surface() {
    // The facade path (`ernn::serve`) must expose the full serving API.
    let model = compiled(CellType::Gru);
    assert_eq!(model.input_dim(), INPUT_DIM);
    let policy = ernn::serve::BatchPolicy::immediate();
    let runtime = ernn::serve::ServeRuntime::new(model, 1, policy);
    let utterances = synthetic_utterances(1, (3, 3), INPUT_DIM, 7);
    let report = runtime.run_closed_loop(&utterances, 1, 3);
    assert_eq!(report.responses.len(), 3);
    assert!(report.metrics.latency.p99_us > 0.0);
}
