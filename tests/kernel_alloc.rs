//! Counting-allocator proof that the steady-state serve hot path is
//! allocation-free.
//!
//! This binary installs [`ernn_bench::alloc::CountingAllocator`] as its
//! global allocator and holds a **single** `#[test]` so no concurrent
//! test thread can pollute the process-wide allocation counter during
//! the measured window.
//!
//! The claim under test (ISSUE 3 acceptance): after warmup, the batched
//! inference path a serving worker runs — input quantization, every
//! cell's FFT/matvec kernels, the classifier head, and the logits
//! buffers themselves — performs **zero** heap allocations when shapes
//! repeat, because every intermediate lives in a persistent
//! [`ExecScratch`] and outputs are written shape-reusingly in place.
//!
//! ISSUE 6 extends the claim to the observability layer: the same
//! measured window also drives the flight recorder past its ring
//! capacity (wraparound overwrite), streams samples into a
//! [`LatencyHistogram`], and charges warm [`StageAttribution`] cells —
//! still at zero allocations, so tracing can stay on in production.
//!
//! ISSUE 8 extends it again to fault injection: the scheduler's
//! per-dispatch fault-timeline queries (`is_down`, `cycle_multiplier`,
//! `abort_between`) run inside the same measured window against a
//! seeded, fully pre-materialized [`FaultTimeline`], so steady-state
//! serving stays zero-alloc even with a fault plan installed.
//!
//! ISSUE 9 extends it to the sampled-metrics layer: the same window
//! drives a [`MetricsTimeline`] past its ring capacity (grid sampling,
//! EWMA updates, wraparound overwrite) with the [`HealthMonitor`]
//! evaluating every emitted sample — so a runtime can leave timeline
//! capture and health rules on in production without perturbing the
//! hot path.

use ernn::fpga::exec::{DatapathConfig, ExecScratch};
use ernn::fpga::{FaultPlan, FaultTimeline, XCKU060};
use ernn::model::{compress_network, BlockPolicy, CellType, NetworkBuilder};
use ernn::serve::trace::{
    FlightRecorder, LatencyHistogram, StageAttribution, StageBreakdown, TraceConfig, TraceEvent,
};
use ernn::serve::{
    CompiledModel, HealthConfig, HealthMonitor, MetricsTimeline, TimelineConfig, TimelineProbe,
};
use ernn_bench::alloc::{allocation_count, CountingAllocator};
use rand::{Rng, SeedableRng};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_batched_inference_performs_zero_allocations() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(29);
    for cell in [CellType::Gru, CellType::Lstm] {
        let dense = NetworkBuilder::new(cell, 12, 7)
            .layer_dims(&[16, 16])
            .build(&mut rng);
        let net = compress_network(&dense, BlockPolicy::uniform(8));
        let model = CompiledModel::compile(&net, &DatapathConfig::paper_12bit(), XCKU060);

        // A served batch of ragged-length utterances.
        let utterances: Vec<Vec<Vec<f32>>> = (0..4)
            .map(|s| {
                (0..5 + s * 2)
                    .map(|_| (0..12).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                    .collect()
            })
            .collect();
        let batch: Vec<&[Vec<f32>]> = utterances.iter().map(Vec::as_slice).collect();

        let mut scratch = ExecScratch::new();
        let mut out = Vec::new();
        // Warmup grows every scratch buffer and the output shape.
        model.infer_batch_into(&batch, &mut out, &mut scratch);

        // Tracing state, pre-sized at construction: a flight recorder
        // whose ring we will deliberately overflow, a histogram (fixed
        // bucket array), and an attribution table with its cell warmed.
        let mut recorder = FlightRecorder::new(TraceConfig::enabled(4096));
        let mut hist = LatencyHistogram::new();
        let mut attribution = StageAttribution::new();
        attribution.charge(0, 0, StageBreakdown::default());
        // A seeded fault timeline, fully materialized at construction.
        let faults = FaultTimeline::new(&FaultPlan::seeded(7, 2, 80_000.0, 6), 2);
        // The sampled-metrics layer, pre-sized at construction: a
        // 256-sample timeline ring we will wrap several times over, the
        // health monitor that evaluates each emitted sample, and the
        // per-device busy scratch the runtimes refill per capture.
        let mut timeline = MetricsTimeline::new(TimelineConfig::enabled(10.0, 256), 2);
        let mut health = HealthMonitor::new(HealthConfig::enabled(), 2);
        let busy = [0.0f64; 2];

        let before = allocation_count();
        model.infer_batch_into(&batch, &mut out, &mut scratch);
        // 2× ring capacity exercises both the fill and the wraparound
        // overwrite paths of the recorder.
        for i in 0..8192u64 {
            recorder.record(TraceEvent::Enqueue {
                t_us: i as f64,
                id: i,
                model: 0,
                depth: 1,
            });
            hist.record(1.0 + i as f64);
        }
        attribution.charge(
            0,
            0,
            StageBreakdown {
                requests: 4,
                batches: 1,
                queue_us: 12.5,
                load_us: 0.0,
                state_us: 0.0,
                compute_us: 90.0,
                padding_us: 3.0,
                aborted_us: 0.0,
            },
        );
        // Fault-timeline queries are the scheduler's per-dispatch hot
        // path under fault injection; they must stay allocation-free.
        let mut up = 0usize;
        for i in 0..8192u64 {
            let t = i as f64 * 10.0;
            up += usize::from(!faults.is_down(0, t));
            let _ = faults.cycle_multiplier(1, t);
            let _ = faults.abort_between(0, t, t + 10.0);
        }
        // Timeline sampling with health evaluation: one grid sample per
        // advance, 8192 samples through a 256-slot ring (32 full
        // wraparounds), each evaluated by every health rule.
        let mut fired = 0usize;
        for i in 0..8192u64 {
            timeline.observe_queue_delay(5.0 + (i % 7) as f64);
            let probe = TimelineProbe {
                queue_depth: 0,
                oldest_wait_us: 0.0,
                live_sessions: 2,
                weights_bytes: 4096,
                state_bytes: 512,
                completed: i,
                shed: 0,
                deadline_misses: 0,
                weight_loads: 1,
                state_loads: 1,
                retries: 0,
                device_busy_us: &busy,
            };
            let emitted = timeline.advance((i + 1) as f64 * 10.0, &probe);
            let (start, end) = health.on_samples(&timeline, emitted);
            fired += end - start;
        }
        let delta = allocation_count() - before;
        assert_eq!(
            delta, 0,
            "{cell}: steady-state batched inference + tracing allocated {delta} times"
        );
        assert_eq!(recorder.dropped(), 8192 - 4096);
        assert_eq!(hist.summary().count, 8192);
        assert!(up > 0, "device 0 was never up across the query sweep");
        // The ring wrapped: 8192 offered, newest 256 retained, and every
        // sample passed through the (quiet, healthy-probe) rule set.
        let ewma = timeline.ewma_queue_us();
        let exported = timeline.into_timeline();
        assert_eq!(exported.samples.len(), 256);
        assert_eq!(exported.dropped, 8192 - 256);
        assert!(ewma > 0.0, "EWMA queue delay never seeded");
        let verdict = health.into_report(ewma);
        assert_eq!(fired, 0, "healthy probes fired {fired} health events");
        assert!(verdict.healthy());
        assert_eq!(verdict.samples_evaluated, 8192);

        // And the in-place results are still bit-identical to the plain
        // allocating path, per utterance.
        for (s, utt) in utterances.iter().enumerate() {
            assert_eq!(out[s], model.infer(utt), "{cell} utterance {s}");
        }
    }
}
