//! Cross-crate integration: the analytical accelerator model, the
//! cycle-level simulator and the HLS scheduler must tell one consistent
//! story.

use ernn::fpga::sim::simulate_pipeline;
use ernn::fpga::{Accelerator, RnnSpec, ADM_PCIE_7V3, XCKU060};
use ernn::hls::{graph_for_spec, schedule, ResourcePool};

#[test]
fn simulator_confirms_analytical_ii_and_latency() {
    for spec in [
        RnnSpec::lstm_1024(8, 12),
        RnnSpec::lstm_1024(16, 12),
        RnnSpec::gru_1024(8, 12),
        RnnSpec::gru_1024(16, 12),
    ] {
        for dev in [XCKU060, ADM_PCIE_7V3] {
            let acc = Accelerator::new(spec, dev);
            let stages = acc.stage_cycles();
            let sim = simulate_pipeline(stages, 5000);
            // Steady-state throughput equals 1/II.
            let analytic = 1.0 / stages.ii() as f64;
            assert!(
                (sim.throughput_fpc - analytic).abs() / analytic < 1e-3,
                "{}: sim {} vs analytic {}",
                dev.name,
                sim.throughput_fpc,
                analytic
            );
            // No frame can beat the raw stage sum.
            let sum: u64 = stages.as_array().iter().sum();
            assert!(sim.mean_latency_cycles + 1e-6 >= sum as f64);
        }
    }
}

#[test]
fn hls_schedule_is_no_faster_than_dependency_bound() {
    let spec = RnnSpec {
        cell: ernn::fpga::HwCell::Gru,
        input_dim: 16,
        hidden_dim: 32,
        block_size: 8,
        io_block_size: 8,
        weight_bits: 12,
        layers: 1,
    };
    let graph = graph_for_spec(&spec);
    let constrained = schedule(&graph, ResourcePool::uniform(2));
    let unconstrained = schedule(&graph, ResourcePool::uniform(4096));
    assert!(constrained.makespan >= unconstrained.makespan);
    assert_eq!(unconstrained.makespan, graph.critical_path());
}

#[test]
fn ernn_dominates_baselines_in_the_model() {
    // The paper's ordering must fall out of the models: ESE slowest,
    // C-LSTM in between, E-RNN fastest; GRU beats LSTM; FFT16 beats FFT8.
    use ernn::fpga::baseline::{clstm_report, EseModel};
    let ese_fps = EseModel::table_iii().fps();
    let clstm_fps = clstm_report(8, ADM_PCIE_7V3).fps;
    let ernn_fps = Accelerator::new(RnnSpec::lstm_1024(8, 12), ADM_PCIE_7V3)
        .report("e")
        .fps;
    assert!(ese_fps < clstm_fps && clstm_fps < ernn_fps);
    let gru = Accelerator::new(RnnSpec::gru_1024(8, 12), XCKU060)
        .report("g")
        .fps;
    let lstm = Accelerator::new(RnnSpec::lstm_1024(8, 12), XCKU060)
        .report("l")
        .fps;
    assert!(gru > lstm);
}
