//! The GRU cell of paper Eqn. 2 (Fig. 3b).
//!
//! The paper's GRU variant feeds `[xᵀ, cᵀ₋₁]ᵀ` to the fused update/reset
//! gates (Sec. II-B: "the reset and update gate matrices can be
//! concatenated and calculated through one matrix-vector multiplication as
//! `W_(rz)(xc)·[xᵀ, cᵀ₋₁]ᵀ`") and computes the candidate state from
//! `W_c̃x·x` plus `W_c̃c·(r ⊙ c_{t−1})` — three matvecs per timestep versus
//! the LSTM's two larger ones.

use crate::activation::{sigmoid, Act};
use ernn_linalg::{MatVec, MatVecScratch, Matrix};
use rand::Rng;

/// Reusable workspace for the allocation-free GRU step kernels
/// ([`GruLayer::step_into`] / [`GruLayer::step_batch_into`]).
///
/// One scratch serves any layer shape and batch size; buffers grow to the
/// largest size seen and are then reused.
#[derive(Debug, Clone, Default)]
pub struct GruScratch {
    /// Fused gate pre-activations (`batch × 2H`).
    pre: Vec<f32>,
    /// Recurrent gate matvec output (`batch × 2H`).
    rec: Vec<f32>,
    /// Update gate `z` (`batch × H`).
    z: Vec<f32>,
    /// Reset-gated state `r ⊙ c_{t-1}` (`batch × H`).
    rc: Vec<f32>,
    /// Candidate pre-activations (`batch × H`).
    pre_c: Vec<f32>,
    /// Candidate recurrent matvec output (`batch × H`).
    rec_c: Vec<f32>,
    /// Matvec workspace shared by all weight matrices.
    pub mv: MatVecScratch,
}

impl GruScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        GruScratch::default()
    }
}

/// One GRU layer, generic over the weight representation.
///
/// Lane order in the fused gate matrices is `z` (update) then `r` (reset).
#[derive(Debug, Clone, PartialEq)]
pub struct GruLayer<M> {
    input_dim: usize,
    hidden_dim: usize,
    /// Candidate-state activation `h` of Eqn. 2c (tanh in the paper).
    pub candidate_activation: Act,
    /// Fused gate input weights `(2H × I)`.
    pub wzr_x: M,
    /// Fused gate recurrent weights `(2H × H)`.
    pub wzr_c: M,
    /// Fused gate biases `(2H)`.
    pub bias_zr: Vec<f32>,
    /// Candidate input weights `W_c̃x (H × I)`.
    pub wcx: M,
    /// Candidate recurrent weights `W_c̃c (H × H)`.
    pub wcc: M,
    /// Candidate bias `(H)`.
    pub bias_c: Vec<f32>,
}

/// Per-timestep values cached for BPTT.
#[derive(Debug, Clone)]
pub struct GruCache {
    x: Vec<f32>,
    c_prev: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    rc: Vec<f32>,
    c_tilde: Vec<f32>,
}

/// Gradients of one GRU layer, shaped like the parameters.
#[derive(Debug, Clone)]
pub struct GruGrads {
    /// Gradient of [`GruLayer::wzr_x`].
    pub wzr_x: Matrix,
    /// Gradient of [`GruLayer::wzr_c`].
    pub wzr_c: Matrix,
    /// Gradient of the fused gate biases.
    pub bias_zr: Vec<f32>,
    /// Gradient of [`GruLayer::wcx`].
    pub wcx: Matrix,
    /// Gradient of [`GruLayer::wcc`].
    pub wcc: Matrix,
    /// Gradient of the candidate bias.
    pub bias_c: Vec<f32>,
}

impl<M: MatVec> GruLayer<M> {
    /// Assembles a layer from explicit parts (used by the compression pass
    /// to rebuild a layer with block-circulant weights).
    ///
    /// # Panics
    ///
    /// Panics if any tensor shape is inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        input_dim: usize,
        hidden_dim: usize,
        candidate_activation: Act,
        wzr_x: M,
        wzr_c: M,
        bias_zr: Vec<f32>,
        wcx: M,
        wcc: M,
        bias_c: Vec<f32>,
    ) -> Self {
        assert_eq!(
            (wzr_x.rows(), wzr_x.cols()),
            (2 * hidden_dim, input_dim),
            "wzr_x shape"
        );
        assert_eq!(
            (wzr_c.rows(), wzr_c.cols()),
            (2 * hidden_dim, hidden_dim),
            "wzr_c shape"
        );
        assert_eq!(bias_zr.len(), 2 * hidden_dim, "bias_zr length");
        assert_eq!(
            (wcx.rows(), wcx.cols()),
            (hidden_dim, input_dim),
            "wcx shape"
        );
        assert_eq!(
            (wcc.rows(), wcc.cols()),
            (hidden_dim, hidden_dim),
            "wcc shape"
        );
        assert_eq!(bias_c.len(), hidden_dim, "bias_c length");
        GruLayer {
            input_dim,
            hidden_dim,
            candidate_activation,
            wzr_x,
            wzr_c,
            bias_zr,
            wcx,
            wcc,
            bias_c,
        }
    }

    /// Input dimension `|x_t|`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden dimension `|c_t|` (also the layer output dimension — GRUs
    /// take the cell state as output, Sec. II-B).
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Initial all-zero state.
    pub fn zero_state(&self) -> Vec<f32> {
        vec![0.0; self.hidden_dim]
    }

    /// One timestep of Eqn. 2.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `c_prev` have the wrong dimension.
    pub fn step(
        &self,
        x: &[f32],
        c_prev: &[f32],
        want_cache: bool,
    ) -> (Vec<f32>, Option<GruCache>) {
        let h = self.hidden_dim;
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        assert_eq!(c_prev.len(), h, "state dimension mismatch");

        // Fused gates: z, r = σ(W_(zr)x·x + W_(zr)c·c_{t-1} + b)  (2a, 2b).
        let mut pre = self.wzr_x.matvec(x);
        let rec = self.wzr_c.matvec(c_prev);
        for ((p, r), b) in pre.iter_mut().zip(rec.iter()).zip(self.bias_zr.iter()) {
            *p += r + b;
        }
        let z: Vec<f32> = pre[..h].iter().map(|&v| sigmoid(v)).collect();
        let r: Vec<f32> = pre[h..].iter().map(|&v| sigmoid(v)).collect();

        // c̃ = h(W_c̃x·x + W_c̃c·(r ⊙ c_{t-1}) + b_c̃)   (2c).
        let rc: Vec<f32> = r.iter().zip(c_prev.iter()).map(|(a, b)| a * b).collect();
        let mut pre_c = self.wcx.matvec(x);
        let rec_c = self.wcc.matvec(&rc);
        for ((p, r), b) in pre_c.iter_mut().zip(rec_c.iter()).zip(self.bias_c.iter()) {
            *p += r + b;
        }
        let c_tilde: Vec<f32> = pre_c
            .iter()
            .map(|&v| self.candidate_activation.eval(v))
            .collect();

        // c_t = (1 − z) ⊙ c_{t-1} + z ⊙ c̃   (2d).
        let c: Vec<f32> = (0..h)
            .map(|k| (1.0 - z[k]) * c_prev[k] + z[k] * c_tilde[k])
            .collect();

        let cache = want_cache.then(|| GruCache {
            x: x.to_vec(),
            c_prev: c_prev.to_vec(),
            z,
            r,
            rc,
            c_tilde,
        });
        (c, cache)
    }

    /// One timestep of Eqn. 2 written into a caller-provided state, with
    /// every intermediate in `scratch` — the allocation-free inference
    /// form of [`Self::step`], bit-identical to it by construction (same
    /// kernels, same operation order; asserted by tests).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `c_prev` have the wrong dimension.
    pub fn step_into(
        &self,
        x: &[f32],
        c_prev: &[f32],
        c_next: &mut Vec<f32>,
        scratch: &mut GruScratch,
    ) {
        c_next.resize(self.hidden_dim, 0.0);
        self.step_batch_into(x, c_prev, c_next, 1, scratch);
    }

    /// One timestep of Eqn. 2 for `batch` independent states at once, over
    /// flat `batch × dim` buffers. The three matvecs are batch-fused
    /// (block-circulant weights stream their cached spectra once per
    /// batch); the element-wise gate math runs per lane, so every lane's
    /// result is bit-identical to a standalone [`Self::step`].
    ///
    /// Allocation-free once `scratch` has grown to this shape and batch.
    ///
    /// # Panics
    ///
    /// Panics if any slice length disagrees with `batch` and the layer
    /// dimensions.
    pub fn step_batch_into(
        &self,
        xs: &[f32],
        c_prev: &[f32],
        c_next: &mut [f32],
        batch: usize,
        scratch: &mut GruScratch,
    ) {
        let h = self.hidden_dim;
        assert_eq!(xs.len(), batch * self.input_dim, "input dimension mismatch");
        assert_eq!(c_prev.len(), batch * h, "state dimension mismatch");
        assert_eq!(c_next.len(), batch * h, "next state dimension mismatch");

        let GruScratch {
            pre,
            rec,
            z,
            rc,
            pre_c,
            rec_c,
            mv,
        } = scratch;
        pre.resize(batch * 2 * h, 0.0);
        rec.resize(batch * 2 * h, 0.0);
        z.resize(batch * h, 0.0);
        rc.resize(batch * h, 0.0);
        pre_c.resize(batch * h, 0.0);
        rec_c.resize(batch * h, 0.0);

        // Fused gates: z, r = σ(W_(zr)x·x + W_(zr)c·c_{t-1} + b)  (2a, 2b).
        self.wzr_x.matvec_batch_into(xs, pre, batch, mv);
        self.wzr_c.matvec_batch_into(c_prev, rec, batch, mv);
        for b in 0..batch {
            let pre = &mut pre[b * 2 * h..(b + 1) * 2 * h];
            let rec = &rec[b * 2 * h..(b + 1) * 2 * h];
            let cp = &c_prev[b * h..(b + 1) * h];
            for ((p, rv), bias) in pre.iter_mut().zip(rec.iter()).zip(self.bias_zr.iter()) {
                *p += rv + bias;
            }
            for k in 0..h {
                z[b * h + k] = sigmoid(pre[k]);
                rc[b * h + k] = sigmoid(pre[h + k]) * cp[k];
            }
        }

        // c̃ = h(W_c̃x·x + W_c̃c·(r ⊙ c_{t-1}) + b_c̃)   (2c);
        // c_t = (1 − z) ⊙ c_{t-1} + z ⊙ c̃   (2d).
        self.wcx.matvec_batch_into(xs, pre_c, batch, mv);
        self.wcc.matvec_batch_into(rc, rec_c, batch, mv);
        for b in 0..batch {
            let pre_c = &mut pre_c[b * h..(b + 1) * h];
            let rec_c = &rec_c[b * h..(b + 1) * h];
            let cp = &c_prev[b * h..(b + 1) * h];
            let cn = &mut c_next[b * h..(b + 1) * h];
            for ((p, rv), bias) in pre_c.iter_mut().zip(rec_c.iter()).zip(self.bias_c.iter()) {
                *p += rv + bias;
            }
            for k in 0..h {
                let c_tilde = self.candidate_activation.eval(pre_c[k]);
                cn[k] = (1.0 - z[b * h + k]) * cp[k] + z[b * h + k] * c_tilde;
            }
        }
    }

    /// Runs a batch of sequences in lockstep through this layer, fusing
    /// the matvecs across whatever subset of sequences is still active at
    /// each timestep. Per-sequence outputs are bit-identical to
    /// [`Self::forward_seq`].
    pub fn forward_seq_batch(&self, seqs: &[Vec<Vec<f32>>]) -> Vec<Vec<Vec<f32>>> {
        let h = self.hidden_dim;
        let n = seqs.len();
        let max_t = seqs.iter().map(Vec::len).max().unwrap_or(0);
        let mut c = vec![0.0f32; n * h];
        let mut outs: Vec<Vec<Vec<f32>>> =
            seqs.iter().map(|s| Vec::with_capacity(s.len())).collect();
        let mut scratch = GruScratch::new();
        let (mut xb, mut cb, mut cn) = (Vec::new(), Vec::new(), Vec::new());
        let mut active = Vec::with_capacity(n);
        for t in 0..max_t {
            active.clear();
            active.extend((0..n).filter(|&s| t < seqs[s].len()));
            let bsz = active.len();
            xb.clear();
            cb.clear();
            for &s in &active {
                assert_eq!(seqs[s][t].len(), self.input_dim, "input dimension mismatch");
                xb.extend_from_slice(&seqs[s][t]);
                cb.extend_from_slice(&c[s * h..(s + 1) * h]);
            }
            cn.resize(bsz * h, 0.0);
            self.step_batch_into(&xb, &cb, &mut cn, bsz, &mut scratch);
            for (b, &s) in active.iter().enumerate() {
                c[s * h..(s + 1) * h].copy_from_slice(&cn[b * h..(b + 1) * h]);
                outs[s].push(cn[b * h..(b + 1) * h].to_vec());
            }
        }
        outs
    }

    /// Runs a full sequence, returning the state trajectory (the layer
    /// output) and caches when training.
    pub fn forward_seq(
        &self,
        inputs: &[Vec<f32>],
        want_cache: bool,
    ) -> (Vec<Vec<f32>>, Vec<GruCache>) {
        let mut state = self.zero_state();
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut caches = Vec::with_capacity(if want_cache { inputs.len() } else { 0 });
        for x in inputs {
            let (next, cache) = self.step(x, &state, want_cache);
            outputs.push(next.clone());
            if let Some(c) = cache {
                caches.push(c);
            }
            state = next;
        }
        (outputs, caches)
    }

    /// Number of stored parameters.
    pub fn param_count(&self) -> usize
    where
        M: crate::lstm::ParamCount,
    {
        self.wzr_x.param_count()
            + self.wzr_c.param_count()
            + self.bias_zr.len()
            + self.wcx.param_count()
            + self.wcc.param_count()
            + self.bias_c.len()
    }
}

impl GruLayer<Matrix> {
    /// Creates a dense GRU layer with Xavier-initialized weights.
    pub fn new_dense(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        GruLayer {
            input_dim,
            hidden_dim,
            candidate_activation: Act::Tanh,
            wzr_x: Matrix::xavier(2 * hidden_dim, input_dim, rng),
            wzr_c: Matrix::xavier(2 * hidden_dim, hidden_dim, rng),
            bias_zr: vec![0.0; 2 * hidden_dim],
            wcx: Matrix::xavier(hidden_dim, input_dim, rng),
            wcc: Matrix::xavier(hidden_dim, hidden_dim, rng),
            bias_c: vec![0.0; hidden_dim],
        }
    }

    /// Zero-initialized gradients shaped like this layer.
    pub fn zero_grads(&self) -> GruGrads {
        GruGrads {
            wzr_x: Matrix::zeros(self.wzr_x.rows(), self.wzr_x.cols()),
            wzr_c: Matrix::zeros(self.wzr_c.rows(), self.wzr_c.cols()),
            bias_zr: vec![0.0; self.bias_zr.len()],
            wcx: Matrix::zeros(self.wcx.rows(), self.wcx.cols()),
            wcc: Matrix::zeros(self.wcc.rows(), self.wcc.cols()),
            bias_c: vec![0.0; self.bias_c.len()],
        }
    }

    /// Backpropagation through time; see
    /// [`LstmLayer::backward_seq`](crate::LstmLayer::backward_seq) for the
    /// calling convention.
    ///
    /// # Panics
    ///
    /// Panics if `caches.len() != d_outputs.len()`.
    pub fn backward_seq(
        &self,
        caches: &[GruCache],
        d_outputs: &[Vec<f32>],
        grads: &mut GruGrads,
    ) -> Vec<Vec<f32>> {
        assert_eq!(caches.len(), d_outputs.len(), "sequence length mismatch");
        let h = self.hidden_dim;
        let t_len = caches.len();
        let mut dx_seq = vec![Vec::new(); t_len];
        let mut dc_rec = vec![0.0f32; h];

        for t in (0..t_len).rev() {
            let cache = &caches[t];
            let mut dct = d_outputs[t].clone();
            for (a, b) in dct.iter_mut().zip(dc_rec.iter()) {
                *a += b;
            }

            // Through c = (1 − z) ⊙ c_prev + z ⊙ c̃.
            let mut dz = vec![0.0f32; h];
            let mut dc_tilde = vec![0.0f32; h];
            let mut dc_prev = vec![0.0f32; h];
            for k in 0..h {
                dz[k] = dct[k] * (cache.c_tilde[k] - cache.c_prev[k]);
                dc_tilde[k] = dct[k] * cache.z[k];
                dc_prev[k] = dct[k] * (1.0 - cache.z[k]);
            }

            // Through c̃ = h(pre_c).
            let dpre_c: Vec<f32> = (0..h)
                .map(|k| {
                    dc_tilde[k]
                        * self
                            .candidate_activation
                            .deriv_from_output(cache.c_tilde[k])
                })
                .collect();
            grads.wcx.add_outer(1.0, &dpre_c, &cache.x);
            grads.wcc.add_outer(1.0, &dpre_c, &cache.rc);
            for (b, d) in grads.bias_c.iter_mut().zip(dpre_c.iter()) {
                *b += d;
            }
            let drc = self.wcc.matvec_t(&dpre_c);
            let mut dr = vec![0.0f32; h];
            for k in 0..h {
                dr[k] = drc[k] * cache.c_prev[k];
                dc_prev[k] += drc[k] * cache.r[k];
            }

            // Through the fused gates.
            let mut dpre_zr = vec![0.0f32; 2 * h];
            for k in 0..h {
                dpre_zr[k] = dz[k] * cache.z[k] * (1.0 - cache.z[k]);
                dpre_zr[h + k] = dr[k] * cache.r[k] * (1.0 - cache.r[k]);
            }
            grads.wzr_x.add_outer(1.0, &dpre_zr, &cache.x);
            grads.wzr_c.add_outer(1.0, &dpre_zr, &cache.c_prev);
            for (b, d) in grads.bias_zr.iter_mut().zip(dpre_zr.iter()) {
                *b += d;
            }

            let mut dx = self.wzr_x.matvec_t(&dpre_zr);
            let dx_c = self.wcx.matvec_t(&dpre_c);
            for (a, b) in dx.iter_mut().zip(dx_c.iter()) {
                *a += b;
            }
            dx_seq[t] = dx;

            let dc_gate = self.wzr_c.matvec_t(&dpre_zr);
            for (a, b) in dc_prev.iter_mut().zip(dc_gate.iter()) {
                *a += b;
            }
            dc_rec = dc_prev;
        }
        dx_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_layer(seed: u64) -> GruLayer<Matrix> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        GruLayer::new_dense(3, 4, &mut rng)
    }

    #[test]
    fn step_shapes_and_interpolation_bound() {
        // c_t is a convex combination of c_prev and c̃ ∈ (−1, 1), so with
        // |c_prev| ≤ 1 the state stays in (−1, 1) forever.
        let layer = tiny_layer(1);
        let mut c = layer.zero_state();
        for t in 0..100 {
            let x = vec![(t as f32 * 0.3).sin(), -0.2, 0.7];
            c = layer.step(&x, &c, false).0;
            for &v in &c {
                assert!(v.abs() <= 1.0, "state escaped the invariant: {v}");
            }
        }
    }

    #[test]
    fn step_into_is_bit_identical_to_step() {
        let layer = tiny_layer(9);
        let mut scratch = GruScratch::new();
        let mut c = layer.zero_state();
        let mut next = layer.zero_state();
        for t in 0..8 {
            let x = vec![(t as f32 * 0.4).sin(), 0.2, -0.6];
            let (want, _) = layer.step(&x, &c, false);
            layer.step_into(&x, &c, &mut next, &mut scratch);
            assert_eq!(next, want, "t={t}");
            c = want;
        }
    }

    #[test]
    fn forward_seq_batch_is_bit_identical_to_per_sequence() {
        let layer = tiny_layer(10);
        let seqs: Vec<Vec<Vec<f32>>> = (0..5)
            .map(|s| {
                (0..2 + s * 3)
                    .map(|t| vec![0.2 * t as f32 - s as f32 * 0.1, 0.4, -0.3])
                    .collect()
            })
            .collect();
        let batched = layer.forward_seq_batch(&seqs);
        for (s, seq) in seqs.iter().enumerate() {
            let (want, _) = layer.forward_seq(seq, false);
            assert_eq!(batched[s], want, "sequence {s}");
        }
    }

    #[test]
    fn forward_seq_matches_manual_stepping() {
        let layer = tiny_layer(2);
        let inputs: Vec<Vec<f32>> = (0..5).map(|t| vec![t as f32 * 0.2, 0.1, -0.3]).collect();
        let (outputs, caches) = layer.forward_seq(&inputs, true);
        assert_eq!(caches.len(), 5);
        let mut c = layer.zero_state();
        for (t, x) in inputs.iter().enumerate() {
            c = layer.step(x, &c, false).0;
            assert_eq!(outputs[t], c);
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let layer = tiny_layer(3);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        use rand::Rng;
        let inputs: Vec<Vec<f32>> = (0..5)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let loss = |layer: &GruLayer<Matrix>| -> f32 {
            let (outs, _) = layer.forward_seq(&inputs, false);
            outs.iter()
                .flat_map(|o| o.iter())
                .map(|v| 0.5 * v * v)
                .sum()
        };

        let (outs, caches) = layer.forward_seq(&inputs, true);
        let mut grads = layer.zero_grads();
        layer.backward_seq(&caches, &outs, &mut grads);

        let eps = 1e-2f32;
        let mut p = layer.clone();
        // Sample parameters across all six tensors.
        let checks: Vec<(&str, f32, f32)> = {
            let mut v = Vec::new();
            for idx in [0usize, 9] {
                let orig = p.wzr_x.as_slice()[idx];
                p.wzr_x.as_mut_slice()[idx] = orig + eps;
                let lp = loss(&p);
                p.wzr_x.as_mut_slice()[idx] = orig - eps;
                let lm = loss(&p);
                p.wzr_x.as_mut_slice()[idx] = orig;
                v.push((
                    "wzr_x",
                    (lp - lm) / (2.0 * eps),
                    grads.wzr_x.as_slice()[idx],
                ));
            }
            for idx in [2usize, 11] {
                let orig = p.wcc.as_slice()[idx];
                p.wcc.as_mut_slice()[idx] = orig + eps;
                let lp = loss(&p);
                p.wcc.as_mut_slice()[idx] = orig - eps;
                let lm = loss(&p);
                p.wcc.as_mut_slice()[idx] = orig;
                v.push(("wcc", (lp - lm) / (2.0 * eps), grads.wcc.as_slice()[idx]));
            }
            for idx in [1usize, 6] {
                let orig = p.bias_zr[idx];
                p.bias_zr[idx] = orig + eps;
                let lp = loss(&p);
                p.bias_zr[idx] = orig - eps;
                let lm = loss(&p);
                p.bias_zr[idx] = orig;
                v.push(("bias_zr", (lp - lm) / (2.0 * eps), grads.bias_zr[idx]));
            }
            {
                let orig = p.wcx.as_slice()[5];
                p.wcx.as_mut_slice()[5] = orig + eps;
                let lp = loss(&p);
                p.wcx.as_mut_slice()[5] = orig - eps;
                let lm = loss(&p);
                p.wcx.as_mut_slice()[5] = orig;
                v.push(("wcx", (lp - lm) / (2.0 * eps), grads.wcx.as_slice()[5]));
            }
            {
                let orig = p.wzr_c.as_slice()[3];
                p.wzr_c.as_mut_slice()[3] = orig + eps;
                let lp = loss(&p);
                p.wzr_c.as_mut_slice()[3] = orig - eps;
                let lm = loss(&p);
                p.wzr_c.as_mut_slice()[3] = orig;
                v.push(("wzr_c", (lp - lm) / (2.0 * eps), grads.wzr_c.as_slice()[3]));
            }
            v
        };
        for (name, fd, an) in checks {
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "{name}: fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn param_count_is_smaller_than_equivalent_lstm() {
        // The paper's Table III shows GRU-1024 at ~0.45M vs LSTM 0.73M top
        // layer params: GRUs have 3 gate matrices vs the LSTM's 4.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let gru = GruLayer::new_dense(16, 32, &mut rng);
        let lstm_cfg = crate::LstmConfig::simple(16, 32);
        let lstm = crate::LstmLayer::new_dense(lstm_cfg, &mut rng);
        assert!(gru.param_count() < lstm.param_count());
    }

    #[test]
    #[should_panic(expected = "state dimension")]
    fn step_rejects_bad_state_dim() {
        let layer = tiny_layer(6);
        let _ = layer.step(&[0.0; 3], &[0.0; 7], false);
    }
}
