//! Stacked RNN networks with a framewise classifier head.

use crate::layer::{LayerCaches, LayerGrads, RnnLayer};
use crate::loss::softmax_cross_entropy;
use crate::lstm::{LstmConfig, LstmLayer, ParamCount};
use crate::{Act, GruLayer};
use ernn_linalg::{MatVec, Matrix};
use rand::Rng;

/// Which recurrent cell the network stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellType {
    /// LSTM with optional peephole/projection (paper Eqn. 1).
    Lstm,
    /// The paper's GRU variant (Eqn. 2).
    Gru,
}

impl std::fmt::Display for CellType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellType::Lstm => write!(f, "LSTM"),
            CellType::Gru => write!(f, "GRU"),
        }
    }
}

/// A stack of RNN layers plus a dense softmax classifier producing
/// framewise phone posteriors — the acoustic-model shape used throughout
/// the paper's evaluation.
///
/// Generic over the weight representation `M`; training requires
/// `M = Matrix`, inference also runs with block-circulant weights.
#[derive(Debug, Clone, PartialEq)]
pub struct RnnNetwork<M> {
    layers: Vec<RnnLayer<M>>,
    /// Classifier weights `(classes × top_dim)`. Kept dense: it is small
    /// and is not compressed in the paper either.
    pub classifier_w: Matrix,
    /// Classifier bias `(classes)`.
    pub classifier_b: Vec<f32>,
}

/// Gradients shaped like an [`RnnNetwork<Matrix>`].
#[derive(Debug, Clone)]
pub struct NetworkGrads {
    /// Per-layer gradients.
    pub layers: Vec<LayerGrads>,
    /// Classifier weight gradient.
    pub classifier_w: Matrix,
    /// Classifier bias gradient.
    pub classifier_b: Vec<f32>,
}

/// Builder for [`RnnNetwork`] (dense representation).
///
/// ```
/// use ernn_model::{NetworkBuilder, CellType};
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let net = NetworkBuilder::new(CellType::Lstm, 26, 20)
///     .layer_dims(&[64, 64])
///     .peephole(true)
///     .projection(32)
///     .build(&mut rng);
/// assert_eq!(net.num_layers(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    cell: CellType,
    input_dim: usize,
    classes: usize,
    layer_dims: Vec<usize>,
    peephole: bool,
    projection: Option<usize>,
    cell_activation: Act,
}

impl NetworkBuilder {
    /// Starts a builder for a network mapping `input_dim` features to
    /// `classes` framewise posteriors.
    pub fn new(cell: CellType, input_dim: usize, classes: usize) -> Self {
        NetworkBuilder {
            cell,
            input_dim,
            classes,
            layer_dims: vec![128],
            peephole: false,
            projection: None,
            cell_activation: Act::Tanh,
        }
    }

    /// Hidden dimension of each stacked layer (the paper's "layer size",
    /// e.g. `256-256-256`).
    pub fn layer_dims(mut self, dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "need at least one layer");
        self.layer_dims = dims.to_vec();
        self
    }

    /// Enables LSTM peephole connections (ignored for GRU).
    pub fn peephole(mut self, on: bool) -> Self {
        self.peephole = on;
        self
    }

    /// Enables an LSTM recurrent projection of the given dimension
    /// (ignored for GRU).
    pub fn projection(mut self, dim: usize) -> Self {
        self.projection = Some(dim);
        self
    }

    /// Sets the cell-input activation (Eqn. 1c); see [`Act`].
    pub fn cell_activation(mut self, act: Act) -> Self {
        self.cell_activation = act;
        self
    }

    /// Instantiates the dense network with seeded random initialization.
    pub fn build(&self, rng: &mut impl Rng) -> RnnNetwork<Matrix> {
        let mut layers = Vec::with_capacity(self.layer_dims.len());
        let mut in_dim = self.input_dim;
        for &h in &self.layer_dims {
            let layer = match self.cell {
                CellType::Lstm => {
                    let out = self.projection.map_or(h, |p| p.min(h));
                    let cfg = LstmConfig {
                        input_dim: in_dim,
                        hidden_dim: h,
                        output_dim: out,
                        peephole: self.peephole,
                        cell_activation: self.cell_activation,
                    };
                    RnnLayer::Lstm(LstmLayer::new_dense(cfg, rng))
                }
                CellType::Gru => RnnLayer::Gru(GruLayer::new_dense(in_dim, h, rng)),
            };
            in_dim = layer.output_dim();
            layers.push(layer);
        }
        RnnNetwork {
            layers,
            classifier_w: Matrix::xavier(self.classes, in_dim, rng),
            classifier_b: vec![0.0; self.classes],
        }
    }
}

impl<M: MatVec> RnnNetwork<M> {
    /// Assembles a network from explicit parts (used by the compression
    /// pass).
    ///
    /// # Panics
    ///
    /// Panics if the classifier input dimension does not match the top
    /// layer's output dimension.
    pub fn from_parts(
        layers: Vec<RnnLayer<M>>,
        classifier_w: Matrix,
        classifier_b: Vec<f32>,
    ) -> Self {
        let top = layers
            .last()
            .expect("network needs at least one layer")
            .output_dim();
        assert_eq!(
            classifier_w.cols(),
            top,
            "classifier input dim must equal top layer output dim"
        );
        assert_eq!(
            classifier_w.rows(),
            classifier_b.len(),
            "classifier bias length must equal class count"
        );
        RnnNetwork {
            layers,
            classifier_w,
            classifier_b,
        }
    }

    /// The stacked layers.
    pub fn layers(&self) -> &[RnnLayer<M>] {
        &self.layers
    }

    /// Mutable access to the stacked layers (weight surgery: quantization
    /// rewrites, serving-side weight-cache refreshes).
    pub fn layers_mut(&mut self) -> &mut [RnnLayer<M>] {
        &mut self.layers
    }

    /// Number of stacked RNN layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.classifier_w.rows()
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Total stored parameters (RNN layers + classifier).
    pub fn param_count(&self) -> usize
    where
        M: ParamCount,
    {
        let rnn: usize = self.layers.iter().map(|l| l.param_count()).sum();
        rnn + self.classifier_w.rows() * self.classifier_w.cols() + self.classifier_b.len()
    }

    /// Forward pass producing framewise logits.
    pub fn forward_logits(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut seq: Vec<Vec<f32>> = frames.to_vec();
        for layer in &self.layers {
            let (out, _) = layer.forward_seq(&seq, false);
            seq = out;
        }
        seq.iter()
            .map(|h| {
                let mut logits = self.classifier_w.matvec(h);
                for (l, b) in logits.iter_mut().zip(self.classifier_b.iter()) {
                    *l += b;
                }
                logits
            })
            .collect()
    }

    /// Batched forward pass over several utterances at once, producing
    /// framewise logits per utterance.
    ///
    /// The sequences advance in lockstep so each cell's matvecs fuse
    /// across the batch — with block-circulant weights the cached weight
    /// spectra are streamed once per (timestep, matrix) instead of once
    /// per sequence. Sequences may have unequal lengths; whichever are
    /// still active at a timestep form that step's batch. Per-utterance
    /// results are bit-identical to [`Self::forward_logits`].
    pub fn forward_logits_batch(&self, utterances: &[Vec<Vec<f32>>]) -> Vec<Vec<Vec<f32>>> {
        let mut seqs: Vec<Vec<Vec<f32>>> = utterances.to_vec();
        for layer in &self.layers {
            seqs = layer.forward_seq_batch(&seqs);
        }
        seqs.iter()
            .map(|seq| {
                seq.iter()
                    .map(|h| {
                        let mut logits = self.classifier_w.matvec(h);
                        for (l, b) in logits.iter_mut().zip(self.classifier_b.iter()) {
                            *l += b;
                        }
                        logits
                    })
                    .collect()
            })
            .collect()
    }

    /// Average framewise cross-entropy and accuracy on one labelled
    /// sequence (no gradients).
    ///
    /// # Panics
    ///
    /// Panics if `frames.len() != targets.len()`.
    pub fn evaluate(&self, frames: &[Vec<f32>], targets: &[usize]) -> (f32, f32) {
        assert_eq!(frames.len(), targets.len(), "frame/label length mismatch");
        let logits = self.forward_logits(frames);
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        for (l, &t) in logits.iter().zip(targets.iter()) {
            loss += softmax_cross_entropy(l, t).0;
            if ernn_linalg::ops::argmax(l) == t {
                correct += 1;
            }
        }
        let n = frames.len().max(1) as f32;
        (loss / n, correct as f32 / n)
    }
}

impl RnnNetwork<Matrix> {
    /// Zero gradients shaped like this network.
    pub fn zero_grads(&self) -> NetworkGrads {
        NetworkGrads {
            layers: self.layers.iter().map(|l| l.zero_grads()).collect(),
            classifier_w: Matrix::zeros(self.classifier_w.rows(), self.classifier_w.cols()),
            classifier_b: vec![0.0; self.classifier_b.len()],
        }
    }

    /// Full forward + backward on one labelled sequence.
    ///
    /// Accumulates gradients into `grads` (so minibatches sum naturally)
    /// and returns `(summed loss, frame count)`.
    ///
    /// # Panics
    ///
    /// Panics if `frames.len() != targets.len()` or the sequence is empty.
    pub fn forward_backward(
        &self,
        frames: &[Vec<f32>],
        targets: &[usize],
        grads: &mut NetworkGrads,
    ) -> (f32, usize) {
        assert_eq!(frames.len(), targets.len(), "frame/label length mismatch");
        assert!(!frames.is_empty(), "empty sequence");

        // Forward through the stack, keeping caches and inter-layer
        // activations.
        let mut seqs: Vec<Vec<Vec<f32>>> = Vec::with_capacity(self.layers.len() + 1);
        seqs.push(frames.to_vec());
        let mut caches: Vec<LayerCaches> = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, cache) = layer.forward_seq(seqs.last().expect("non-empty"), true);
            caches.push(cache);
            seqs.push(out);
        }
        let top = seqs.last().expect("non-empty").clone();

        // Classifier + loss, building ∂L/∂h for the top layer.
        let mut loss = 0.0f32;
        let mut d_top: Vec<Vec<f32>> = Vec::with_capacity(frames.len());
        for (h, &t) in top.iter().zip(targets.iter()) {
            let mut logits = self.classifier_w.matvec(h);
            for (l, b) in logits.iter_mut().zip(self.classifier_b.iter()) {
                *l += b;
            }
            let (l, dlogits) = softmax_cross_entropy(&logits, t);
            loss += l;
            grads.classifier_w.add_outer(1.0, &dlogits, h);
            for (b, d) in grads.classifier_b.iter_mut().zip(dlogits.iter()) {
                *b += d;
            }
            d_top.push(self.classifier_w.matvec_t(&dlogits));
        }

        // Backward through the stack.
        let mut d_seq = d_top;
        for (i, layer) in self.layers.iter().enumerate().rev() {
            d_seq = layer.backward_seq(&caches[i], &d_seq, &mut grads.layers[i]);
        }
        (loss, frames.len())
    }

    /// All trainable parameters as mutable slices, in a stable order that
    /// matches [`NetworkGrads::slices`]. Optimizers iterate these pairs.
    pub fn param_slices_mut(&mut self) -> Vec<&mut [f32]> {
        let mut out: Vec<&mut [f32]> = Vec::new();
        for layer in &mut self.layers {
            match layer {
                RnnLayer::Lstm(l) => {
                    out.push(l.wx.as_mut_slice());
                    out.push(l.wr.as_mut_slice());
                    out.push(l.bias.as_mut_slice());
                    if let Some(peeps) = &mut l.peepholes {
                        for p in peeps.iter_mut() {
                            out.push(p.as_mut_slice());
                        }
                    }
                    if let Some(w) = &mut l.wym {
                        out.push(w.as_mut_slice());
                    }
                }
                RnnLayer::Gru(g) => {
                    out.push(g.wzr_x.as_mut_slice());
                    out.push(g.wzr_c.as_mut_slice());
                    out.push(g.bias_zr.as_mut_slice());
                    out.push(g.wcx.as_mut_slice());
                    out.push(g.wcc.as_mut_slice());
                    out.push(g.bias_c.as_mut_slice());
                }
            }
        }
        out.push(self.classifier_w.as_mut_slice());
        out.push(self.classifier_b.as_mut_slice());
        out
    }

    /// The compressible weight matrices with stable names and roles, for
    /// ADMM and analysis. Order matches
    /// [`Self::weight_matrices_mut`] and
    /// [`NetworkGrads::weight_matrices_mut`].
    pub fn weight_matrices(&self) -> Vec<(String, WeightRole, &Matrix)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                RnnLayer::Lstm(l) => {
                    out.push((format!("layer{i}.wx"), WeightRole::Input, &l.wx));
                    out.push((format!("layer{i}.wr"), WeightRole::Recurrent, &l.wr));
                    if let Some(w) = &l.wym {
                        out.push((format!("layer{i}.wym"), WeightRole::Output, w));
                    }
                }
                RnnLayer::Gru(g) => {
                    out.push((format!("layer{i}.wzr_x"), WeightRole::Input, &g.wzr_x));
                    out.push((format!("layer{i}.wzr_c"), WeightRole::Recurrent, &g.wzr_c));
                    out.push((format!("layer{i}.wcx"), WeightRole::Input, &g.wcx));
                    out.push((format!("layer{i}.wcc"), WeightRole::Recurrent, &g.wcc));
                }
            }
        }
        out
    }

    /// The stacked-layer index of each compressible weight matrix, aligned
    /// with [`Self::weight_matrices`] — used for per-layer block-size
    /// policies (the paper's Table I assigns block sizes per layer, e.g.
    /// "4-8" for a two-layer model).
    pub fn weight_layer_indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let count = match layer {
                RnnLayer::Lstm(l) => 2 + usize::from(l.wym.is_some()),
                RnnLayer::Gru(_) => 4,
            };
            out.extend(std::iter::repeat_n(i, count));
        }
        out
    }

    /// Mutable access to the compressible weight matrices (same order as
    /// [`Self::weight_matrices`]).
    pub fn weight_matrices_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out: Vec<&mut Matrix> = Vec::new();
        for layer in &mut self.layers {
            match layer {
                RnnLayer::Lstm(l) => {
                    out.push(&mut l.wx);
                    out.push(&mut l.wr);
                    if let Some(w) = &mut l.wym {
                        out.push(w);
                    }
                }
                RnnLayer::Gru(g) => {
                    out.push(&mut g.wzr_x);
                    out.push(&mut g.wzr_c);
                    out.push(&mut g.wcx);
                    out.push(&mut g.wcc);
                }
            }
        }
        out
    }
}

/// The functional role of a weight matrix — Phase I's fine-tuning step
/// assigns larger block sizes to [`WeightRole::Input`] and
/// [`WeightRole::Output`] matrices, which "will not propagate from each
/// time t to the subsequent time step" (Sec. VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightRole {
    /// Consumes the layer input `x_t`.
    Input,
    /// Consumes the recurrent state.
    Recurrent,
    /// Produces the layer output (LSTM projection).
    Output,
}

impl NetworkGrads {
    /// Gradient slices in the order of
    /// [`RnnNetwork::param_slices_mut`].
    pub fn slices(&self) -> Vec<&[f32]> {
        let mut out: Vec<&[f32]> = Vec::new();
        for layer in &self.layers {
            match layer {
                LayerGrads::Lstm(g) => {
                    out.push(g.wx.as_slice());
                    out.push(g.wr.as_slice());
                    out.push(g.bias.as_slice());
                    if let Some(peeps) = &g.peepholes {
                        for p in peeps.iter() {
                            out.push(p.as_slice());
                        }
                    }
                    if let Some(w) = &g.wym {
                        out.push(w.as_slice());
                    }
                }
                LayerGrads::Gru(g) => {
                    out.push(g.wzr_x.as_slice());
                    out.push(g.wzr_c.as_slice());
                    out.push(g.bias_zr.as_slice());
                    out.push(g.wcx.as_slice());
                    out.push(g.wcc.as_slice());
                    out.push(g.bias_c.as_slice());
                }
            }
        }
        out.push(self.classifier_w.as_slice());
        out.push(self.classifier_b.as_slice());
        out
    }

    /// Mutable weight-matrix gradients in the order of
    /// [`RnnNetwork::weight_matrices`] — the hook ADMM uses to add its
    /// proximal term.
    pub fn weight_matrices_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out: Vec<&mut Matrix> = Vec::new();
        for layer in &mut self.layers {
            match layer {
                LayerGrads::Lstm(g) => {
                    out.push(&mut g.wx);
                    out.push(&mut g.wr);
                    if let Some(w) = &mut g.wym {
                        out.push(w);
                    }
                }
                LayerGrads::Gru(g) => {
                    out.push(&mut g.wzr_x);
                    out.push(&mut g.wzr_c);
                    out.push(&mut g.wcx);
                    out.push(&mut g.wcc);
                }
            }
        }
        out
    }

    /// Scales every gradient by `s` (e.g. `1/frames` for mean loss).
    pub fn scale(&mut self, s: f32) {
        for layer in &mut self.layers {
            match layer {
                LayerGrads::Lstm(g) => {
                    g.wx.scale(s);
                    g.wr.scale(s);
                    g.bias.iter_mut().for_each(|v| *v *= s);
                    if let Some(peeps) = &mut g.peepholes {
                        for p in peeps.iter_mut() {
                            p.iter_mut().for_each(|v| *v *= s);
                        }
                    }
                    if let Some(w) = &mut g.wym {
                        w.scale(s);
                    }
                }
                LayerGrads::Gru(g) => {
                    g.wzr_x.scale(s);
                    g.wzr_c.scale(s);
                    g.bias_zr.iter_mut().for_each(|v| *v *= s);
                    g.wcx.scale(s);
                    g.wcc.scale(s);
                    g.bias_c.iter_mut().for_each(|v| *v *= s);
                }
            }
        }
        self.classifier_w.scale(s);
        self.classifier_b.iter_mut().for_each(|v| *v *= s);
    }

    /// Resets all gradients to zero (reusing allocations).
    pub fn zero(&mut self) {
        self.scale(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_net(cell: CellType, seed: u64) -> RnnNetwork<Matrix> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        NetworkBuilder::new(cell, 4, 3)
            .layer_dims(&[5, 5])
            .peephole(true)
            .build(&mut rng)
    }

    #[test]
    fn forward_logits_shape() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let net = tiny_net(cell, 1);
            let frames = vec![vec![0.1f32; 4]; 7];
            let logits = net.forward_logits(&frames);
            assert_eq!(logits.len(), 7);
            assert!(logits.iter().all(|l| l.len() == 3));
        }
    }

    #[test]
    fn forward_logits_batch_is_bit_identical_to_sequential() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let net = tiny_net(cell, 8);
            let utterances: Vec<Vec<Vec<f32>>> = (0..4)
                .map(|s| {
                    (0..3 + s * 2)
                        .map(|t| vec![0.1 * t as f32, -0.2, 0.05 * s as f32, 0.3])
                        .collect()
                })
                .collect();
            let batched = net.forward_logits_batch(&utterances);
            for (s, utt) in utterances.iter().enumerate() {
                assert_eq!(batched[s], net.forward_logits(utt), "{cell} utterance {s}");
            }
            // Compressed weights take the batch-fused circulant kernel.
            let compressed = crate::compress_network(&net, crate::BlockPolicy::uniform(4));
            let batched = compressed.forward_logits_batch(&utterances);
            for (s, utt) in utterances.iter().enumerate() {
                assert_eq!(
                    batched[s],
                    compressed.forward_logits(utt),
                    "{cell} compressed utterance {s}"
                );
            }
        }
    }

    #[test]
    fn param_and_grad_slices_align() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let mut net = tiny_net(cell, 2);
            let grads = net.zero_grads();
            let g_slices = grads.slices();
            let p_slices = net.param_slices_mut();
            assert_eq!(p_slices.len(), g_slices.len(), "{cell}");
            for (p, g) in p_slices.iter().zip(g_slices.iter()) {
                assert_eq!(p.len(), g.len(), "{cell}");
            }
        }
    }

    #[test]
    fn weight_matrices_align_with_grads() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let mut net = tiny_net(cell, 3);
            let named = net
                .weight_matrices()
                .iter()
                .map(|(n, _, m)| (n.clone(), m.rows(), m.cols()))
                .collect::<Vec<_>>();
            let mut grads = net.zero_grads();
            let g = grads.weight_matrices_mut();
            assert_eq!(named.len(), g.len());
            for ((_, r, c), gm) in named.iter().zip(g.iter()) {
                assert_eq!((gm.rows(), gm.cols()), (*r, *c));
            }
            let w = net.weight_matrices_mut();
            assert_eq!(named.len(), w.len());
        }
    }

    #[test]
    fn network_gradients_match_finite_difference() {
        // End-to-end gradient check through two stacked layers and the
        // classifier.
        for cell in [CellType::Lstm, CellType::Gru] {
            let net = tiny_net(cell, 4);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
            use rand::Rng;
            let frames: Vec<Vec<f32>> = (0..4)
                .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect();
            let targets = vec![0usize, 2, 1, 2];
            let mut grads = net.zero_grads();
            net.forward_backward(&frames, &targets, &mut grads);

            let loss_of = |n: &RnnNetwork<Matrix>| -> f32 {
                let logits = n.forward_logits(&frames);
                logits
                    .iter()
                    .zip(targets.iter())
                    .map(|(l, &t)| softmax_cross_entropy(l, t).0)
                    .sum()
            };

            // Check classifier weight and first-layer weight entries.
            let eps = 1e-2f32;
            let mut p = net.clone();
            for idx in [0usize, 5, 11] {
                let orig = p.classifier_w.as_slice()[idx];
                p.classifier_w.as_mut_slice()[idx] = orig + eps;
                let lp = loss_of(&p);
                p.classifier_w.as_mut_slice()[idx] = orig - eps;
                let lm = loss_of(&p);
                p.classifier_w.as_mut_slice()[idx] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                let an = grads.classifier_w.as_slice()[idx];
                assert!(
                    (fd - an).abs() < 3e-2 * (1.0 + fd.abs()),
                    "{cell} classifier[{idx}]: fd={fd} an={an}"
                );
            }
            {
                // First weight matrix of the first layer.
                let orig = p.weight_matrices_mut()[0].as_slice()[3];
                p.weight_matrices_mut()[0].as_mut_slice()[3] = orig + eps;
                let lp = loss_of(&p);
                p.weight_matrices_mut()[0].as_mut_slice()[3] = orig - eps;
                let lm = loss_of(&p);
                p.weight_matrices_mut()[0].as_mut_slice()[3] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                let an = grads.weight_matrices_mut()[0].as_slice()[3];
                assert!(
                    (fd - an).abs() < 3e-2 * (1.0 + fd.abs()),
                    "{cell} layer0 w[3]: fd={fd} an={an}"
                );
            }
        }
    }

    #[test]
    fn evaluate_reports_loss_and_accuracy() {
        let net = tiny_net(CellType::Gru, 5);
        let frames = vec![vec![0.0f32; 4]; 10];
        let targets = vec![1usize; 10];
        let (loss, acc) = net.evaluate(&frames, &targets);
        assert!(loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn builder_projection_chains_layer_dims() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let net = NetworkBuilder::new(CellType::Lstm, 8, 5)
            .layer_dims(&[16, 16])
            .projection(8)
            .build(&mut rng);
        // Second layer consumes the first layer's projected output.
        assert_eq!(net.layers()[1].input_dim(), 8);
        assert_eq!(net.classifier_w.cols(), 8);
    }

    #[test]
    fn grads_scale_and_zero() {
        let net = tiny_net(CellType::Lstm, 7);
        let mut grads = net.zero_grads();
        let frames = vec![vec![0.5f32; 4]; 3];
        net.forward_backward(&frames, &[0, 1, 2], &mut grads);
        let norm_before: f32 = grads
            .slices()
            .iter()
            .flat_map(|s| s.iter())
            .map(|v| v * v)
            .sum();
        assert!(norm_before > 0.0);
        grads.zero();
        let norm_after: f32 = grads
            .slices()
            .iter()
            .flat_map(|s| s.iter())
            .map(|v| v * v)
            .sum();
        assert_eq!(norm_after, 0.0);
    }
}
