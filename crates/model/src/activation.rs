//! Scalar activation functions and their derivatives.

/// Logistic sigmoid `σ(x) = 1 / (1 + e^(−x))`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// An activation function choice.
///
/// The paper writes the cell-input activation of Eqn. 1c with `σ`; the Sak
/// et al. architecture it cites uses `tanh` there. Both are supported: the
/// default network uses [`Act::Tanh`] (better conditioning for training)
/// and the literal-paper variant is one configuration flag away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Act {
    /// Logistic sigmoid, output in `(0, 1)`.
    Sigmoid,
    /// Hyperbolic tangent, output in `(−1, 1)`.
    #[default]
    Tanh,
}

impl Act {
    /// Applies the activation.
    #[inline]
    pub fn eval(self, x: f32) -> f32 {
        match self {
            Act::Sigmoid => sigmoid(x),
            Act::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *output* value `y = eval(x)`,
    /// the form BPTT uses (`σ' = y(1−y)`, `tanh' = 1−y²`).
    #[inline]
    pub fn deriv_from_output(self, y: f32) -> f32 {
        match self {
            Act::Sigmoid => y * (1.0 - y),
            Act::Tanh => 1.0 - y * y,
        }
    }

    /// Applies the activation to a slice in place.
    pub fn eval_slice(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.eval(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_midpoint_and_symmetry() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for act in [Act::Sigmoid, Act::Tanh] {
            for i in -10..=10 {
                let x = i as f32 * 0.3;
                let eps = 1e-3;
                let fd = (act.eval(x + eps) - act.eval(x - eps)) / (2.0 * eps);
                let an = act.deriv_from_output(act.eval(x));
                assert!((fd - an).abs() < 1e-3, "{act:?} at {x}: {fd} vs {an}");
            }
        }
    }

    #[test]
    fn slice_eval_matches_scalar() {
        let mut xs = vec![-1.0f32, 0.0, 1.0];
        Act::Tanh.eval_slice(&mut xs);
        assert_eq!(xs, vec![(-1.0f32).tanh(), 0.0, 1.0f32.tanh()]);
    }

    #[test]
    fn default_is_tanh() {
        assert_eq!(Act::default(), Act::Tanh);
    }
}
