//! Uniform wrapper over the two cell types.

use crate::gru::{GruCache, GruGrads, GruLayer};
use crate::lstm::{LstmCache, LstmGrads, LstmLayer, ParamCount};
use ernn_linalg::{MatVec, Matrix};

/// A stacked-RNN layer: either cell type behind one interface.
///
/// Phase I of the E-RNN framework switches between LSTM and GRU with the
/// rest of the pipeline unchanged (Fig. 2 step 3); this enum is that switch
/// point.
#[derive(Debug, Clone, PartialEq)]
pub enum RnnLayer<M> {
    /// An LSTM layer (paper Eqn. 1).
    Lstm(LstmLayer<M>),
    /// A GRU layer (paper Eqn. 2).
    Gru(GruLayer<M>),
}

/// Forward caches for one layer over a sequence.
#[derive(Debug, Clone)]
pub enum LayerCaches {
    /// Caches of an LSTM layer.
    Lstm(Vec<LstmCache>),
    /// Caches of a GRU layer.
    Gru(Vec<GruCache>),
}

/// Gradients for one layer.
#[derive(Debug, Clone)]
pub enum LayerGrads {
    /// Gradients of an LSTM layer.
    Lstm(LstmGrads),
    /// Gradients of a GRU layer.
    Gru(GruGrads),
}

impl<M: MatVec> RnnLayer<M> {
    /// The layer's output dimension per frame.
    pub fn output_dim(&self) -> usize {
        match self {
            RnnLayer::Lstm(l) => l.config().output_dim,
            RnnLayer::Gru(g) => g.hidden_dim(),
        }
    }

    /// The layer's input dimension per frame.
    pub fn input_dim(&self) -> usize {
        match self {
            RnnLayer::Lstm(l) => l.config().input_dim,
            RnnLayer::Gru(g) => g.input_dim(),
        }
    }

    /// The layer's hidden ("layer size") dimension.
    pub fn hidden_dim(&self) -> usize {
        match self {
            RnnLayer::Lstm(l) => l.config().hidden_dim,
            RnnLayer::Gru(g) => g.hidden_dim(),
        }
    }

    /// Runs a batch of sequences in lockstep, fusing the cell matvecs
    /// across the active sequences at each timestep. Per-sequence outputs
    /// are bit-identical to [`Self::forward_seq`].
    pub fn forward_seq_batch(&self, seqs: &[Vec<Vec<f32>>]) -> Vec<Vec<Vec<f32>>> {
        match self {
            RnnLayer::Lstm(l) => l.forward_seq_batch(seqs),
            RnnLayer::Gru(g) => g.forward_seq_batch(seqs),
        }
    }

    /// Runs the layer over a sequence.
    pub fn forward_seq(
        &self,
        inputs: &[Vec<f32>],
        want_cache: bool,
    ) -> (Vec<Vec<f32>>, LayerCaches) {
        match self {
            RnnLayer::Lstm(l) => {
                let (out, caches) = l.forward_seq(inputs, want_cache);
                (out, LayerCaches::Lstm(caches))
            }
            RnnLayer::Gru(g) => {
                let (out, caches) = g.forward_seq(inputs, want_cache);
                (out, LayerCaches::Gru(caches))
            }
        }
    }

    /// Number of stored parameters.
    pub fn param_count(&self) -> usize
    where
        M: ParamCount,
    {
        match self {
            RnnLayer::Lstm(l) => l.param_count(),
            RnnLayer::Gru(g) => g.param_count(),
        }
    }
}

impl RnnLayer<Matrix> {
    /// Zero gradients shaped like this layer.
    pub fn zero_grads(&self) -> LayerGrads {
        match self {
            RnnLayer::Lstm(l) => LayerGrads::Lstm(l.zero_grads()),
            RnnLayer::Gru(g) => LayerGrads::Gru(g.zero_grads()),
        }
    }

    /// Backpropagation through time; dispatches on the cell type.
    ///
    /// # Panics
    ///
    /// Panics if the cache variant does not match the layer type.
    pub fn backward_seq(
        &self,
        caches: &LayerCaches,
        d_outputs: &[Vec<f32>],
        grads: &mut LayerGrads,
    ) -> Vec<Vec<f32>> {
        match (self, caches, grads) {
            (RnnLayer::Lstm(l), LayerCaches::Lstm(c), LayerGrads::Lstm(g)) => {
                l.backward_seq(c, d_outputs, g)
            }
            (RnnLayer::Gru(l), LayerCaches::Gru(c), LayerGrads::Gru(g)) => {
                l.backward_seq(c, d_outputs, g)
            }
            _ => panic!("layer/cache/grads variant mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LstmConfig;
    use rand::SeedableRng;

    #[test]
    fn dims_dispatch_to_cells() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let lstm = RnnLayer::Lstm(LstmLayer::new_dense(LstmConfig::simple(3, 5), &mut rng));
        assert_eq!(lstm.input_dim(), 3);
        assert_eq!(lstm.output_dim(), 5);
        assert_eq!(lstm.hidden_dim(), 5);
        let gru = RnnLayer::Gru(GruLayer::new_dense(4, 6, &mut rng));
        assert_eq!(gru.input_dim(), 4);
        assert_eq!(gru.output_dim(), 6);
    }

    #[test]
    #[should_panic(expected = "variant mismatch")]
    fn backward_rejects_mismatched_cache() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let lstm_layer = LstmLayer::new_dense(LstmConfig::simple(2, 3), &mut rng);
        let gru_layer = GruLayer::new_dense(2, 3, &mut rng);
        let inputs = vec![vec![0.0, 0.0]];
        let (_, gru_caches) = gru_layer.forward_seq(&inputs, true);
        let layer = RnnLayer::Lstm(lstm_layer);
        let mut grads = layer.zero_grads();
        let _ = layer.backward_seq(
            &LayerCaches::Gru(gru_caches),
            &[vec![0.0, 0.0, 0.0]],
            &mut grads,
        );
    }
}
