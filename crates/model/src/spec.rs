//! A declarative model-shape description shared by the pipeline builder
//! and the serialized model artifact.
//!
//! [`ModelSpec`] is the "what" of a model — cell type, dimensions, layer
//! stack, structural options — separated from the "how" (training
//! hyperparameters, block policy, datapath), so the same value can seed a
//! [`NetworkBuilder`], validate an externally trained network, and travel
//! inside a serialized artifact as provenance of the deployed shape.

use crate::layer::RnnLayer;
use crate::network::{CellType, NetworkBuilder, RnnNetwork};
use crate::Act;
use ernn_linalg::MatVec;

/// The declarative shape of an acoustic model: everything
/// [`NetworkBuilder`] needs, as plain data.
///
/// ```
/// use ernn_model::{CellType, ModelSpec};
/// let spec = ModelSpec::new(CellType::Gru, 26, 40).layer_dims(&[64, 64]);
/// assert!(spec.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Recurrent cell type.
    pub cell: CellType,
    /// Input feature dimension per frame.
    pub input_dim: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Hidden dimension of each stacked layer.
    pub layer_dims: Vec<usize>,
    /// LSTM peephole connections (ignored for GRU).
    pub peephole: bool,
    /// LSTM recurrent projection dimension (ignored for GRU).
    pub projection: Option<usize>,
    /// Cell-input activation (Eqn. 1c).
    pub cell_activation: Act,
}

impl ModelSpec {
    /// A spec with the [`NetworkBuilder`] defaults: one 128-wide layer,
    /// no peepholes, no projection, tanh cell input.
    pub fn new(cell: CellType, input_dim: usize, classes: usize) -> Self {
        ModelSpec {
            cell,
            input_dim,
            classes,
            layer_dims: vec![128],
            peephole: false,
            projection: None,
            cell_activation: Act::Tanh,
        }
    }

    /// Replaces the stacked layer dimensions.
    pub fn layer_dims(mut self, dims: &[usize]) -> Self {
        self.layer_dims = dims.to_vec();
        self
    }

    /// Enables LSTM peephole connections.
    pub fn peephole(mut self, on: bool) -> Self {
        self.peephole = on;
        self
    }

    /// Enables an LSTM recurrent projection of the given dimension.
    pub fn projection(mut self, dim: usize) -> Self {
        self.projection = Some(dim);
        self
    }

    /// Sets the cell-input activation.
    pub fn cell_activation(mut self, act: Act) -> Self {
        self.cell_activation = act;
        self
    }

    /// Checks the spec is instantiable (non-empty layer stack, non-zero
    /// dimensions). Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.input_dim == 0 {
            return Err("input dimension must be non-zero".into());
        }
        if self.classes == 0 {
            return Err("class count must be non-zero".into());
        }
        if self.layer_dims.is_empty() {
            return Err("need at least one layer".into());
        }
        if let Some(&bad) = self.layer_dims.iter().find(|&&d| d == 0) {
            return Err(format!("layer dimension must be non-zero, got {bad}"));
        }
        if self.projection == Some(0) {
            return Err("projection dimension must be non-zero".into());
        }
        Ok(())
    }

    /// The [`NetworkBuilder`] configured exactly as this spec describes.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`Self::validate`]).
    pub fn builder(&self) -> NetworkBuilder {
        let mut b = NetworkBuilder::new(self.cell, self.input_dim, self.classes)
            .layer_dims(&self.layer_dims)
            .peephole(self.peephole)
            .cell_activation(self.cell_activation);
        if let Some(p) = self.projection {
            b = b.projection(p);
        }
        b
    }

    /// The output dimension of stacked layer `i` under this spec
    /// (projection-aware for LSTM).
    fn layer_output_dim(&self, i: usize) -> usize {
        let h = self.layer_dims[i];
        match (self.cell, self.projection) {
            (CellType::Lstm, Some(p)) => p.min(h),
            _ => h,
        }
    }

    /// Checks that `net` has exactly the shape this spec describes —
    /// cell types, dimensions, peepholes, projection, classifier shape.
    /// Returns a human-readable mismatch description on failure.
    pub fn matches<M: MatVec>(&self, net: &RnnNetwork<M>) -> Result<(), String> {
        self.validate()?;
        if net.num_layers() != self.layer_dims.len() {
            return Err(format!(
                "layer count mismatch: spec {} vs network {}",
                self.layer_dims.len(),
                net.num_layers()
            ));
        }
        if net.input_dim() != self.input_dim {
            return Err(format!(
                "input dim mismatch: spec {} vs network {}",
                self.input_dim,
                net.input_dim()
            ));
        }
        if net.num_classes() != self.classes {
            return Err(format!(
                "class count mismatch: spec {} vs network {}",
                self.classes,
                net.num_classes()
            ));
        }
        for (i, layer) in net.layers().iter().enumerate() {
            // Inter-layer chaining: layer i must consume exactly what the
            // previous layer (or the input) produces. Individually
            // well-shaped layers can still disagree here, and a chained
            // mismatch only surfaces as a matvec panic at inference time.
            let expect_in = if i == 0 {
                self.input_dim
            } else {
                self.layer_output_dim(i - 1)
            };
            if layer.input_dim() != expect_in {
                return Err(format!(
                    "layer {i} input dim mismatch: expected {expect_in} from the previous \
                     layer, network has {}",
                    layer.input_dim()
                ));
            }
            match (self.cell, layer) {
                (CellType::Lstm, RnnLayer::Lstm(l)) => {
                    let cfg = l.config();
                    if cfg.hidden_dim != self.layer_dims[i] {
                        return Err(format!(
                            "layer {i} hidden dim mismatch: spec {} vs network {}",
                            self.layer_dims[i], cfg.hidden_dim
                        ));
                    }
                    if cfg.output_dim != self.layer_output_dim(i) {
                        return Err(format!(
                            "layer {i} output dim mismatch: spec {} vs network {}",
                            self.layer_output_dim(i),
                            cfg.output_dim
                        ));
                    }
                    if cfg.peephole != self.peephole {
                        return Err(format!("layer {i} peephole presence mismatch"));
                    }
                    if cfg.cell_activation != self.cell_activation {
                        return Err(format!("layer {i} cell activation mismatch"));
                    }
                }
                (CellType::Gru, RnnLayer::Gru(g)) => {
                    if g.hidden_dim() != self.layer_dims[i] {
                        return Err(format!(
                            "layer {i} hidden dim mismatch: spec {} vs network {}",
                            self.layer_dims[i],
                            g.hidden_dim()
                        ));
                    }
                }
                _ => return Err(format!("layer {i} cell type mismatch")),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn builder_round_trips_the_spec() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let spec = ModelSpec::new(cell, 6, 4)
                .layer_dims(&[8, 8])
                .peephole(true);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
            let net = spec.builder().build(&mut rng);
            assert_eq!(spec.matches(&net), Ok(()), "{cell}");
        }
    }

    #[test]
    fn builder_matches_hand_rolled_construction_bit_for_bit() {
        // The spec path must be a pure re-packaging of NetworkBuilder:
        // identical RNG stream, identical weights.
        let spec = ModelSpec::new(CellType::Gru, 5, 3).layer_dims(&[8]);
        let mut a = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let mut b = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let via_spec = spec.builder().build(&mut a);
        let by_hand = NetworkBuilder::new(CellType::Gru, 5, 3)
            .layer_dims(&[8])
            .build(&mut b);
        assert_eq!(via_spec, by_hand);
    }

    #[test]
    fn validation_rejects_degenerate_shapes() {
        assert!(ModelSpec::new(CellType::Gru, 0, 4).validate().is_err());
        assert!(ModelSpec::new(CellType::Gru, 4, 0).validate().is_err());
        assert!(ModelSpec::new(CellType::Gru, 4, 4)
            .layer_dims(&[])
            .validate()
            .is_err());
        assert!(ModelSpec::new(CellType::Gru, 4, 4)
            .layer_dims(&[8, 0])
            .validate()
            .is_err());
    }

    #[test]
    fn matches_rejects_shape_drift() {
        let spec = ModelSpec::new(CellType::Gru, 6, 4).layer_dims(&[8]);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let net = spec.builder().build(&mut rng);
        assert!(spec.matches(&net).is_ok());
        let wrong_dims = spec.clone().layer_dims(&[16]);
        assert!(wrong_dims.matches(&net).is_err());
        let wrong_cell = ModelSpec::new(CellType::Lstm, 6, 4).layer_dims(&[8]);
        assert!(wrong_cell.matches(&net).is_err());
    }

    #[test]
    fn matches_rejects_broken_inter_layer_chaining() {
        use crate::{GruLayer, Matrix, RnnLayer};
        // Two GRU layers, each internally consistent, but layer 1 reads a
        // 12-wide input while layer 0 outputs 8 — only the chaining check
        // can catch this before an inference-time matvec panic.
        let gru = |in_dim: usize, h: usize| {
            GruLayer::from_parts(
                in_dim,
                h,
                Act::Tanh,
                Matrix::zeros(2 * h, in_dim),
                Matrix::zeros(2 * h, h),
                vec![0.0; 2 * h],
                Matrix::zeros(h, in_dim),
                Matrix::zeros(h, h),
                vec![0.0; h],
            )
        };
        let net = RnnNetwork::from_parts(
            vec![RnnLayer::Gru(gru(6, 8)), RnnLayer::Gru(gru(12, 16))],
            Matrix::zeros(5, 16),
            vec![0.0; 5],
        );
        let spec = ModelSpec::new(CellType::Gru, 6, 5).layer_dims(&[8, 16]);
        let err = spec.matches(&net).unwrap_err();
        assert!(err.contains("layer 1 input dim"), "{err}");
    }

    #[test]
    fn projection_aware_output_dims() {
        let spec = ModelSpec::new(CellType::Lstm, 6, 4)
            .layer_dims(&[16, 16])
            .projection(8);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let net = spec.builder().build(&mut rng);
        assert_eq!(spec.matches(&net), Ok(()));
    }
}
