//! RNN cells, stacked networks and training for the E-RNN reproduction.
//!
//! Implements the two cell types the paper evaluates (Sec. II):
//!
//! * [`LstmLayer`] — the Google-style LSTM of Sak et al. with peephole
//!   connections and an optional recurrent projection layer (paper Eqn. 1,
//!   Fig. 3a). The fused weight layout follows the paper's observation that
//!   the four gate matrices concatenate into one matvec
//!   `W_(ifgo)(xr)·[xᵀ, yᵀ₋₁]ᵀ`.
//! * [`GruLayer`] — the paper's GRU variant (Eqn. 2, Fig. 3b) where the
//!   update/reset gates read `[xᵀ, cᵀ₋₁]ᵀ` and the candidate state applies
//!   the reset gate to the previous cell state before its recurrent matvec.
//!
//! Both cells are generic over [`MatVec`], so the identical forward code
//! runs dense training weights and block-circulant inference weights.
//! Full backpropagation through time is implemented for the dense
//! representation ([`RnnNetwork::forward_backward`]) and validated by
//! finite-difference tests.
//!
//! ```
//! use ernn_model::{NetworkBuilder, CellType};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut net = NetworkBuilder::new(CellType::Lstm, 8, 10)
//!     .layer_dims(&[16, 16])
//!     .build(&mut rng);
//! let frames = vec![vec![0.1f32; 8]; 5];
//! let logits = net.forward_logits(&frames);
//! assert_eq!(logits.len(), 5);
//! assert_eq!(logits[0].len(), 10);
//! ```

mod activation;
mod compress;
mod gru;
mod layer;
mod loss;
mod lstm;
mod network;
mod optim;
mod spec;
pub mod trainer;

pub use activation::Act;
pub use compress::{compress_network, compress_network_layers, BlockPolicy};
pub use gru::{GruCache, GruGrads, GruLayer, GruScratch};
pub use layer::{LayerCaches, LayerGrads, RnnLayer};
pub use loss::softmax_cross_entropy;
pub use lstm::{LstmCache, LstmConfig, LstmGrads, LstmLayer, LstmScratch, LstmState, ParamCount};
pub use network::{CellType, NetworkBuilder, NetworkGrads, RnnNetwork, WeightRole};
pub use optim::{Adam, Optimizer, Sgd};
pub use spec::ModelSpec;

pub use ernn_linalg::{BlockCirculantMatrix, MatVec, Matrix, WeightMatrix};
