//! Framewise classification loss.

use ernn_linalg::ops::softmax;

/// Softmax cross-entropy for one frame.
///
/// Returns `(loss, ∂loss/∂logits)`. The gradient is the classic
/// `softmax(logits) − one_hot(target)`.
///
/// # Panics
///
/// Panics if `target >= logits.len()`.
///
/// ```
/// use ernn_model::softmax_cross_entropy;
/// let (loss, grad) = softmax_cross_entropy(&[2.0, 0.0, 0.0], 0);
/// assert!(loss < 0.5); // confident and correct
/// assert!(grad[0] < 0.0 && grad[1] > 0.0);
/// ```
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    assert!(
        target < logits.len(),
        "target {target} out of range for {} classes",
        logits.len()
    );
    let probs = softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let (loss, _) = softmax_cross_entropy(&[0.0; 4], 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let (_, grad) = softmax_cross_entropy(&[1.0, -2.0, 0.5], 1);
        let s: f32 = grad.iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = [0.3f32, -0.7, 1.2, 0.1];
        let target = 2;
        let (_, grad) = softmax_cross_entropy(&logits, target);
        let eps = 1e-3;
        for k in 0..logits.len() {
            let mut lp = logits;
            lp[k] += eps;
            let mut lm = logits;
            lm[k] -= eps;
            let fd = (softmax_cross_entropy(&lp, target).0 - softmax_cross_entropy(&lm, target).0)
                / (2.0 * eps);
            assert!((fd - grad[k]).abs() < 1e-3, "k={k}: {fd} vs {}", grad[k]);
        }
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let (loss, _) = softmax_cross_entropy(&[50.0, 0.0], 0);
        assert!(loss < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        let _ = softmax_cross_entropy(&[0.0, 0.0], 5);
    }
}
