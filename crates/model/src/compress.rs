//! Compression of a trained dense network into block-circulant form.
//!
//! Phase I of E-RNN ends with a model whose weight matrices carry
//! per-role block sizes: the fine-tuning step (Sec. VI-B step 3) may give
//! the input and output matrices a *larger* block size than the recurrent
//! matrices because they "will not propagate from each time t to the
//! subsequent time step" ("we limit the maximum type of block sizes to
//! 2"). [`BlockPolicy`] captures that decision and
//! [`compress_network`] applies it, producing a network whose forward pass
//! runs on FFT kernels.

use crate::layer::RnnLayer;
use crate::network::{RnnNetwork, WeightRole};
use ernn_linalg::{BlockCirculantMatrix, Matrix, WeightMatrix};

/// Block sizes per weight role (1 = leave dense).
///
/// ```
/// use ernn_model::{BlockPolicy, WeightRole};
/// let uniform = BlockPolicy::uniform(8);
/// assert_eq!(uniform.for_role(WeightRole::Recurrent), 8);
/// let tuned = BlockPolicy::with_io_block(8, 16); // paper's step-3 variant
/// assert_eq!(tuned.for_role(WeightRole::Input), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPolicy {
    /// Block size for recurrent matrices (`W_*r`, `W_zr_c`, `W_c̃c`).
    pub recurrent: usize,
    /// Block size for input matrices (`W_*x`).
    pub input: usize,
    /// Block size for output/projection matrices (`W_ym`).
    pub output: usize,
}

impl BlockPolicy {
    /// The same block size everywhere.
    pub fn uniform(block: usize) -> Self {
        BlockPolicy {
            recurrent: block,
            input: block,
            output: block,
        }
    }

    /// The paper's fine-tuned variant: `base` for recurrent matrices, a
    /// (typically larger) `io_block` for input and output matrices.
    pub fn with_io_block(base: usize, io_block: usize) -> Self {
        BlockPolicy {
            recurrent: base,
            input: io_block,
            output: io_block,
        }
    }

    /// Block size for a given role.
    pub fn for_role(&self, role: WeightRole) -> usize {
        match role {
            WeightRole::Input => self.input,
            WeightRole::Recurrent => self.recurrent,
            WeightRole::Output => self.output,
        }
    }

    /// The number of distinct block sizes used (the paper's control logic
    /// supports at most 2).
    pub fn distinct_sizes(&self) -> usize {
        let mut v = [self.recurrent, self.input, self.output];
        v.sort_unstable();
        let mut n = 1;
        for w in v.windows(2) {
            if w[0] != w[1] {
                n += 1;
            }
        }
        n
    }
}

fn compress_matrix(m: &Matrix, block: usize) -> WeightMatrix {
    if block <= 1 {
        WeightMatrix::Dense(m.clone())
    } else {
        WeightMatrix::Circulant(BlockCirculantMatrix::project_dense(m, block))
    }
}

/// Projects every compressible weight matrix of a dense network onto the
/// block-circulant manifold according to `policy`.
///
/// Biases, peepholes and the classifier stay dense (they are `O(n)`
/// already, "a small quantity of corresponding parameters", Sec. III-A).
///
/// Note: projecting a freshly trained *unconstrained* network loses
/// accuracy; run ADMM training first (`ernn-admm`) so that the weights are
/// already (near-)circulant and the projection is lossless.
pub fn compress_network(net: &RnnNetwork<Matrix>, policy: BlockPolicy) -> RnnNetwork<WeightMatrix> {
    compress_network_layers(net, &vec![policy; net.num_layers()])
}

/// Like [`compress_network`] but with one [`BlockPolicy`] per stacked
/// layer — the granularity of the paper's Table I ("Block Size 4-8" gives
/// layer 0 block 4 and layer 1 block 8).
///
/// # Panics
///
/// Panics if `policies.len() != net.num_layers()`.
pub fn compress_network_layers(
    net: &RnnNetwork<Matrix>,
    policies: &[BlockPolicy],
) -> RnnNetwork<WeightMatrix> {
    assert_eq!(
        policies.len(),
        net.num_layers(),
        "need one block policy per layer"
    );
    let layers = net
        .layers()
        .iter()
        .zip(policies.iter())
        .map(|(layer, policy)| match layer {
            RnnLayer::Lstm(l) => RnnLayer::Lstm(crate::LstmLayer::from_parts(
                *l.config(),
                compress_matrix(&l.wx, policy.input),
                compress_matrix(&l.wr, policy.recurrent),
                l.bias.clone(),
                l.peepholes.clone(),
                l.wym.as_ref().map(|w| compress_matrix(w, policy.output)),
            )),
            RnnLayer::Gru(g) => RnnLayer::Gru(crate::GruLayer::from_parts(
                g.input_dim(),
                g.hidden_dim(),
                g.candidate_activation,
                compress_matrix(&g.wzr_x, policy.input),
                compress_matrix(&g.wzr_c, policy.recurrent),
                g.bias_zr.clone(),
                compress_matrix(&g.wcx, policy.input),
                compress_matrix(&g.wcc, policy.recurrent),
                g.bias_c.clone(),
            )),
        })
        .collect();
    RnnNetwork::from_parts(layers, net.classifier_w.clone(), net.classifier_b.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellType, NetworkBuilder};
    use rand::SeedableRng;

    fn dense_net(cell: CellType) -> RnnNetwork<Matrix> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        NetworkBuilder::new(cell, 8, 5)
            .layer_dims(&[16, 16])
            .peephole(true)
            .build(&mut rng)
    }

    #[test]
    fn compression_reduces_params() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let net = dense_net(cell);
            let compressed = compress_network(&net, BlockPolicy::uniform(8));
            assert!(
                compressed.param_count() < net.param_count(),
                "{cell}: {} !< {}",
                compressed.param_count(),
                net.param_count()
            );
        }
    }

    #[test]
    fn uniform_policy_block_sizes_propagate() {
        let net = dense_net(CellType::Lstm);
        let compressed = compress_network(&net, BlockPolicy::uniform(4));
        for layer in compressed.layers() {
            if let RnnLayer::Lstm(l) = layer {
                assert_eq!(l.wx.block_size(), 4);
                assert_eq!(l.wr.block_size(), 4);
            }
        }
    }

    #[test]
    fn io_policy_gives_larger_input_blocks() {
        let net = dense_net(CellType::Gru);
        let policy = BlockPolicy::with_io_block(4, 8);
        assert_eq!(policy.distinct_sizes(), 2);
        let compressed = compress_network(&net, policy);
        if let RnnLayer::Gru(g) = &compressed.layers()[0] {
            assert_eq!(g.wzr_x.block_size(), 8);
            assert_eq!(g.wzr_c.block_size(), 4);
        } else {
            panic!("expected GRU layer");
        }
    }

    #[test]
    fn block_one_keeps_dense_and_exact() {
        let net = dense_net(CellType::Lstm);
        let compressed = compress_network(&net, BlockPolicy::uniform(1));
        let frames = vec![vec![0.3f32; 8]; 4];
        let a = net.forward_logits(&frames);
        let b = compressed.forward_logits(&frames);
        for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn projection_of_circulant_weights_is_lossless() {
        // Make the dense weights exactly circulant, then compress: the
        // forward pass must be preserved (up to FFT rounding).
        let mut net = dense_net(CellType::Gru);
        for w in net.weight_matrices_mut() {
            let projected = BlockCirculantMatrix::project_dense(w, 4).to_dense();
            *w = projected;
        }
        let compressed = compress_network(&net, BlockPolicy::uniform(4));
        let frames = vec![vec![0.2f32; 8]; 6];
        let a = net.forward_logits(&frames);
        let b = compressed.forward_logits(&frames);
        for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn compression_ratio_tracks_block_size() {
        let net = dense_net(CellType::Lstm);
        let c4 = compress_network(&net, BlockPolicy::uniform(4)).param_count();
        let c8 = compress_network(&net, BlockPolicy::uniform(8)).param_count();
        assert!(c8 < c4);
    }
}
