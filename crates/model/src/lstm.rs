//! The LSTM cell of paper Eqn. 1 (Sak et al. architecture, Fig. 3a).
//!
//! Gate pre-activations are computed with two fused matvecs, exactly the
//! structure the paper exploits on hardware (Sec. II-A: "the four gate/cell
//! matrices can be concatenated and calculated through one matrix-vector
//! multiplication as `W_(ifco)(xr)·[xᵀ, yᵀ₋₁]ᵀ`"): `wx` stacks the four
//! input matrices `(i, f, g, o)` and `wr` the four recurrent matrices.
//! Peephole connections are diagonal (stored as vectors, applied with `⊙`)
//! and the optional projection `W_ym` maps the cell output `m_t` to the
//! lower-dimensional recurrent output `y_t` (Eqn. 1g).

use crate::activation::{sigmoid, Act};
use ernn_linalg::ops::hadamard_acc;
use ernn_linalg::{MatVec, MatVecScratch, Matrix};
use rand::Rng;

/// Reusable workspace for the allocation-free LSTM step kernels
/// ([`LstmLayer::step_into`] / [`LstmLayer::step_batch_into`]).
///
/// One scratch serves any layer shape and batch size; buffers grow to the
/// largest size seen and are then reused, and the embedded
/// [`MatVecScratch`] threads straight down into the FFT kernels.
#[derive(Debug, Clone, Default)]
pub struct LstmScratch {
    /// Gate pre-activations (`batch × 4H`).
    pre: Vec<f32>,
    /// Recurrent matvec output (`batch × 4H`).
    rec: Vec<f32>,
    /// Cell output `m_t` before projection (`batch × H`).
    m: Vec<f32>,
    /// Matvec workspace shared by all weight matrices.
    pub mv: MatVecScratch,
}

impl LstmScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        LstmScratch::default()
    }
}

/// Static configuration of one LSTM layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LstmConfig {
    /// Input dimension `|x_t|`.
    pub input_dim: usize,
    /// Hidden (cell) dimension `|c_t|` — the paper's "layer size".
    pub hidden_dim: usize,
    /// Recurrent output dimension `|y_t|`; equals `hidden_dim` unless a
    /// projection layer is present (paper Table I uses projection 512 for
    /// the 1024 models).
    pub output_dim: usize,
    /// Whether the diagonal peephole connections of Eqn. 1a/1b/1e exist.
    pub peephole: bool,
    /// Activation for the cell input `g_t` (Eqn. 1c — see [`Act`]).
    pub cell_activation: Act,
}

impl LstmConfig {
    /// A plain LSTM: no projection (`output_dim == hidden_dim`), no
    /// peepholes, tanh cell input.
    pub fn simple(input_dim: usize, hidden_dim: usize) -> Self {
        LstmConfig {
            input_dim,
            hidden_dim,
            output_dim: hidden_dim,
            peephole: false,
            cell_activation: Act::Tanh,
        }
    }

    /// Whether a projection matrix `W_ym` is present.
    pub fn has_projection(&self) -> bool {
        self.output_dim != self.hidden_dim
    }
}

/// One LSTM layer, generic over the weight representation.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmLayer<M> {
    cfg: LstmConfig,
    /// Fused input weights `(4H × I)`, gate order `i, f, g, o`.
    pub wx: M,
    /// Fused recurrent weights `(4H × R)`.
    pub wr: M,
    /// Gate biases `(4H)`.
    pub bias: Vec<f32>,
    /// Peephole vectors `(p_i, p_f, p_o)`, present iff `cfg.peephole`.
    pub peepholes: Option<[Vec<f32>; 3]>,
    /// Projection `W_ym (R × H)`, present iff `cfg.has_projection()`.
    pub wym: Option<M>,
}

/// Recurrent state carried across timesteps.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Cell state `c_t` (`hidden_dim`).
    pub c: Vec<f32>,
    /// Projected output `y_t` (`output_dim`).
    pub y: Vec<f32>,
}

/// Per-timestep values cached by the forward pass for BPTT.
#[derive(Debug, Clone)]
pub struct LstmCache {
    x: Vec<f32>,
    y_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
    tanh_c: Vec<f32>,
    m: Vec<f32>,
}

/// Gradients of one LSTM layer, shaped like the parameters.
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// Gradient of [`LstmLayer::wx`].
    pub wx: Matrix,
    /// Gradient of [`LstmLayer::wr`].
    pub wr: Matrix,
    /// Gradient of the gate biases.
    pub bias: Vec<f32>,
    /// Gradients of the peephole vectors.
    pub peepholes: Option<[Vec<f32>; 3]>,
    /// Gradient of the projection matrix.
    pub wym: Option<Matrix>,
}

impl<M: MatVec> LstmLayer<M> {
    /// Assembles a layer from explicit parts (used by the compression pass
    /// to rebuild a layer with block-circulant weights).
    ///
    /// # Panics
    ///
    /// Panics if any tensor shape disagrees with `cfg`.
    pub fn from_parts(
        cfg: LstmConfig,
        wx: M,
        wr: M,
        bias: Vec<f32>,
        peepholes: Option<[Vec<f32>; 3]>,
        wym: Option<M>,
    ) -> Self {
        let h = cfg.hidden_dim;
        assert_eq!((wx.rows(), wx.cols()), (4 * h, cfg.input_dim), "wx shape");
        assert_eq!((wr.rows(), wr.cols()), (4 * h, cfg.output_dim), "wr shape");
        assert_eq!(bias.len(), 4 * h, "bias length");
        assert_eq!(cfg.peephole, peepholes.is_some(), "peephole presence");
        if let Some(p) = &peepholes {
            assert!(p.iter().all(|v| v.len() == h), "peephole length");
        }
        assert_eq!(cfg.has_projection(), wym.is_some(), "projection presence");
        if let Some(w) = &wym {
            assert_eq!((w.rows(), w.cols()), (cfg.output_dim, h), "wym shape");
        }
        LstmLayer {
            cfg,
            wx,
            wr,
            bias,
            peepholes,
            wym,
        }
    }

    /// Layer configuration.
    pub fn config(&self) -> &LstmConfig {
        &self.cfg
    }

    /// Initial all-zero state.
    pub fn zero_state(&self) -> LstmState {
        LstmState {
            c: vec![0.0; self.cfg.hidden_dim],
            y: vec![0.0; self.cfg.output_dim],
        }
    }

    /// One timestep of Eqn. 1, returning the new state and (optionally) the
    /// cache needed for backpropagation.
    ///
    /// # Panics
    ///
    /// Panics if `x` or the state dimensions disagree with the config.
    pub fn step(
        &self,
        x: &[f32],
        state: &LstmState,
        want_cache: bool,
    ) -> (LstmState, Option<LstmCache>) {
        let h = self.cfg.hidden_dim;
        assert_eq!(x.len(), self.cfg.input_dim, "input dimension mismatch");
        assert_eq!(state.c.len(), h, "cell state dimension mismatch");
        assert_eq!(
            state.y.len(),
            self.cfg.output_dim,
            "output dimension mismatch"
        );

        // Fused pre-activations: W_(ifgo)x · x + W_(ifgo)r · y_{t-1} + b.
        let mut pre = self.wx.matvec(x);
        let rec = self.wr.matvec(&state.y);
        for ((p, r), b) in pre.iter_mut().zip(rec.iter()).zip(self.bias.iter()) {
            *p += r + b;
        }

        // Peepholes on i and f read c_{t-1} (Eqn. 1a/1b).
        if let Some([pi, pf, _]) = &self.peepholes {
            for k in 0..h {
                pre[k] += pi[k] * state.c[k];
                pre[h + k] += pf[k] * state.c[k];
            }
        }

        let mut i_gate = vec![0.0f32; h];
        let mut f_gate = vec![0.0f32; h];
        let mut g_cell = vec![0.0f32; h];
        for k in 0..h {
            i_gate[k] = sigmoid(pre[k]);
            f_gate[k] = sigmoid(pre[h + k]);
            g_cell[k] = self.cfg.cell_activation.eval(pre[2 * h + k]);
        }

        // c_t = f ⊙ c_{t-1} + g ⊙ i   (Eqn. 1d)
        let mut c = vec![0.0f32; h];
        for k in 0..h {
            c[k] = f_gate[k] * state.c[k] + g_cell[k] * i_gate[k];
        }

        // Peephole on o reads c_t (Eqn. 1e).
        let mut o_gate = vec![0.0f32; h];
        for k in 0..h {
            let mut po = pre[3 * h + k];
            if let Some([_, _, p_o]) = &self.peepholes {
                po += p_o[k] * c[k];
            }
            o_gate[k] = sigmoid(po);
        }

        // m_t = o ⊙ tanh(c_t)   (Eqn. 1f, h = tanh)
        let tanh_c: Vec<f32> = c.iter().map(|&v| v.tanh()).collect();
        let m: Vec<f32> = o_gate
            .iter()
            .zip(tanh_c.iter())
            .map(|(&o, &tc)| o * tc)
            .collect();

        // y_t = W_ym · m_t   (Eqn. 1g) or identity without projection.
        let y = match &self.wym {
            Some(w) => w.matvec(&m),
            None => m.clone(),
        };

        let cache = want_cache.then(|| LstmCache {
            x: x.to_vec(),
            y_prev: state.y.clone(),
            c_prev: state.c.clone(),
            i: i_gate,
            f: f_gate,
            g: g_cell,
            o: o_gate,
            c: c.clone(),
            tanh_c,
            m,
        });
        (LstmState { c, y }, cache)
    }

    /// One timestep of Eqn. 1 written into caller-provided state, with
    /// every intermediate in `scratch` — the allocation-free inference
    /// form of [`Self::step`], bit-identical to it by construction (same
    /// kernels, same operation order; asserted by tests).
    ///
    /// # Panics
    ///
    /// Panics if `x` or the state dimensions disagree with the config.
    pub fn step_into(
        &self,
        x: &[f32],
        state: &LstmState,
        next: &mut LstmState,
        scratch: &mut LstmScratch,
    ) {
        next.c.resize(self.cfg.hidden_dim, 0.0);
        next.y.resize(self.cfg.output_dim, 0.0);
        self.step_batch_into(x, &state.c, &state.y, &mut next.c, &mut next.y, 1, scratch);
    }

    /// One timestep of Eqn. 1 for `batch` independent states at once, over
    /// flat `batch × dim` buffers. The two gate matvecs are batch-fused
    /// (block-circulant weights stream their cached spectra once per
    /// batch, see
    /// [`matvec_batch_into`](ernn_linalg::MatVec::matvec_batch_into));
    /// the element-wise gate math runs per lane, so every lane's result
    /// is bit-identical to a standalone [`Self::step`].
    ///
    /// Allocation-free once `scratch` has grown to this shape and batch.
    ///
    /// # Panics
    ///
    /// Panics if any slice length disagrees with `batch` and the config.
    #[allow(clippy::too_many_arguments)]
    pub fn step_batch_into(
        &self,
        xs: &[f32],
        c_prev: &[f32],
        y_prev: &[f32],
        c_next: &mut [f32],
        y_next: &mut [f32],
        batch: usize,
        scratch: &mut LstmScratch,
    ) {
        let h = self.cfg.hidden_dim;
        let r = self.cfg.output_dim;
        assert_eq!(
            xs.len(),
            batch * self.cfg.input_dim,
            "input dimension mismatch"
        );
        assert_eq!(c_prev.len(), batch * h, "cell state dimension mismatch");
        assert_eq!(y_prev.len(), batch * r, "output dimension mismatch");
        assert_eq!(
            c_next.len(),
            batch * h,
            "next cell state dimension mismatch"
        );
        assert_eq!(y_next.len(), batch * r, "next output dimension mismatch");

        let LstmScratch { pre, rec, m, mv } = scratch;
        pre.resize(batch * 4 * h, 0.0);
        rec.resize(batch * 4 * h, 0.0);
        m.resize(batch * h, 0.0);

        // Fused pre-activations: W_(ifgo)x · x + W_(ifgo)r · y_{t-1} + b.
        self.wx.matvec_batch_into(xs, pre, batch, mv);
        self.wr.matvec_batch_into(y_prev, rec, batch, mv);
        for b in 0..batch {
            let pre = &mut pre[b * 4 * h..(b + 1) * 4 * h];
            let rec = &rec[b * 4 * h..(b + 1) * 4 * h];
            let c_prev = &c_prev[b * h..(b + 1) * h];
            let c = &mut c_next[b * h..(b + 1) * h];
            let m = &mut m[b * h..(b + 1) * h];
            for ((p, rv), bias) in pre.iter_mut().zip(rec.iter()).zip(self.bias.iter()) {
                *p += rv + bias;
            }

            // Peepholes on i and f read c_{t-1} (Eqn. 1a/1b).
            if let Some([pi, pf, _]) = &self.peepholes {
                for k in 0..h {
                    pre[k] += pi[k] * c_prev[k];
                    pre[h + k] += pf[k] * c_prev[k];
                }
            }

            // c_t = f ⊙ c_{t-1} + g ⊙ i   (Eqn. 1d)
            for k in 0..h {
                let i_gate = sigmoid(pre[k]);
                let f_gate = sigmoid(pre[h + k]);
                let g_cell = self.cfg.cell_activation.eval(pre[2 * h + k]);
                c[k] = f_gate * c_prev[k] + g_cell * i_gate;
            }

            // Peephole on o reads c_t (Eqn. 1e); m_t = o ⊙ tanh(c_t).
            for k in 0..h {
                let mut po = pre[3 * h + k];
                if let Some([_, _, p_o]) = &self.peepholes {
                    po += p_o[k] * c[k];
                }
                let o_gate = sigmoid(po);
                m[k] = o_gate * c[k].tanh();
            }
        }

        // y_t = W_ym · m_t   (Eqn. 1g) or identity without projection.
        match &self.wym {
            Some(w) => w.matvec_batch_into(m, y_next, batch, mv),
            None => y_next.copy_from_slice(m),
        }
    }

    /// Runs a batch of sequences in lockstep through this layer, fusing
    /// the gate matvecs across whatever subset of sequences is still
    /// active at each timestep. Per-sequence outputs are bit-identical to
    /// [`Self::forward_seq`].
    pub fn forward_seq_batch(&self, seqs: &[Vec<Vec<f32>>]) -> Vec<Vec<Vec<f32>>> {
        let h = self.cfg.hidden_dim;
        let r = self.cfg.output_dim;
        let i_dim = self.cfg.input_dim;
        let n = seqs.len();
        let max_t = seqs.iter().map(Vec::len).max().unwrap_or(0);
        let mut c = vec![0.0f32; n * h];
        let mut y = vec![0.0f32; n * r];
        let mut outs: Vec<Vec<Vec<f32>>> =
            seqs.iter().map(|s| Vec::with_capacity(s.len())).collect();
        let mut scratch = LstmScratch::new();
        let (mut xb, mut cb, mut yb) = (Vec::new(), Vec::new(), Vec::new());
        let (mut cn, mut yn) = (Vec::new(), Vec::new());
        let mut active = Vec::with_capacity(n);
        for t in 0..max_t {
            active.clear();
            active.extend((0..n).filter(|&s| t < seqs[s].len()));
            let bsz = active.len();
            xb.clear();
            cb.clear();
            yb.clear();
            for &s in &active {
                assert_eq!(seqs[s][t].len(), i_dim, "input dimension mismatch");
                xb.extend_from_slice(&seqs[s][t]);
                cb.extend_from_slice(&c[s * h..(s + 1) * h]);
                yb.extend_from_slice(&y[s * r..(s + 1) * r]);
            }
            cn.resize(bsz * h, 0.0);
            yn.resize(bsz * r, 0.0);
            self.step_batch_into(&xb, &cb, &yb, &mut cn, &mut yn, bsz, &mut scratch);
            for (b, &s) in active.iter().enumerate() {
                c[s * h..(s + 1) * h].copy_from_slice(&cn[b * h..(b + 1) * h]);
                y[s * r..(s + 1) * r].copy_from_slice(&yn[b * r..(b + 1) * r]);
                outs[s].push(yn[b * r..(b + 1) * r].to_vec());
            }
        }
        outs
    }

    /// Runs a full sequence, returning outputs per frame (and caches when
    /// training).
    pub fn forward_seq(
        &self,
        inputs: &[Vec<f32>],
        want_cache: bool,
    ) -> (Vec<Vec<f32>>, Vec<LstmCache>) {
        let mut state = self.zero_state();
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut caches = Vec::with_capacity(if want_cache { inputs.len() } else { 0 });
        for x in inputs {
            let (next, cache) = self.step(x, &state, want_cache);
            outputs.push(next.y.clone());
            if let Some(c) = cache {
                caches.push(c);
            }
            state = next;
        }
        (outputs, caches)
    }

    /// Number of stored parameters (weights + biases + peepholes).
    pub fn param_count(&self) -> usize
    where
        M: ParamCount,
    {
        let mut n = self.wx.param_count() + self.wr.param_count() + self.bias.len();
        if let Some(peeps) = &self.peepholes {
            n += peeps.iter().map(Vec::len).sum::<usize>();
        }
        if let Some(w) = &self.wym {
            n += w.param_count();
        }
        n
    }
}

/// Parameter counting for weight representations (dense counts `rows·cols`,
/// circulant counts the defining vectors).
pub trait ParamCount {
    /// Number of stored parameters.
    fn param_count(&self) -> usize;
}

impl ParamCount for Matrix {
    fn param_count(&self) -> usize {
        self.rows() * self.cols()
    }
}

impl ParamCount for ernn_linalg::BlockCirculantMatrix {
    fn param_count(&self) -> usize {
        ernn_linalg::BlockCirculantMatrix::param_count(self)
    }
}

impl ParamCount for ernn_linalg::WeightMatrix {
    fn param_count(&self) -> usize {
        ernn_linalg::WeightMatrix::param_count(self)
    }
}

impl LstmLayer<Matrix> {
    /// Creates a dense layer with Xavier-initialized weights and the forget
    /// gate bias set to 1 (standard practice for gradient flow).
    pub fn new_dense(cfg: LstmConfig, rng: &mut impl Rng) -> Self {
        let h = cfg.hidden_dim;
        let mut bias = vec![0.0; 4 * h];
        bias[h..2 * h].iter_mut().for_each(|b| *b = 1.0);
        let peepholes = cfg.peephole.then(|| {
            [
                (0..h).map(|_| rng.gen_range(-0.05..0.05)).collect(),
                (0..h).map(|_| rng.gen_range(-0.05..0.05)).collect(),
                (0..h).map(|_| rng.gen_range(-0.05..0.05)).collect(),
            ]
        });
        let wym = cfg
            .has_projection()
            .then(|| Matrix::xavier(cfg.output_dim, h, rng));
        LstmLayer {
            cfg,
            wx: Matrix::xavier(4 * h, cfg.input_dim, rng),
            wr: Matrix::xavier(4 * h, cfg.output_dim, rng),
            bias,
            peepholes,
            wym,
        }
    }

    /// Zero-initialized gradients shaped like this layer.
    pub fn zero_grads(&self) -> LstmGrads {
        LstmGrads {
            wx: Matrix::zeros(self.wx.rows(), self.wx.cols()),
            wr: Matrix::zeros(self.wr.rows(), self.wr.cols()),
            bias: vec![0.0; self.bias.len()],
            peepholes: self.peepholes.as_ref().map(|p| {
                [
                    vec![0.0; p[0].len()],
                    vec![0.0; p[1].len()],
                    vec![0.0; p[2].len()],
                ]
            }),
            wym: self.wym.as_ref().map(|w| Matrix::zeros(w.rows(), w.cols())),
        }
    }

    /// Backpropagation through time for a full sequence.
    ///
    /// `d_outputs[t]` is `∂L/∂y_t` from the layers above (classifier and/or
    /// next stacked layer). Accumulates parameter gradients into `grads`
    /// and returns `∂L/∂x_t` for the layer below.
    ///
    /// # Panics
    ///
    /// Panics if `caches.len() != d_outputs.len()`.
    pub fn backward_seq(
        &self,
        caches: &[LstmCache],
        d_outputs: &[Vec<f32>],
        grads: &mut LstmGrads,
    ) -> Vec<Vec<f32>> {
        assert_eq!(caches.len(), d_outputs.len(), "sequence length mismatch");
        let h = self.cfg.hidden_dim;
        let t_len = caches.len();
        let mut dx_seq = vec![Vec::new(); t_len];
        let mut dy_rec = vec![0.0f32; self.cfg.output_dim];
        let mut dc_next = vec![0.0f32; h];

        for t in (0..t_len).rev() {
            let cache = &caches[t];
            // Total gradient on y_t: external + recurrent from t+1.
            let mut dy = d_outputs[t].clone();
            for (a, b) in dy.iter_mut().zip(dy_rec.iter()) {
                *a += b;
            }

            // Through the projection (Eqn. 1g).
            let dm = match &self.wym {
                Some(w) => {
                    grads
                        .wym
                        .as_mut()
                        .expect("grads shaped like layer")
                        .add_outer(1.0, &dy, &cache.m);
                    w.matvec_t(&dy)
                }
                None => dy,
            };

            // Through m = o ⊙ tanh(c).
            let mut dc = dc_next.clone();
            let mut dpre_o = vec![0.0f32; h];
            for k in 0..h {
                let d_o = dm[k] * cache.tanh_c[k];
                dc[k] += dm[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
                dpre_o[k] = d_o * cache.o[k] * (1.0 - cache.o[k]);
            }
            // Peephole o feeds back into c_t.
            if let Some([_, _, p_o]) = &self.peepholes {
                let g_peep = grads.peepholes.as_mut().expect("grads shaped like layer");
                for k in 0..h {
                    dc[k] += dpre_o[k] * p_o[k];
                }
                hadamard_acc(&mut g_peep[2], &dpre_o, &cache.c);
            }

            // Through c = f ⊙ c_prev + g ⊙ i.
            let mut dpre_i = vec![0.0f32; h];
            let mut dpre_f = vec![0.0f32; h];
            let mut dpre_g = vec![0.0f32; h];
            let mut dc_prev = vec![0.0f32; h];
            for k in 0..h {
                let di = dc[k] * cache.g[k];
                let dg = dc[k] * cache.i[k];
                let df = dc[k] * cache.c_prev[k];
                dc_prev[k] = dc[k] * cache.f[k];
                dpre_i[k] = di * cache.i[k] * (1.0 - cache.i[k]);
                dpre_f[k] = df * cache.f[k] * (1.0 - cache.f[k]);
                dpre_g[k] = dg * self.cfg.cell_activation.deriv_from_output(cache.g[k]);
            }
            if let Some([p_i, p_f, _]) = &self.peepholes {
                let g_peep = grads.peepholes.as_mut().expect("grads shaped like layer");
                for k in 0..h {
                    dc_prev[k] += dpre_i[k] * p_i[k] + dpre_f[k] * p_f[k];
                }
                hadamard_acc(&mut g_peep[0], &dpre_i, &cache.c_prev);
                hadamard_acc(&mut g_peep[1], &dpre_f, &cache.c_prev);
            }

            // Fused gate pre-activation gradient (i, f, g, o lanes).
            let mut dpre = vec![0.0f32; 4 * h];
            dpre[..h].copy_from_slice(&dpre_i);
            dpre[h..2 * h].copy_from_slice(&dpre_f);
            dpre[2 * h..3 * h].copy_from_slice(&dpre_g);
            dpre[3 * h..].copy_from_slice(&dpre_o);

            for (b, d) in grads.bias.iter_mut().zip(dpre.iter()) {
                *b += d;
            }
            grads.wx.add_outer(1.0, &dpre, &cache.x);
            grads.wr.add_outer(1.0, &dpre, &cache.y_prev);

            dx_seq[t] = self.wx.matvec_t(&dpre);
            dy_rec = self.wr.matvec_t(&dpre);
            dc_next = dc_prev;
        }
        dx_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_layer(peephole: bool, projection: bool, seed: u64) -> LstmLayer<Matrix> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let cfg = LstmConfig {
            input_dim: 3,
            hidden_dim: 4,
            output_dim: if projection { 2 } else { 4 },
            peephole,
            cell_activation: Act::Tanh,
        };
        LstmLayer::new_dense(cfg, &mut rng)
    }

    #[test]
    fn step_produces_correct_shapes() {
        let layer = tiny_layer(true, true, 1);
        let state = layer.zero_state();
        let (next, cache) = layer.step(&[0.1, -0.2, 0.3], &state, true);
        assert_eq!(next.c.len(), 4);
        assert_eq!(next.y.len(), 2);
        assert!(cache.is_some());
    }

    #[test]
    fn zero_input_and_state_is_near_rest() {
        // With zero input/state, gates see only biases; cell state stays
        // small and bounded.
        let layer = tiny_layer(false, false, 2);
        let (next, _) = layer.step(&[0.0, 0.0, 0.0], &layer.zero_state(), false);
        for &c in &next.c {
            assert!(c.abs() < 1.0);
        }
    }

    #[test]
    fn cell_state_is_bounded_over_long_sequences() {
        // Sigmoid gates keep |c| growth linear at worst; with tanh cell
        // input, |c_t| <= t. Check stability for a moderately long run.
        let layer = tiny_layer(true, false, 3);
        let mut state = layer.zero_state();
        for t in 0..200 {
            let x = vec![(t as f32 * 0.1).sin(), 0.3, -0.5];
            state = layer.step(&x, &state, false).0;
        }
        for &c in &state.c {
            assert!(c.is_finite() && c.abs() < 50.0);
        }
    }

    #[test]
    fn step_into_is_bit_identical_to_step() {
        for (peep, proj) in [(false, false), (true, false), (false, true), (true, true)] {
            let layer = tiny_layer(peep, proj, 11);
            let mut scratch = LstmScratch::new();
            let mut state = layer.zero_state();
            let mut next = layer.zero_state();
            for t in 0..8 {
                let x = vec![0.3 * t as f32, -0.4, 0.2];
                let (want, _) = layer.step(&x, &state, false);
                layer.step_into(&x, &state, &mut next, &mut scratch);
                assert_eq!(next.c, want.c, "peep={peep} proj={proj} t={t}");
                assert_eq!(next.y, want.y, "peep={peep} proj={proj} t={t}");
                state = want;
            }
        }
    }

    #[test]
    fn forward_seq_batch_is_bit_identical_to_per_sequence() {
        let layer = tiny_layer(true, true, 12);
        // Ragged lengths exercise the shrinking active set.
        let seqs: Vec<Vec<Vec<f32>>> = (0..4)
            .map(|s| {
                (0..3 + s * 2)
                    .map(|t| vec![0.1 * t as f32, -0.2 + s as f32 * 0.05, 0.3])
                    .collect()
            })
            .collect();
        let batched = layer.forward_seq_batch(&seqs);
        for (s, seq) in seqs.iter().enumerate() {
            let (want, _) = layer.forward_seq(seq, false);
            assert_eq!(batched[s], want, "sequence {s}");
        }
    }

    #[test]
    fn forward_seq_matches_manual_stepping() {
        let layer = tiny_layer(true, true, 4);
        let inputs: Vec<Vec<f32>> = (0..6)
            .map(|t| vec![t as f32 * 0.1, -0.2, 0.05 * t as f32])
            .collect();
        let (outputs, caches) = layer.forward_seq(&inputs, true);
        assert_eq!(outputs.len(), 6);
        assert_eq!(caches.len(), 6);
        let mut state = layer.zero_state();
        for (t, x) in inputs.iter().enumerate() {
            let (next, _) = layer.step(x, &state, false);
            assert_eq!(outputs[t], next.y);
            state = next;
        }
    }

    /// Finite-difference validation of the full BPTT path, the linchpin
    /// correctness test for training.
    fn check_gradients(peephole: bool, projection: bool) {
        let layer = tiny_layer(peephole, projection, 5);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        use rand::Rng;
        let inputs: Vec<Vec<f32>> = (0..5)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        // Loss: sum of squares of outputs — simple and smooth.
        let loss = |layer: &LstmLayer<Matrix>| -> f32 {
            let (outs, _) = layer.forward_seq(&inputs, false);
            outs.iter()
                .flat_map(|o| o.iter())
                .map(|v| 0.5 * v * v)
                .sum()
        };

        let (outs, caches) = layer.forward_seq(&inputs, true);
        let d_outputs: Vec<Vec<f32>> = outs.clone();
        let mut grads = layer.zero_grads();
        layer.backward_seq(&caches, &d_outputs, &mut grads);

        let eps = 1e-2f32;
        // Check a sample of wx, wr, bias and (if present) peephole params.
        let mut perturbed = layer.clone();
        for idx in [0usize, 7, 13] {
            let orig = perturbed.wx.as_slice()[idx];
            perturbed.wx.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&perturbed);
            perturbed.wx.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&perturbed);
            perturbed.wx.as_mut_slice()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.wx.as_slice()[idx];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "wx[{idx}] fd={fd} an={an} (peephole={peephole}, projection={projection})"
            );
        }
        for idx in [0usize, 5] {
            let orig = perturbed.bias[idx];
            perturbed.bias[idx] = orig + eps;
            let lp = loss(&perturbed);
            perturbed.bias[idx] = orig - eps;
            let lm = loss(&perturbed);
            perturbed.bias[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.bias[idx];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "bias[{idx}] fd={fd} an={an}"
            );
        }
        if peephole {
            let orig = perturbed.peepholes.as_ref().unwrap()[0][1];
            perturbed.peepholes.as_mut().unwrap()[0][1] = orig + eps;
            let lp = loss(&perturbed);
            perturbed.peepholes.as_mut().unwrap()[0][1] = orig - eps;
            let lm = loss(&perturbed);
            perturbed.peepholes.as_mut().unwrap()[0][1] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.peepholes.as_ref().unwrap()[0][1];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "peephole fd={fd} an={an}"
            );
        }
        if projection {
            let orig = perturbed.wym.as_ref().unwrap().as_slice()[3];
            perturbed.wym.as_mut().unwrap().as_mut_slice()[3] = orig + eps;
            let lp = loss(&perturbed);
            perturbed.wym.as_mut().unwrap().as_mut_slice()[3] = orig - eps;
            let lm = loss(&perturbed);
            perturbed.wym.as_mut().unwrap().as_mut_slice()[3] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.wym.as_ref().unwrap().as_slice()[3];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "wym fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn gradients_match_finite_difference_plain() {
        check_gradients(false, false);
    }

    #[test]
    fn gradients_match_finite_difference_peephole() {
        check_gradients(true, false);
    }

    #[test]
    fn gradients_match_finite_difference_projection() {
        check_gradients(false, true);
    }

    #[test]
    fn gradients_match_finite_difference_full() {
        check_gradients(true, true);
    }

    #[test]
    fn param_count_accounts_for_all_tensors() {
        let layer = tiny_layer(true, true, 6);
        // wx: 16x3, wr: 16x2, bias: 16, peep: 3*4, wym: 2x4.
        assert_eq!(layer.param_count(), 48 + 32 + 16 + 12 + 8);
    }

    #[test]
    #[should_panic(expected = "input dimension")]
    fn step_rejects_bad_input_dim() {
        let layer = tiny_layer(false, false, 7);
        let state = layer.zero_state();
        let _ = layer.step(&[0.0; 5], &state, false);
    }
}
