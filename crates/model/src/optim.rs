//! Gradient-descent optimizers.
//!
//! The ADMM first subproblem "can be solved by stochastic gradient descent
//! and the complexity is the same as training the original RNN"
//! (Sec. III-B); the paper also notes compatibility with "recent progress
//! in stochastic gradient descent (e.g., ADAM)". Both are provided.
//!
//! Optimizers operate on the flattened parameter/gradient slice pairs from
//! [`crate::RnnNetwork::param_slices_mut`] /
//! [`crate::NetworkGrads::slices`], keeping their own state in a single
//! flat buffer.

/// A first-order optimizer over flat parameter slices.
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// `params[i]` and `grads[i]` must have identical lengths and identical
    /// ordering across calls (state is kept positionally).
    ///
    /// # Panics
    ///
    /// Implementations panic on shape mismatches.
    fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (learning-rate schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

fn total_len(grads: &[&[f32]]) -> usize {
    grads.iter().map(|g| g.len()).sum()
}

fn global_norm(grads: &[&[f32]]) -> f32 {
    grads
        .iter()
        .flat_map(|g| g.iter())
        .map(|v| v * v)
        .sum::<f32>()
        .sqrt()
}

/// SGD with classical momentum and global-norm gradient clipping.
///
/// ```
/// use ernn_model::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.1).momentum(0.9).clip_norm(5.0);
/// let mut w = vec![1.0f32, -1.0];
/// let g = vec![0.5f32, -0.5];
/// opt.step(&mut [&mut w], &[&g]);
/// assert!(w[0] < 1.0 && w[1] > -1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    clip: Option<f32>,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            clip: None,
            velocity: Vec::new(),
        }
    }

    /// Enables classical momentum.
    pub fn momentum(mut self, m: f32) -> Self {
        assert!((0.0..1.0).contains(&m), "momentum must be in [0, 1)");
        self.momentum = m;
        self
    }

    /// Enables global-norm gradient clipping (standard for RNN training).
    pub fn clip_norm(mut self, limit: f32) -> Self {
        assert!(limit > 0.0, "clip limit must be positive");
        self.clip = Some(limit);
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]) {
        assert_eq!(params.len(), grads.len(), "param/grad group mismatch");
        let n = total_len(grads);
        if self.velocity.len() != n {
            self.velocity = vec![0.0; n];
        }
        let scale = match self.clip {
            Some(limit) => {
                let norm = global_norm(grads);
                if norm > limit {
                    limit / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let mut off = 0usize;
        for (p, g) in params.iter_mut().zip(grads.iter()) {
            assert_eq!(p.len(), g.len(), "param/grad length mismatch");
            for (k, (pv, gv)) in p.iter_mut().zip(g.iter()).enumerate() {
                let v = &mut self.velocity[off + k];
                *v = self.momentum * *v + scale * gv;
                *pv -= self.lr * *v;
            }
            off += p.len();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction and optional global-norm
/// clipping.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip: Option<f32>,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: None,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables global-norm gradient clipping.
    pub fn clip_norm(mut self, limit: f32) -> Self {
        assert!(limit > 0.0, "clip limit must be positive");
        self.clip = Some(limit);
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]) {
        assert_eq!(params.len(), grads.len(), "param/grad group mismatch");
        let n = total_len(grads);
        if self.m.len() != n {
            self.m = vec![0.0; n];
            self.v = vec![0.0; n];
            self.t = 0;
        }
        self.t += 1;
        let scale = match self.clip {
            Some(limit) => {
                let norm = global_norm(grads);
                if norm > limit {
                    limit / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut off = 0usize;
        for (p, g) in params.iter_mut().zip(grads.iter()) {
            assert_eq!(p.len(), g.len(), "param/grad length mismatch");
            for (k, (pv, gv)) in p.iter_mut().zip(g.iter()).enumerate() {
                let gv = scale * gv;
                let m = &mut self.m[off + k];
                let v = &mut self.v[off + k];
                *m = self.beta1 * *m + (1.0 - self.beta1) * gv;
                *v = self.beta2 * *v + (1.0 - self.beta2) * gv * gv;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                *pv -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            off += p.len();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = 0.5‖w − target‖² with gradient w − target.
    fn run_to_convergence(opt: &mut dyn Optimizer, steps: usize) -> Vec<f32> {
        let target = [3.0f32, -2.0, 0.5];
        let mut w = vec![0.0f32; 3];
        for _ in 0..steps {
            let g: Vec<f32> = w.iter().zip(target.iter()).map(|(a, b)| a - b).collect();
            opt.step(&mut [&mut w], &[&g]);
        }
        w
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = run_to_convergence(&mut opt, 200);
        assert!((w[0] - 3.0).abs() < 1e-3, "{w:?}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05).momentum(0.9);
        let w = run_to_convergence(&mut opt, 300);
        assert!((w[1] + 2.0).abs() < 1e-2, "{w:?}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = run_to_convergence(&mut opt, 500);
        assert!((w[2] - 0.5).abs() < 1e-2, "{w:?}");
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut opt = Sgd::new(1.0).clip_norm(1.0);
        let mut w = vec![0.0f32; 2];
        let g = vec![100.0f32, 0.0];
        opt.step(&mut [&mut w], &[&g]);
        // Clipped gradient has norm 1, so the update is exactly lr · 1.
        assert!((w[0] + 1.0).abs() < 1e-5, "{w:?}");
    }

    #[test]
    fn multiple_groups_share_state_positionally() {
        let mut opt = Sgd::new(0.5).momentum(0.5);
        let mut a = vec![0.0f32];
        let mut b = vec![0.0f32];
        let ga = vec![1.0f32];
        let gb = vec![2.0f32];
        opt.step(&mut [&mut a, &mut b], &[&ga, &gb]);
        opt.step(&mut [&mut a, &mut b], &[&ga, &gb]);
        // Momentum accumulates separately per position.
        assert!(a[0] != b[0]);
        assert!((a[0] - (-0.5 - 0.75)).abs() < 1e-6);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "param/grad group mismatch")]
    fn rejects_mismatched_groups() {
        let mut opt = Sgd::new(0.1);
        let mut w = vec![0.0f32];
        opt.step(&mut [&mut w], &[]);
    }
}
