//! Sequence-level training driver.
//!
//! Both the dense pre-training pass ("Pretrained model" in the paper's
//! Fig. 6) and ADMM's first subproblem are per-utterance SGD loops; the
//! only difference is a gradient hook that ADMM uses to add its proximal
//! term `ρ(W − Z + U)` before each update. [`train_with_hook`] exposes that
//! seam.

use crate::network::{NetworkGrads, RnnNetwork};
use crate::optim::Optimizer;
use ernn_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled training sequence: frames and framewise targets.
pub type Sequence = (Vec<Vec<f32>>, Vec<usize>);

/// Options for the sequence-training loop.
#[derive(Debug, Clone, Copy)]
pub struct TrainOptions {
    /// Number of passes over the data set.
    pub epochs: usize,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Whether to shuffle the sequence order each epoch.
    pub shuffle: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 5,
            lr_decay: 1.0,
            shuffle: true,
        }
    }
}

/// Per-epoch summary returned by the training loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean framewise cross-entropy over the epoch.
    pub mean_loss: f32,
    /// Mean framewise accuracy over the epoch (training data).
    pub frame_accuracy: f32,
}

/// Trains with a gradient hook invoked after backprop and before the
/// optimizer step — ADMM's injection point.
///
/// Returns one [`EpochStats`] per epoch.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn train_with_hook(
    net: &mut RnnNetwork<Matrix>,
    data: &[Sequence],
    opts: TrainOptions,
    optimizer: &mut dyn Optimizer,
    rng: &mut impl Rng,
    mut hook: impl FnMut(&RnnNetwork<Matrix>, &mut NetworkGrads),
) -> Vec<EpochStats> {
    assert!(!data.is_empty(), "training data must be non-empty");
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut grads = net.zero_grads();
    let mut history = Vec::with_capacity(opts.epochs);
    for _ in 0..opts.epochs {
        if opts.shuffle {
            order.shuffle(rng);
        }
        let mut loss_sum = 0.0f64;
        let mut frames_sum = 0usize;
        for &idx in &order {
            let (frames, targets) = &data[idx];
            grads.zero();
            let (loss, n) = net.forward_backward(frames, targets, &mut grads);
            grads.scale(1.0 / n as f32);
            hook(net, &mut grads);
            let g_slices = grads.slices();
            let mut p_slices = net.param_slices_mut();
            optimizer.step(&mut p_slices, &g_slices);
            loss_sum += loss as f64;
            frames_sum += n;
        }
        // Epoch-end accuracy on a sample (first few sequences) to keep the
        // loop cheap.
        let sample = &data[..data.len().min(8)];
        let mut acc_sum = 0.0f32;
        for (frames, targets) in sample {
            let (_, acc) = net.evaluate(frames, targets);
            acc_sum += acc;
        }
        history.push(EpochStats {
            mean_loss: (loss_sum / frames_sum.max(1) as f64) as f32,
            frame_accuracy: acc_sum / sample.len() as f32,
        });
        let lr = optimizer.learning_rate() * opts.lr_decay;
        optimizer.set_learning_rate(lr);
    }
    history
}

/// Plain dense training (no hook).
pub fn train(
    net: &mut RnnNetwork<Matrix>,
    data: &[Sequence],
    opts: TrainOptions,
    optimizer: &mut dyn Optimizer,
    rng: &mut impl Rng,
) -> Vec<EpochStats> {
    train_with_hook(net, data, opts, optimizer, rng, |_, _| {})
}

/// Mean framewise loss/accuracy over a data set.
pub fn evaluate_set<M: ernn_linalg::MatVec>(net: &RnnNetwork<M>, data: &[Sequence]) -> EpochStats {
    let mut loss_sum = 0.0f64;
    let mut acc_sum = 0.0f64;
    let mut n = 0usize;
    for (frames, targets) in data {
        let (loss, acc) = net.evaluate(frames, targets);
        loss_sum += loss as f64 * frames.len() as f64;
        acc_sum += acc as f64 * frames.len() as f64;
        n += frames.len();
    }
    EpochStats {
        mean_loss: (loss_sum / n.max(1) as f64) as f32,
        frame_accuracy: (acc_sum / n.max(1) as f64) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellType, NetworkBuilder, Sgd};
    use rand::SeedableRng;

    /// A learnable toy task: classify whether the running sum of the first
    /// input coordinate is positive — requires memory, solvable by tiny
    /// RNNs.
    fn toy_data(n_seqs: usize, seq_len: usize, seed: u64) -> Vec<Sequence> {
        use rand::Rng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n_seqs)
            .map(|_| {
                let mut running = 0.0f32;
                let mut frames = Vec::with_capacity(seq_len);
                let mut labels = Vec::with_capacity(seq_len);
                for _ in 0..seq_len {
                    let v: f32 = rng.gen_range(-1.0..1.0);
                    running += v;
                    frames.push(vec![v, rng.gen_range(-1.0..1.0)]);
                    labels.push(usize::from(running > 0.0));
                }
                (frames, labels)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
            let mut net = NetworkBuilder::new(cell, 2, 2)
                .layer_dims(&[8])
                .build(&mut rng);
            let data = toy_data(20, 12, 1);
            let mut opt = Sgd::new(0.1).momentum(0.9).clip_norm(5.0);
            let stats = train(
                &mut net,
                &data,
                TrainOptions {
                    epochs: 10,
                    lr_decay: 0.85,
                    ..TrainOptions::default()
                },
                &mut opt,
                &mut rng,
            );
            assert!(
                stats.last().unwrap().mean_loss < stats.first().unwrap().mean_loss,
                "{cell}: {stats:?}"
            );
            assert!(
                stats.last().unwrap().frame_accuracy > 0.6,
                "{cell}: {stats:?}"
            );
        }
    }

    #[test]
    fn hook_sees_and_can_modify_grads() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let mut net = NetworkBuilder::new(CellType::Gru, 2, 2)
            .layer_dims(&[4])
            .build(&mut rng);
        let before = net.clone();
        let data = toy_data(3, 5, 3);
        let mut opt = Sgd::new(0.1);
        let mut calls = 0usize;
        train_with_hook(
            &mut net,
            &data,
            TrainOptions {
                epochs: 1,
                ..TrainOptions::default()
            },
            &mut opt,
            &mut rng,
            |_, grads| {
                calls += 1;
                grads.zero(); // zero all gradients -> no learning
            },
        );
        assert_eq!(calls, 3);
        // With zeroed grads, parameters are unchanged.
        assert_eq!(net.classifier_w, before.classifier_w);
    }

    #[test]
    fn evaluate_set_averages_over_frames() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let net = NetworkBuilder::new(CellType::Lstm, 2, 2)
            .layer_dims(&[4])
            .build(&mut rng);
        let data = toy_data(5, 7, 5);
        let stats = evaluate_set(&net, &data);
        assert!(stats.mean_loss > 0.0);
        assert!((0.0..=1.0).contains(&stats.frame_accuracy));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn train_rejects_empty_data() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let mut net = NetworkBuilder::new(CellType::Gru, 2, 2)
            .layer_dims(&[4])
            .build(&mut rng);
        let mut opt = Sgd::new(0.1);
        let _ = train(&mut net, &[], TrainOptions::default(), &mut opt, &mut rng);
    }
}
