//! Fixed-point number formats with saturation.
//!
//! The E-RNN accelerator replaces floating point with fixed-point units
//! (Sec. VII-D). A format is `Q(word − 1 − frac, frac)`: one sign bit,
//! `word − 1 − frac` integer bits and `frac` fractional bits. Values are
//! represented as scaled integers `round(x · 2^frac)` saturated to the word
//! range — exactly what a DSP-slice datapath does.

/// A signed fixed-point format.
///
/// ```
/// use ernn_quant::FixedFormat;
/// let fmt = FixedFormat::new(12, 10); // Q1.10, range ±2
/// assert_eq!(fmt.quantize_f32(0.5), 0.5);
/// assert_eq!(fmt.quantize_f32(100.0), fmt.max_value()); // saturation
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedFormat {
    /// Total word length in bits, including the sign bit (2..=32).
    word_bits: u8,
    /// Number of fractional bits (`< word_bits`).
    frac_bits: u8,
}

impl FixedFormat {
    /// Creates a format with `word_bits` total bits and `frac_bits`
    /// fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `word_bits` is outside `2..=32` or `frac_bits >= word_bits`.
    pub fn new(word_bits: u8, frac_bits: u8) -> Self {
        assert!(
            (2..=32).contains(&word_bits),
            "word length must be 2..=32 bits, got {word_bits}"
        );
        assert!(
            frac_bits < word_bits,
            "fractional bits ({frac_bits}) must leave room for the sign bit"
        );
        FixedFormat {
            word_bits,
            frac_bits,
        }
    }

    /// Chooses the format with `word_bits` total bits whose integer part
    /// just covers `max_abs` — the range analysis step of Sec. VII-D.
    ///
    /// # Panics
    ///
    /// Panics if `word_bits` is outside `2..=32` or `max_abs` is not finite
    /// and positive.
    pub fn for_range(word_bits: u8, max_abs: f32) -> Self {
        assert!(
            max_abs.is_finite() && max_abs > 0.0,
            "range must be a positive finite value, got {max_abs}"
        );
        // Integer bits needed so that max_abs < 2^int_bits.
        let int_bits = max_abs.log2().floor() as i32 + 1;
        let int_bits = int_bits.clamp(0, word_bits as i32 - 1) as u8;
        FixedFormat::new(word_bits, word_bits - 1 - int_bits)
    }

    /// Total word length in bits.
    #[inline]
    pub fn word_bits(&self) -> u8 {
        self.word_bits
    }

    /// Fractional bits.
    #[inline]
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Integer bits (excluding sign).
    #[inline]
    pub fn int_bits(&self) -> u8 {
        self.word_bits - 1 - self.frac_bits
    }

    /// The quantization step `2^(−frac)`.
    #[inline]
    pub fn step(&self) -> f32 {
        (2.0f32).powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    #[inline]
    pub fn max_value(&self) -> f32 {
        self.raw_max() as f32 * self.step()
    }

    /// Smallest (most negative) representable value.
    #[inline]
    pub fn min_value(&self) -> f32 {
        self.raw_min() as f32 * self.step()
    }

    #[inline]
    fn raw_max(&self) -> i64 {
        (1i64 << (self.word_bits - 1)) - 1
    }

    #[inline]
    fn raw_min(&self) -> i64 {
        -(1i64 << (self.word_bits - 1))
    }

    /// Quantizes to the raw scaled integer, rounding to nearest and
    /// saturating at the word boundaries.
    pub fn quantize_raw(&self, x: f32) -> i64 {
        if x.is_nan() {
            return 0;
        }
        let scaled = (x as f64 * (1i64 << self.frac_bits) as f64).round();
        (scaled as i64).clamp(self.raw_min(), self.raw_max())
    }

    /// Converts a raw scaled integer back to `f32`.
    #[inline]
    pub fn dequantize_raw(&self, raw: i64) -> f32 {
        raw as f32 * self.step()
    }

    /// Round-trips a value through the format (quantize then dequantize) —
    /// the standard way to simulate fixed-point behaviour inside an `f32`
    /// pipeline.
    #[inline]
    pub fn quantize_f32(&self, x: f32) -> f32 {
        self.dequantize_raw(self.quantize_raw(x))
    }

    /// Quantizes a slice in place.
    pub fn quantize_slice(&self, xs: &mut [f32]) {
        for x in xs {
            *x = self.quantize_f32(*x);
        }
    }
}

impl std::fmt::Display for FixedFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Q{}.{} ({}b)",
            self.int_bits(),
            self.frac_bits,
            self.word_bits
        )
    }
}

/// Error statistics from quantizing a data set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantStats {
    /// Largest absolute quantization error observed.
    pub max_abs_error: f32,
    /// Root-mean-square quantization error.
    pub rms_error: f32,
    /// Fraction of values that hit the saturation bounds.
    pub saturation_rate: f32,
}

/// Applies a [`FixedFormat`] to data sets and reports error statistics —
/// used by Phase II to pick the shortest safe word length ("12-bit weight
/// quantization is in general a safe design", Sec. VII-D).
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    format: FixedFormat,
}

impl Quantizer {
    /// Creates a quantizer for the given format.
    pub fn new(format: FixedFormat) -> Self {
        Quantizer { format }
    }

    /// The underlying format.
    pub fn format(&self) -> FixedFormat {
        self.format
    }

    /// Quantizes `xs` in place and returns the error statistics.
    pub fn apply(&self, xs: &mut [f32]) -> QuantStats {
        let mut max_abs = 0.0f32;
        let mut sq_sum = 0.0f64;
        let mut saturated = 0usize;
        let hi = self.format.max_value();
        let lo = self.format.min_value();
        for x in xs.iter_mut() {
            let orig = *x;
            let q = self.format.quantize_f32(orig);
            let err = (q - orig).abs();
            max_abs = max_abs.max(err);
            sq_sum += (err as f64) * (err as f64);
            if q >= hi || q <= lo {
                saturated += 1;
            }
            *x = q;
        }
        let n = xs.len().max(1) as f64;
        QuantStats {
            max_abs_error: max_abs,
            rms_error: (sq_sum / n).sqrt() as f32,
            saturation_rate: saturated as f32 / n as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn step_and_bounds_are_consistent() {
        let fmt = FixedFormat::new(12, 10);
        assert_eq!(fmt.step(), 1.0 / 1024.0);
        assert!((fmt.max_value() - (2.0 - fmt.step())).abs() < 1e-6);
        assert_eq!(fmt.min_value(), -2.0);
        assert_eq!(fmt.int_bits(), 1);
    }

    #[test]
    fn quantization_rounds_to_nearest() {
        let fmt = FixedFormat::new(8, 4); // step 1/16
        assert_eq!(fmt.quantize_f32(0.06), 0.0625); // 0.06·16 = 0.96 → 1
        assert_eq!(fmt.quantize_f32(0.03), 0.0); // 0.03·16 = 0.48 → 0
    }

    #[test]
    fn saturation_clamps() {
        let fmt = FixedFormat::new(8, 4);
        assert_eq!(fmt.quantize_f32(100.0), fmt.max_value());
        assert_eq!(fmt.quantize_f32(-100.0), fmt.min_value());
    }

    #[test]
    fn nan_maps_to_zero() {
        let fmt = FixedFormat::new(8, 4);
        assert_eq!(fmt.quantize_f32(f32::NAN), 0.0);
    }

    #[test]
    fn for_range_covers_the_range() {
        for &max_abs in &[0.1f32, 0.5, 0.99, 1.0, 1.5, 3.9, 7.2, 100.0] {
            let fmt = FixedFormat::for_range(12, max_abs);
            assert!(
                fmt.max_value() >= max_abs.min(fmt.max_value()),
                "range {max_abs} format {fmt}"
            );
            // Unless clamped by the word size, the format covers max_abs.
            if max_abs < (1 << 10) as f32 {
                assert!(fmt.max_value() + fmt.step() >= max_abs, "range {max_abs}");
            }
        }
    }

    #[test]
    fn for_range_maximizes_precision() {
        // max_abs = 0.9 fits in 0 integer bits: Q0.11 for a 12-bit word.
        let fmt = FixedFormat::for_range(12, 0.9);
        assert_eq!(fmt.frac_bits(), 11);
        // max_abs = 1.5 needs 1 integer bit.
        let fmt = FixedFormat::for_range(12, 1.5);
        assert_eq!(fmt.frac_bits(), 10);
    }

    #[test]
    fn twelve_bit_error_is_small() {
        // Paper: "The accuracy degradation from input/weight quantization is
        // very small" at 12 bits; the per-value error bound is step/2.
        let fmt = FixedFormat::for_range(12, 1.0);
        let mut xs: Vec<f32> = (0..1000).map(|i| (i as f32 / 500.0) - 1.0).collect();
        let stats = Quantizer::new(fmt).apply(&mut xs);
        assert!(stats.max_abs_error <= fmt.step() / 2.0 + 1e-7);
        assert!(stats.rms_error <= fmt.step());
    }

    #[test]
    fn quantizer_reports_saturation() {
        let fmt = FixedFormat::new(8, 6); // range ±2
        let mut xs = vec![5.0f32, -5.0, 0.0, 1.0];
        let stats = Quantizer::new(fmt).apply(&mut xs);
        assert_eq!(stats.saturation_rate, 0.5);
    }

    #[test]
    #[should_panic(expected = "word length")]
    fn rejects_oversized_word() {
        let _ = FixedFormat::new(33, 5);
    }

    #[test]
    #[should_panic(expected = "fractional bits")]
    fn rejects_frac_equal_word() {
        let _ = FixedFormat::new(8, 8);
    }

    #[test]
    fn display_shows_q_format() {
        assert_eq!(FixedFormat::new(12, 10).to_string(), "Q1.10 (12b)");
    }

    proptest! {
        #[test]
        fn quantization_error_bounded_by_half_step(
            word in 4u8..16,
            x in -1.0f32..1.0,
        ) {
            let fmt = FixedFormat::for_range(word, 1.0);
            let q = fmt.quantize_f32(x);
            // In-range values are within half a step.
            if x.abs() <= fmt.max_value() {
                prop_assert!((q - x).abs() <= fmt.step() / 2.0 + 1e-7);
            }
        }

        #[test]
        fn quantization_is_idempotent(word in 4u8..16, frac in 0u8..8, x in -100.0f32..100.0) {
            prop_assume!(frac < word);
            let fmt = FixedFormat::new(word, frac);
            let once = fmt.quantize_f32(x);
            prop_assert_eq!(fmt.quantize_f32(once), once);
        }

        #[test]
        fn quantization_is_monotone(word in 4u8..12, a in -4.0f32..4.0, b in -4.0f32..4.0) {
            let fmt = FixedFormat::for_range(word, 2.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(fmt.quantize_f32(lo) <= fmt.quantize_f32(hi));
        }
    }
}
