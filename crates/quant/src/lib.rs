//! Quantization substrate for the E-RNN reproduction.
//!
//! Phase II of the E-RNN framework (paper Sec. VII-D) replaces
//! floating-point arithmetic with fixed-point units and replaces the
//! `sigmoid`/`tanh` activations with piecewise-linear approximations that
//! fit in on-chip logic (Sec. VIII-B1 credits the PWL activations with a
//! large share of the efficiency gain over ESE's off-chip lookup tables).
//!
//! * [`FixedFormat`] — a `Q(int, frac)` fixed-point format with saturation,
//!   plus range-driven format selection as described in Sec. VII-D
//!   ("analyze the numerical range of inputs and trained weights ... then
//!   initialize the integer and fractional part").
//! * [`Quantizer`] — slice-level quantization with error statistics.
//! * [`PiecewiseLinear`] — uniform-segment PWL approximation of activation
//!   functions with max-error analysis.
//!
//! ```
//! use ernn_quant::{FixedFormat, PiecewiseLinear};
//!
//! // 12-bit weights as used in E-RNN's final design.
//! let fmt = FixedFormat::for_range(12, 0.9);
//! let q = fmt.quantize_f32(0.123456);
//! assert!((q - 0.123456).abs() < fmt.step());
//!
//! let tanh = PiecewiseLinear::tanh(64);
//! assert!(tanh.max_error(1000) < 5e-3);
//! ```

mod fixed;
mod pwl;

pub use fixed::{FixedFormat, QuantStats, Quantizer};
pub use pwl::PiecewiseLinear;
