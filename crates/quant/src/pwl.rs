//! Piecewise-linear activation approximation.
//!
//! ESE implements `sigmoid`/`tanh` with lookup tables that spill to off-chip
//! DDR under high parallelism; E-RNN instead uses piecewise-linear (PWL)
//! approximations evaluated entirely on-chip (paper Sec. VIII-B1: "Our
//! piecewise linear approximation method can support activation
//! implementation only using on-chip resources", worth "more than 2× energy
//! efficiency gain"). A PWL unit stores one slope/intercept pair per
//! segment; evaluation is one multiply and one add after a segment select.

/// A uniform-segment piecewise-linear approximation of a scalar function.
///
/// Outside `[lo, hi]` the approximation clamps to the function's boundary
/// values, which is correct for the saturating activations used in RNNs.
///
/// ```
/// use ernn_quant::PiecewiseLinear;
/// let sigmoid = PiecewiseLinear::sigmoid(32);
/// let err = (sigmoid.eval(0.7) - 1.0 / (1.0 + (-0.7f32).exp())).abs();
/// assert!(err < 1e-2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    lo: f32,
    hi: f32,
    /// Per-segment slope `a` and intercept `b`: `y = a·x + b`.
    segments: Vec<(f32, f32)>,
    /// Clamped output below `lo` / above `hi`.
    left_value: f32,
    right_value: f32,
}

impl PiecewiseLinear {
    /// Builds a PWL approximation of `f` over `[lo, hi]` with `segments`
    /// uniform pieces, interpolating `f` at the segment endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` or `lo >= hi`.
    pub fn from_fn(lo: f32, hi: f32, segments: usize, f: impl Fn(f32) -> f32) -> Self {
        assert!(segments > 0, "need at least one segment");
        assert!(lo < hi, "invalid interval [{lo}, {hi}]");
        let width = (hi - lo) / segments as f32;
        let mut seg = Vec::with_capacity(segments);
        for s in 0..segments {
            let x0 = lo + s as f32 * width;
            let x1 = x0 + width;
            let y0 = f(x0);
            let y1 = f(x1);
            let a = (y1 - y0) / width;
            let b = y0 - a * x0;
            seg.push((a, b));
        }
        PiecewiseLinear {
            lo,
            hi,
            segments: seg,
            left_value: f(lo),
            right_value: f(hi),
        }
    }

    /// PWL approximation of the logistic sigmoid over `[-8, 8]`.
    pub fn sigmoid(segments: usize) -> Self {
        PiecewiseLinear::from_fn(-8.0, 8.0, segments, |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// PWL approximation of `tanh` over `[-4, 4]`.
    pub fn tanh(segments: usize) -> Self {
        PiecewiseLinear::from_fn(-4.0, 4.0, segments, f32::tanh)
    }

    /// Number of linear segments (drives the LUT cost model in `ernn-fpga`).
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The approximated domain.
    #[inline]
    pub fn domain(&self) -> (f32, f32) {
        (self.lo, self.hi)
    }

    /// Evaluates the approximation (clamping outside the domain).
    pub fn eval(&self, x: f32) -> f32 {
        if x <= self.lo {
            return self.left_value;
        }
        if x >= self.hi {
            return self.right_value;
        }
        let width = (self.hi - self.lo) / self.segments.len() as f32;
        let idx = (((x - self.lo) / width) as usize).min(self.segments.len() - 1);
        let (a, b) = self.segments[idx];
        a * x + b
    }

    /// Evaluates a whole slice in place.
    pub fn eval_slice(&self, xs: &mut [f32]) {
        for x in xs {
            *x = self.eval(*x);
        }
    }

    /// Maximum absolute error versus a reference function, estimated on a
    /// uniform grid of `samples` points across the domain.
    pub fn max_error_vs(&self, reference: impl Fn(f32) -> f32, samples: usize) -> f32 {
        let mut max = 0.0f32;
        for i in 0..samples {
            let x = self.lo + (self.hi - self.lo) * i as f32 / (samples - 1).max(1) as f32;
            max = max.max((self.eval(x) - reference(x)).abs());
        }
        max
    }

    /// Max error for the built-in constructors: compares against the exact
    /// sigmoid when the domain is `[-8, 8]`, otherwise against exact `tanh`.
    ///
    /// Prefer [`Self::max_error_vs`] with an explicit reference for custom
    /// functions.
    pub fn max_error(&self, samples: usize) -> f32 {
        if self.lo == -8.0 && self.hi == 8.0 {
            self.max_error_vs(|x| 1.0 / (1.0 + (-x).exp()), samples)
        } else {
            self.max_error_vs(f32::tanh, samples)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigmoid(x: f32) -> f32 {
        1.0 / (1.0 + (-x).exp())
    }

    #[test]
    fn interpolates_exactly_at_knots() {
        let pwl = PiecewiseLinear::tanh(16);
        let width = 8.0 / 16.0;
        for s in 0..=16 {
            let x = -4.0 + s as f32 * width;
            assert!((pwl.eval(x) - x.tanh()).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn clamps_outside_domain() {
        let pwl = PiecewiseLinear::sigmoid(8);
        assert_eq!(pwl.eval(-100.0), sigmoid(-8.0));
        assert_eq!(pwl.eval(100.0), sigmoid(8.0));
    }

    #[test]
    fn error_shrinks_with_more_segments() {
        let coarse = PiecewiseLinear::tanh(8).max_error(2000);
        let medium = PiecewiseLinear::tanh(32).max_error(2000);
        let fine = PiecewiseLinear::tanh(128).max_error(2000);
        assert!(coarse > medium && medium > fine);
        // Linear interpolation error scales ~1/segments².
        assert!(fine < coarse / 16.0 * 1.5);
    }

    #[test]
    fn sixty_four_segments_meet_hardware_budget() {
        // The quantization step of a 12-bit Q1.10 datapath is ~1e-3; the
        // PWL error at 64 segments is comfortably below it for sigmoid and
        // of the same order for tanh.
        assert!(PiecewiseLinear::sigmoid(64).max_error(4000) < 1e-3);
        assert!(PiecewiseLinear::tanh(64).max_error(4000) < 2e-3);
    }

    #[test]
    fn preserves_monotonicity_on_grid() {
        let pwl = PiecewiseLinear::sigmoid(16);
        let mut prev = f32::NEG_INFINITY;
        for i in 0..200 {
            let x = -10.0 + i as f32 * 0.1;
            let y = pwl.eval(x);
            assert!(y >= prev - 1e-6, "non-monotone at x={x}");
            prev = y;
        }
    }

    #[test]
    fn odd_symmetry_of_tanh_approximation() {
        let pwl = PiecewiseLinear::tanh(32);
        for i in 0..50 {
            let x = i as f32 * 0.1;
            assert!((pwl.eval(x) + pwl.eval(-x)).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn eval_slice_matches_scalar() {
        let pwl = PiecewiseLinear::tanh(16);
        let xs: Vec<f32> = (0..10).map(|i| i as f32 * 0.3 - 1.5).collect();
        let mut ys = xs.clone();
        pwl.eval_slice(&mut ys);
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert_eq!(pwl.eval(*x), *y);
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn rejects_zero_segments() {
        let _ = PiecewiseLinear::from_fn(0.0, 1.0, 0, |x| x);
    }

    #[test]
    fn custom_function_uses_explicit_reference() {
        let pwl = PiecewiseLinear::from_fn(0.0, 1.0, 64, |x| x * x);
        assert!(pwl.max_error_vs(|x| x * x, 1000) < 1e-3);
    }
}
