//! The block-circulant weight matrix (paper Sec. III-A).
//!
//! A weight matrix `W ∈ R^{m×n}` is partitioned into `p × q` square blocks
//! of size `L_b` (`p = ⌈m/L_b⌉`, `q = ⌈n/L_b⌉`, zero-padded at the edges).
//! Each block is a circulant matrix defined by its **first row** `w_ij`
//! (Fig. 4 convention: row `r` is the first row rotated right by `r`).
//! Storage drops from `O(n²)` to `O(n)` and the matvec runs as
//!
//! ```text
//! a_i = IFFT( Σ_j  conj(FFT(w_ij)) ∘ FFT(x_j) )          (Eqn. 4)
//! ```
//!
//! (the conjugation appears because a row-defined circulant performs a
//! circular *correlation*; the E-RNN PE datapath contains the matching
//! conjugation operator, Fig. 10). The implementation applies both
//! computation reductions from Sec. V-A: `FFT(x_j)` is computed once per
//! input block and the IFFT runs once per output block after
//! frequency-domain accumulation.

use crate::{MatVec, MatVecScratch, Matrix};
use ernn_fft::{is_power_of_two, spectrum_conj_mul_acc, stats, Complex32, RealFft};
use std::sync::Arc;

/// A block-circulant matrix with cached weight spectra.
///
/// Construct one either from explicit defining vectors
/// ([`BlockCirculantMatrix::from_blocks`]) or by Euclidean projection of a
/// dense matrix ([`BlockCirculantMatrix::project_dense`], the paper's
/// Eqn. 6 — the optimal solution of ADMM's second subproblem).
#[derive(Debug, Clone)]
pub struct BlockCirculantMatrix {
    /// Logical output dimension (rows of the represented matrix).
    rows: usize,
    /// Logical input dimension.
    cols: usize,
    /// Circulant block size `L_b`.
    block_size: usize,
    /// Number of block rows, `⌈rows / L_b⌉`.
    p: usize,
    /// Number of block columns, `⌈cols / L_b⌉`.
    q: usize,
    /// Defining first-row vectors, `p*q` blocks × `L_b` entries, block
    /// row-major.
    blocks: Vec<f32>,
    /// Cached `FFT(w_ij)` half spectra, `p*q` × `spectrum_len` entries.
    spectra: Vec<Complex32>,
    /// Process-wide shared real-FFT plan of size `L_b` (see
    /// [`RealFft::shared`]); clones of this matrix share the plan instead
    /// of recomputing twiddle tables.
    rfft: Arc<RealFft>,
    /// How many times the weight spectra have been (re)computed over this
    /// instance's lifetime (clones inherit the count). Construction counts
    /// as one; a steady count across matvecs is the observable guarantee
    /// that weight FFTs are cached rather than recomputed per request.
    refreshes: u64,
}

impl BlockCirculantMatrix {
    /// Builds a block-circulant matrix from defining vectors.
    ///
    /// `blocks` holds `⌈rows/L_b⌉ · ⌈cols/L_b⌉` first-row vectors of length
    /// `block_size`, in block row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two, dimensions are zero,
    /// or `blocks` has the wrong length.
    pub fn from_blocks(rows: usize, cols: usize, block_size: usize, blocks: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be non-zero");
        assert!(
            is_power_of_two(block_size),
            "block size must be a power of two, got {block_size}"
        );
        let p = rows.div_ceil(block_size);
        let q = cols.div_ceil(block_size);
        assert_eq!(
            blocks.len(),
            p * q * block_size,
            "expected {} block parameters, got {}",
            p * q * block_size,
            blocks.len()
        );
        let rfft = RealFft::shared(block_size);
        let mut m = BlockCirculantMatrix {
            rows,
            cols,
            block_size,
            p,
            q,
            blocks,
            spectra: Vec::new(),
            rfft,
            refreshes: 0,
        };
        m.refresh_spectra();
        m
    }

    /// Euclidean projection of a dense matrix onto the block-circulant
    /// manifold (paper Eqn. 6 / Fig. 5).
    ///
    /// For each block, each entry of the defining vector is the mean of the
    /// corresponding circulant diagonal. When the dense dimensions do not
    /// divide `block_size`, edge blocks are truncated: the mean runs over
    /// the in-bounds entries only, which keeps the projection the exact
    /// Euclidean minimizer over the *represented* (truncated) matrix and —
    /// crucially for ADMM — idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn project_dense(dense: &Matrix, block_size: usize) -> Self {
        assert!(
            is_power_of_two(block_size),
            "block size must be a power of two, got {block_size}"
        );
        let rows = dense.rows();
        let cols = dense.cols();
        let p = rows.div_ceil(block_size);
        let q = cols.div_ceil(block_size);
        let lb = block_size;
        let mut blocks = vec![0.0f32; p * q * lb];
        for bi in 0..p {
            for bj in 0..q {
                let base = (bi * q + bj) * lb;
                for k in 0..lb {
                    // Average along the diagonal (r, (r + k) mod L_b),
                    // counting only entries inside the logical matrix.
                    let mut sum = 0.0f32;
                    let mut count = 0usize;
                    for r in 0..lb {
                        let rr = bi * lb + r;
                        let cc = bj * lb + (r + k) % lb;
                        if rr < rows && cc < cols {
                            sum += dense.get(rr, cc);
                            count += 1;
                        }
                    }
                    blocks[base + k] = if count > 0 { sum / count as f32 } else { 0.0 };
                }
            }
        }
        BlockCirculantMatrix::from_blocks(rows, cols, block_size, blocks)
    }

    /// Logical number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Circulant block size `L_b`.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Block-grid shape `(p, q)`.
    #[inline]
    pub fn grid(&self) -> (usize, usize) {
        (self.p, self.q)
    }

    /// The stored defining vectors (block row-major, `L_b` per block).
    #[inline]
    pub fn blocks(&self) -> &[f32] {
        &self.blocks
    }

    /// The defining vector of block `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the block indices are out of range.
    pub fn block(&self, i: usize, j: usize) -> &[f32] {
        assert!(i < self.p && j < self.q, "block index out of range");
        let base = (i * self.q + j) * self.block_size;
        &self.blocks[base..base + self.block_size]
    }

    /// Number of stored parameters (`p·q·L_b`).
    #[inline]
    pub fn param_count(&self) -> usize {
        self.blocks.len()
    }

    /// Compression ratio versus dense storage of the logical matrix.
    pub fn compression_ratio(&self) -> f64 {
        (self.rows * self.cols) as f64 / self.param_count() as f64
    }

    /// Overwrites the defining vectors and refreshes the cached spectra.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len()` differs from [`Self::param_count`].
    pub fn set_blocks(&mut self, blocks: &[f32]) {
        assert_eq!(blocks.len(), self.blocks.len(), "block length mismatch");
        self.blocks.copy_from_slice(blocks);
        self.refresh_spectra();
    }

    /// Applies `f` to the defining vectors in place (e.g. an SGD step in
    /// C-LSTM-style training) and refreshes the cached spectra.
    pub fn update_blocks(&mut self, f: impl FnOnce(&mut [f32])) {
        f(&mut self.blocks);
        self.refresh_spectra();
    }

    /// Lifetime count of weight-spectrum recomputations (see the field
    /// docs); serving-layer tests use this to prove the FFT'd-weight cache
    /// is hit rather than rebuilt per request.
    #[inline]
    pub fn spectrum_refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// Recomputes the cached weight spectra from the defining vectors and
    /// bumps [`Self::spectrum_refresh_count`]. Values are unchanged (the
    /// FFT of the same blocks); callers use this to model re-streaming a
    /// weight image — e.g. the serving registry loading a model into an
    /// accelerator's BRAM — while keeping the refresh counter honest.
    pub fn refresh_spectra(&mut self) {
        self.refreshes += 1;
        let sp_len = self.rfft.spectrum_len();
        self.spectra.clear();
        self.spectra.reserve(self.p * self.q * sp_len);
        for b in 0..self.p * self.q {
            let base = b * self.block_size;
            let spec = self
                .rfft
                .forward(&self.blocks[base..base + self.block_size]);
            self.spectra.extend_from_slice(&spec);
        }
    }

    fn spectrum(&self, i: usize, j: usize) -> &[Complex32] {
        let sp_len = self.rfft.spectrum_len();
        let base = (i * self.q + j) * sp_len;
        &self.spectra[base..base + sp_len]
    }

    /// FFT-based matvec `y = W·x` with FFT/IFFT decoupling (Sec. V-A1).
    ///
    /// Cost: `q` forward FFTs, `p·q` frequency-domain multiply-accumulates,
    /// `p` inverse FFTs. Thin allocating wrapper over
    /// [`Self::matvec_into`]; results are bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut y, &mut MatVecScratch::new());
        y
    }

    /// FFT-based matvec writing into a caller-provided output buffer,
    /// allocation-free once `scratch` has grown to this matrix's shape.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32], scratch: &mut MatVecScratch) {
        self.matvec_batch_into(x, y, 1, scratch);
    }

    /// Batch-fused FFT matvec: `ys[b] = W·xs[b]` for `batch` inputs laid
    /// out contiguously (`xs` is `batch × cols` row-major, `ys` is
    /// `batch × rows`).
    ///
    /// All `batch · q` input blocks are FFT'd first; the cached weight
    /// spectra are then streamed **once per batch** — each `(i, j)` block
    /// visit accumulates into all `batch` frequency-domain accumulators
    /// (observable via
    /// [`spectrum_block_reads`](ernn_fft::stats::FftStats::spectrum_block_reads):
    /// `p·q` reads per call, versus `batch · p·q` for sequential calls).
    /// This is the host-side analogue of how C-LSTM amortizes the weight
    /// stream across concurrent inputs. Per-input results are
    /// bit-identical to [`Self::matvec`]: each input sees the exact same
    /// operation sequence, only the weight-block traversal is shared.
    ///
    /// Allocation-free once `scratch` has grown to this shape and batch.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != batch * cols` or `ys.len() != batch * rows`.
    pub fn matvec_batch_into(
        &self,
        xs: &[f32],
        ys: &mut [f32],
        batch: usize,
        scratch: &mut MatVecScratch,
    ) {
        assert_eq!(
            xs.len(),
            batch * self.cols,
            "input length must equal batch × cols"
        );
        assert_eq!(
            ys.len(),
            batch * self.rows,
            "output length must equal batch × rows"
        );
        let lb = self.block_size;
        let sp_len = self.rfft.spectrum_len();
        let MatVecScratch {
            padded,
            x_spectra,
            acc,
            block_out,
            fft,
        } = scratch;
        padded.resize(lb, 0.0);
        x_spectra.resize(batch * self.q * sp_len, Complex32::ZERO);
        acc.resize(batch * sp_len, Complex32::ZERO);
        block_out.resize(lb, 0.0);

        // Stage 1 (decoupled): FFT of every (zero-padded) input block, once.
        for b in 0..batch {
            let x = &xs[b * self.cols..(b + 1) * self.cols];
            for j in 0..self.q {
                let start = j * lb;
                let end = ((j + 1) * lb).min(self.cols);
                padded.iter_mut().for_each(|v| *v = 0.0);
                padded[..end - start].copy_from_slice(&x[start..end]);
                let spec = &mut x_spectra[(b * self.q + j) * sp_len..][..sp_len];
                self.rfft.forward_into(padded, spec, fft);
            }
        }

        // Stage 2+3: one pass over the weight spectra per batch — every
        // block visit feeds all `batch` accumulators — then one IFFT per
        // (output block, input). The pass visits exactly p·q blocks, so
        // the read counter is bumped once up front rather than paying an
        // atomic RMW inside the hot accumulate loop.
        stats::count_spectrum_block_reads((self.p * self.q) as u64);
        for i in 0..self.p {
            acc.iter_mut().for_each(|v| *v = Complex32::ZERO);
            for j in 0..self.q {
                let w = self.spectrum(i, j);
                for b in 0..batch {
                    let xsj = &x_spectra[(b * self.q + j) * sp_len..][..sp_len];
                    spectrum_conj_mul_acc(&mut acc[b * sp_len..][..sp_len], w, xsj);
                }
            }
            let start = i * lb;
            let end = ((i + 1) * lb).min(self.rows);
            for b in 0..batch {
                self.rfft
                    .inverse_into(&acc[b * sp_len..][..sp_len], block_out, fft);
                ys[b * self.rows..][start..end].copy_from_slice(&block_out[..end - start]);
            }
        }
    }

    /// Convenience batched matvec over separate input vectors; thin
    /// allocating wrapper over [`Self::matvec_batch_into`].
    ///
    /// # Panics
    ///
    /// Panics if any input's length differs from `cols`.
    pub fn matvec_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut flat = Vec::with_capacity(xs.len() * self.cols);
        for x in xs {
            assert_eq!(x.len(), self.cols, "input length must equal cols");
            flat.extend_from_slice(x);
        }
        let mut ys = vec![0.0f32; xs.len() * self.rows];
        self.matvec_batch_into(&flat, &mut ys, xs.len(), &mut MatVecScratch::new());
        ys.chunks(self.rows).map(|c| c.to_vec()).collect()
    }

    /// Direct (no-FFT) matvec, O(L_b²) per block. Reference implementation
    /// used to validate [`Self::matvec`] and by the fixed-point simulator,
    /// which mirrors the hardware's integer datapath.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_direct(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "input length must equal cols");
        let lb = self.block_size;
        let mut y = vec![0.0f32; self.rows];
        for i in 0..self.p {
            let rlimit = lb.min(self.rows - i * lb);
            for j in 0..self.q {
                let w = self.block(i, j);
                let jbase = j * lb;
                let climit = lb.min(self.cols - jbase);
                let xs = &x[jbase..jbase + climit];
                for (r, out) in y[i * lb..i * lb + rlimit].iter_mut().enumerate() {
                    // Row r of the block is w rotated right by r: entry
                    // (r, c) = w[(c − r) mod L_b], i.e. the wrapped tail
                    // w[L_b−r..] for c < r followed by w[..] for c ≥ r —
                    // two contiguous segments, no per-element modulo.
                    let mut acc = 0.0f32;
                    for (wv, xv) in w[lb - r..].iter().zip(xs) {
                        acc += wv * xv;
                    }
                    if r < climit {
                        for (wv, xv) in w.iter().zip(&xs[r..]) {
                            acc += wv * xv;
                        }
                    }
                    *out += acc;
                }
            }
        }
        y
    }

    /// Transposed matvec `y = Wᵀ·x`.
    ///
    /// Uses the identity that the transpose of a first-row circulant `w` is
    /// the circulant defined by `w'(k) = w((L_b − k) mod L_b)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "input length must equal rows");
        let lb = self.block_size;
        let mut y = vec![0.0f32; self.cols];
        for i in 0..self.p {
            let ibase = i * lb;
            let rlimit = lb.min(self.rows - ibase);
            let xs = &x[ibase..ibase + rlimit];
            for j in 0..self.q {
                let w = self.block(i, j);
                let jbase = j * lb;
                let climit = lb.min(self.cols - jbase);
                for (c, out) in y[jbase..jbase + climit].iter_mut().enumerate() {
                    // Column c reads w[(c − r) mod L_b] down the rows:
                    // w[c], w[c−1], …, w[0], then w[L_b−1] down to the wrap
                    // point — two reversed contiguous runs, no modulo.
                    let mut acc = 0.0f32;
                    for (wv, xv) in w[..=c].iter().rev().zip(xs) {
                        acc += wv * xv;
                    }
                    if c + 1 < rlimit {
                        let lo = lb + c + 1 - rlimit;
                        for (wv, xv) in w[lo..].iter().rev().zip(&xs[c + 1..]) {
                            acc += wv * xv;
                        }
                    }
                    *out += acc;
                }
            }
        }
        y
    }

    /// Gradient of a loss with respect to the defining vectors for
    /// `y = W·x`: given `∂L/∂y`, returns `∂L/∂w` in the same layout as
    /// [`Self::blocks`].
    ///
    /// Because entry `(r, c)` of block `(i, j)` equals `w_ij[(c−r) mod L_b]`,
    /// the gradient of `w_ij[k]` sums `dy[r] · x[(r+k) mod L_b]` along the
    /// diagonal — this is the exact gradient of the circulant
    /// parameterization used by C-LSTM-style training.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the matrix shape.
    pub fn grad_blocks(&self, x: &[f32], dy: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "input length must equal cols");
        assert_eq!(
            dy.len(),
            self.rows,
            "output-gradient length must equal rows"
        );
        let lb = self.block_size;
        let mut grad = vec![0.0f32; self.blocks.len()];
        for i in 0..self.p {
            let ibase = i * lb;
            let rlimit = lb.min(self.rows - ibase);
            let dys = &dy[ibase..ibase + rlimit];
            for j in 0..self.q {
                let jbase = j * lb;
                let climit = lb.min(self.cols - jbase);
                let xs = &x[jbase..jbase + climit];
                let base = (i * self.q + j) * lb;
                for (k, g) in grad[base..base + lb].iter_mut().enumerate() {
                    // Diagonal (r, (r + k) mod L_b): column index r + k
                    // until it wraps at r = L_b − k, then r + k − L_b —
                    // two contiguous dy/x segment products, no modulo.
                    let mut acc = 0.0f32;
                    if k < climit {
                        for (dv, xv) in dys.iter().zip(&xs[k..]) {
                            acc += dv * xv;
                        }
                    }
                    if k > 0 && lb - k < rlimit {
                        for (dv, xv) in dys[lb - k..].iter().zip(xs) {
                            acc += dv * xv;
                        }
                    }
                    *g = acc;
                }
            }
        }
        grad
    }

    /// Materializes the dense equivalent (logical dimensions, padding
    /// dropped).
    pub fn to_dense(&self) -> Matrix {
        let lb = self.block_size;
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            let (bi, bj) = (r / lb, c / lb);
            let (br, bc) = (r % lb, c % lb);
            self.block(bi, bj)[(bc + lb - br) % lb]
        })
    }

    /// Squared Euclidean distance between this matrix and a dense matrix of
    /// the same logical shape — the quantity ADMM's second subproblem
    /// minimizes.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn distance_sq(&self, dense: &Matrix) -> f32 {
        assert_eq!(dense.rows(), self.rows, "row mismatch");
        assert_eq!(dense.cols(), self.cols, "col mismatch");
        let own = self.to_dense();
        own.as_slice()
            .iter()
            .zip(dense.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

impl PartialEq for BlockCirculantMatrix {
    /// Two block-circulant matrices are equal when they represent the same
    /// logical matrix: shape, block size and defining vectors all match
    /// (the cached spectra are derived state and excluded).
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.block_size == other.block_size
            && self.blocks == other.blocks
    }
}

impl MatVec for BlockCirculantMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn matvec(&self, x: &[f32]) -> Vec<f32> {
        BlockCirculantMatrix::matvec(self, x)
    }
    fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        BlockCirculantMatrix::matvec_t(self, x)
    }
    fn matvec_into(&self, x: &[f32], y: &mut [f32], scratch: &mut MatVecScratch) {
        BlockCirculantMatrix::matvec_into(self, x, y, scratch);
    }
    fn matvec_batch_into(
        &self,
        xs: &[f32],
        ys: &mut [f32],
        batch: usize,
        scratch: &mut MatVecScratch,
    ) {
        BlockCirculantMatrix::matvec_batch_into(self, xs, ys, batch, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_bc(
        rows: usize,
        cols: usize,
        lb: usize,
        seed: u64,
    ) -> (BlockCirculantMatrix, rand_chacha::ChaCha8Rng) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let p = rows.div_ceil(lb);
        let q = cols.div_ceil(lb);
        let blocks: Vec<f32> = (0..p * q * lb).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (
            BlockCirculantMatrix::from_blocks(rows, cols, lb, blocks),
            rng,
        )
    }

    #[test]
    fn to_dense_rows_rotate_right() {
        let bc = BlockCirculantMatrix::from_blocks(4, 4, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let d = bc.to_dense();
        assert_eq!(d.row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.row(1), &[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(d.row(2), &[3.0, 4.0, 1.0, 2.0]);
        assert_eq!(d.row(3), &[2.0, 3.0, 4.0, 1.0]);
    }

    #[test]
    fn fft_matvec_matches_dense() {
        let (bc, mut rng) = random_bc(8, 12, 4, 11);
        let x: Vec<f32> = (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let expected = bc.to_dense().matvec(&x);
        let got = bc.matvec(&x);
        for (a, b) in got.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-4, "{got:?} vs {expected:?}");
        }
    }

    #[test]
    fn direct_matvec_matches_dense() {
        let (bc, mut rng) = random_bc(8, 12, 4, 13);
        let x: Vec<f32> = (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let expected = bc.to_dense().matvec(&x);
        let got = bc.matvec_direct(&x);
        for (a, b) in got.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn matvec_t_matches_dense_transpose() {
        let (bc, mut rng) = random_bc(8, 12, 4, 17);
        let x: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let expected = bc.to_dense().matvec_t(&x);
        let got = bc.matvec_t(&x);
        for (a, b) in got.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn projection_is_identity_on_circulant_input() {
        let (bc, _) = random_bc(8, 8, 4, 19);
        let reprojected = BlockCirculantMatrix::project_dense(&bc.to_dense(), 4);
        for (a, b) in bc.blocks().iter().zip(reprojected.blocks()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn euclidean_mapping_averages_diagonals() {
        // 2×2 block: entries (0,0),(1,1) share w[0]; (0,1),(1,0) share w[1].
        let dense = Matrix::from_rows(&[&[0.5, 0.4], &[-0.3, 0.5]]);
        let bc = BlockCirculantMatrix::project_dense(&dense, 2);
        let w = bc.block(0, 0);
        assert!((w[0] - 0.5).abs() < 1e-6); // (0.5 + 0.5)/2
        assert!((w[1] - 0.05).abs() < 1e-6); // (0.4 − 0.3)/2
    }

    #[test]
    fn euclidean_mapping_matches_paper_figure_5_layout() {
        // A 4×4 matrix with block size 2 has 4 independent 2×2 circulant
        // blocks; check each block's diagonal averaging independently.
        let dense = Matrix::from_rows(&[
            &[0.5, 0.4, 1.2, -0.3],
            &[-1.3, 0.5, 0.1, 0.7],
            &[-0.1, 1.4, 0.7, 0.5],
            &[0.6, -1.3, -0.9, 1.4],
        ]);
        let bc = BlockCirculantMatrix::project_dense(&dense, 2);
        // Block (0,0): diag {0.5, 0.5} -> 0.5; off-diag {0.4, -1.3} -> -0.45.
        assert!((bc.block(0, 0)[0] - 0.5).abs() < 1e-6);
        assert!((bc.block(0, 0)[1] - (-0.45)).abs() < 1e-6);
        // Block (0,1): diag {1.2, 0.7} -> 0.95; off-diag {-0.3, 0.1} -> -0.1.
        assert!((bc.block(0, 1)[0] - 0.95).abs() < 1e-6);
        assert!((bc.block(0, 1)[1] - (-0.1)).abs() < 1e-6);
        // Block (1,1): diag {0.7, 1.4} -> 1.05; off-diag {0.5, -0.9} -> -0.2.
        assert!((bc.block(1, 1)[0] - 1.05).abs() < 1e-6);
        assert!((bc.block(1, 1)[1] - (-0.2)).abs() < 1e-6);
    }

    #[test]
    fn projection_minimizes_distance() {
        // The projection must beat any perturbed circulant candidate.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        let dense = Matrix::xavier(8, 8, &mut rng);
        let proj = BlockCirculantMatrix::project_dense(&dense, 4);
        let best = proj.distance_sq(&dense);
        for _ in 0..20 {
            let mut blocks = proj.blocks().to_vec();
            for b in &mut blocks {
                *b += rng.gen_range(-0.05..0.05);
            }
            let candidate = BlockCirculantMatrix::from_blocks(8, 8, 4, blocks);
            assert!(candidate.distance_sq(&dense) >= best - 1e-6);
        }
    }

    #[test]
    fn grad_blocks_matches_finite_difference() {
        let (mut bc, mut rng) = random_bc(8, 8, 4, 29);
        let x: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let dy: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let grad = bc.grad_blocks(&x, &dy);
        // L = dy · (W x); compare to central differences on each parameter.
        let eps = 1e-3f32;
        let n = bc.param_count();
        for k in (0..n).step_by(3) {
            let orig = bc.blocks()[k];
            let mut plus = bc.blocks().to_vec();
            plus[k] = orig + eps;
            bc.set_blocks(&plus);
            let lp: f32 = crate::ops::dot(&dy, &bc.matvec_direct(&x));
            let mut minus = plus;
            minus[k] = orig - eps;
            bc.set_blocks(&minus);
            let lm: f32 = crate::ops::dot(&dy, &bc.matvec_direct(&x));
            let mut restore = minus;
            restore[k] = orig;
            bc.set_blocks(&restore);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad[k]).abs() < 1e-2 * (1.0 + fd.abs()),
                "param {k}: fd={fd} grad={}",
                grad[k]
            );
        }
    }

    #[test]
    fn compression_ratio_matches_block_size_for_square() {
        let (bc, _) = random_bc(64, 64, 8, 31);
        assert!((bc.compression_ratio() - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_block() {
        let _ = BlockCirculantMatrix::from_blocks(6, 6, 3, vec![0.0; 12]);
    }

    #[test]
    fn update_blocks_refreshes_spectra() {
        let (mut bc, mut rng) = random_bc(8, 8, 4, 37);
        let x: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        bc.update_blocks(|b| b.iter_mut().for_each(|v| *v *= 2.0));
        let got = bc.matvec(&x);
        let expected = bc.matvec_direct(&x);
        for (a, b) in got.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn batched_matvec_streams_weight_spectra_once_per_batch() {
        let (bc, mut rng) = random_bc(16, 24, 8, 41);
        let (p, q) = bc.grid();
        let batch = 6usize;
        let xs: Vec<f32> = (0..batch * bc.cols())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let mut ys = vec![0.0f32; batch * bc.rows()];
        let mut scratch = MatVecScratch::new();

        // Sequential: one pass over the weight spectra per input.
        let before = ernn_fft::stats::thread_snapshot();
        for b in 0..batch {
            let (x, y) = (
                &xs[b * bc.cols()..(b + 1) * bc.cols()],
                &mut ys[b * bc.rows()..(b + 1) * bc.rows()],
            );
            bc.matvec_into(x, y, &mut scratch);
        }
        let seq = ernn_fft::stats::thread_snapshot().since(&before);
        assert_eq!(seq.spectrum_block_reads, (batch * p * q) as u64);

        // Fused: exactly one pass per batch, whatever the batch size.
        let before = ernn_fft::stats::thread_snapshot();
        bc.matvec_batch_into(&xs, &mut ys, batch, &mut scratch);
        let fused = ernn_fft::stats::thread_snapshot().since(&before);
        assert_eq!(fused.spectrum_block_reads, (p * q) as u64);
        // FFT work is identical either way; only the spectrum streaming
        // is amortized.
        assert_eq!(fused.forward_transforms, seq.forward_transforms);
        assert_eq!(fused.inverse_transforms, seq.inverse_transforms);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn into_and_batch_paths_are_bit_identical_to_matvec(
            lb_pow in 0u32..5,
            p in 1usize..4,
            q in 1usize..4,
            batch in 1usize..5,
            rows_off in 0usize..3,
            cols_off in 0usize..3,
            seed in any::<u64>(),
        ) {
            // Padded edge blocks included: logical dims need not divide L_b.
            let lb = 1usize << lb_pow;
            let rows = (p * lb).saturating_sub(rows_off).max(1);
            let cols = (q * lb).saturating_sub(cols_off).max(1);
            let (bc, mut rng) = random_bc(rows, cols, lb, seed);
            let xs: Vec<Vec<f32>> = (0..batch)
                .map(|_| (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();
            let expected: Vec<Vec<f32>> = xs.iter().map(|x| bc.matvec(x)).collect();

            // matvec_into, with one reused scratch across calls.
            let mut scratch = MatVecScratch::new();
            for (x, want) in xs.iter().zip(expected.iter()) {
                let mut y = vec![0.0f32; rows];
                bc.matvec_into(x, &mut y, &mut scratch);
                prop_assert_eq!(&y, want);
            }

            // matvec_batch_into over the flattened batch.
            let flat: Vec<f32> = xs.iter().flatten().copied().collect();
            let mut ys = vec![0.0f32; batch * rows];
            bc.matvec_batch_into(&flat, &mut ys, batch, &mut scratch);
            for (b, want) in expected.iter().enumerate() {
                prop_assert_eq!(&ys[b * rows..(b + 1) * rows], want.as_slice());
            }

            // Allocating batch wrapper agrees too.
            prop_assert_eq!(bc.matvec_batch(&xs), expected);
        }

        #[test]
        fn fft_and_direct_paths_agree(
            lb_pow in 0u32..5,
            p in 1usize..4,
            q in 1usize..4,
            seed in any::<u64>(),
        ) {
            let lb = 1usize << lb_pow;
            let rows = p * lb;
            let cols = q * lb;
            let (bc, mut rng) = random_bc(rows, cols, lb, seed);
            let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let fft = bc.matvec(&x);
            let direct = bc.matvec_direct(&x);
            for (a, b) in fft.iter().zip(direct.iter()) {
                prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
            }
        }

        #[test]
        fn padded_dims_agree_with_dense(
            rows in 1usize..20,
            cols in 1usize..20,
            seed in any::<u64>(),
        ) {
            let lb = 8;
            let (bc, mut rng) = random_bc(rows, cols, lb, seed);
            let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let expected = bc.to_dense().matvec(&x);
            let got = bc.matvec(&x);
            prop_assert_eq!(got.len(), rows);
            for (a, b) in got.iter().zip(expected.iter()) {
                prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
            }
        }
    }
}
