//! Weight-matrix abstraction shared by dense and compressed models.
//!
//! RNN cells in `ernn-model` are generic over [`MatVec`] so that the same
//! forward-pass code runs the uncompressed training model
//! ([`crate::Matrix`]), the compressed inference model
//! ([`crate::BlockCirculantMatrix`]), or a mixture chosen at run time
//! ([`WeightMatrix`]).

use crate::{BlockCirculantMatrix, MatVecScratch, Matrix};

/// A matrix that can multiply a vector (and its transpose).
///
/// This is the only capability an RNN cell's forward pass needs from its
/// weights. The trait is sealed-by-convention: the workspace implements it
/// for [`Matrix`], [`BlockCirculantMatrix`] and [`WeightMatrix`].
///
/// The `_into` methods are the allocation-free forms used by the
/// inference hot path; they must be bit-identical to `matvec`. The
/// provided defaults fall back to the allocating path, and every
/// workspace implementation overrides them with true in-place kernels.
pub trait MatVec {
    /// Output dimension.
    fn rows(&self) -> usize;
    /// Input dimension.
    fn cols(&self) -> usize;
    /// `y = A·x`.
    fn matvec(&self, x: &[f32]) -> Vec<f32>;
    /// `y = Aᵀ·x`.
    fn matvec_t(&self, x: &[f32]) -> Vec<f32>;

    /// `y = A·x` into a caller-provided buffer, borrowing `scratch` for
    /// intermediates. Bit-identical to [`Self::matvec`].
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.rows()`.
    fn matvec_into(&self, x: &[f32], y: &mut [f32], scratch: &mut MatVecScratch) {
        let _ = scratch;
        y.copy_from_slice(&self.matvec(x));
    }

    /// Batched `ys[b] = A·xs[b]` over contiguous `batch × cols` inputs
    /// and `batch × rows` outputs. Bit-identical per input to
    /// [`Self::matvec`]; implementations may fuse the batch (the
    /// block-circulant kernel streams its weight spectra once per batch).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `batch` and the shape.
    fn matvec_batch_into(
        &self,
        xs: &[f32],
        ys: &mut [f32],
        batch: usize,
        scratch: &mut MatVecScratch,
    ) {
        let (rows, cols) = (self.rows(), self.cols());
        assert_eq!(
            xs.len(),
            batch * cols,
            "input length must equal batch × cols"
        );
        assert_eq!(
            ys.len(),
            batch * rows,
            "output length must equal batch × rows"
        );
        for b in 0..batch {
            self.matvec_into(
                &xs[b * cols..(b + 1) * cols],
                &mut ys[b * rows..(b + 1) * rows],
                scratch,
            );
        }
    }
}

impl MatVec for Matrix {
    fn rows(&self) -> usize {
        Matrix::rows(self)
    }
    fn cols(&self) -> usize {
        Matrix::cols(self)
    }
    fn matvec(&self, x: &[f32]) -> Vec<f32> {
        Matrix::matvec(self, x)
    }
    fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        Matrix::matvec_t(self, x)
    }
    fn matvec_into(&self, x: &[f32], y: &mut [f32], _scratch: &mut MatVecScratch) {
        Matrix::matvec_into(self, x, y);
    }
}

/// A weight matrix in either representation, chosen at run time.
///
/// Phase I of E-RNN may assign *different* block sizes to different weight
/// matrices (Sec. VI-B step 3 uses larger blocks for input/output matrices),
/// including leaving some dense; this enum is the uniform container.
///
/// ```
/// use ernn_linalg::{Matrix, MatVec, WeightMatrix, BlockCirculantMatrix};
/// let dense = Matrix::from_fn(4, 4, |r, c| (r + c) as f32);
/// let w = WeightMatrix::Circulant(BlockCirculantMatrix::project_dense(&dense, 2));
/// assert_eq!(w.rows(), 4);
/// assert_eq!(w.param_count(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum WeightMatrix {
    /// Uncompressed storage.
    Dense(Matrix),
    /// Block-circulant compressed storage.
    Circulant(BlockCirculantMatrix),
}

impl WeightMatrix {
    /// Number of stored parameters.
    pub fn param_count(&self) -> usize {
        match self {
            WeightMatrix::Dense(m) => m.rows() * m.cols(),
            WeightMatrix::Circulant(m) => m.param_count(),
        }
    }

    /// Block size of the representation (1 for dense).
    pub fn block_size(&self) -> usize {
        match self {
            WeightMatrix::Dense(_) => 1,
            WeightMatrix::Circulant(m) => m.block_size(),
        }
    }

    /// Materializes a dense copy.
    pub fn to_dense(&self) -> Matrix {
        match self {
            WeightMatrix::Dense(m) => m.clone(),
            WeightMatrix::Circulant(m) => m.to_dense(),
        }
    }
}

impl MatVec for WeightMatrix {
    fn rows(&self) -> usize {
        match self {
            WeightMatrix::Dense(m) => m.rows(),
            WeightMatrix::Circulant(m) => m.rows(),
        }
    }
    fn cols(&self) -> usize {
        match self {
            WeightMatrix::Dense(m) => m.cols(),
            WeightMatrix::Circulant(m) => m.cols(),
        }
    }
    fn matvec(&self, x: &[f32]) -> Vec<f32> {
        match self {
            WeightMatrix::Dense(m) => m.matvec(x),
            WeightMatrix::Circulant(m) => m.matvec(x),
        }
    }
    fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        match self {
            WeightMatrix::Dense(m) => m.matvec_t(x),
            WeightMatrix::Circulant(m) => m.matvec_t(x),
        }
    }
    fn matvec_into(&self, x: &[f32], y: &mut [f32], scratch: &mut MatVecScratch) {
        match self {
            WeightMatrix::Dense(m) => MatVec::matvec_into(m, x, y, scratch),
            WeightMatrix::Circulant(m) => m.matvec_into(x, y, scratch),
        }
    }
    fn matvec_batch_into(
        &self,
        xs: &[f32],
        ys: &mut [f32],
        batch: usize,
        scratch: &mut MatVecScratch,
    ) {
        match self {
            WeightMatrix::Dense(m) => MatVec::matvec_batch_into(m, xs, ys, batch, scratch),
            WeightMatrix::Circulant(m) => m.matvec_batch_into(xs, ys, batch, scratch),
        }
    }
}

impl From<Matrix> for WeightMatrix {
    fn from(m: Matrix) -> Self {
        WeightMatrix::Dense(m)
    }
}

impl From<BlockCirculantMatrix> for WeightMatrix {
    fn from(m: BlockCirculantMatrix) -> Self {
        WeightMatrix::Circulant(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn enum_dispatch_matches_inner() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let dense = Matrix::xavier(8, 8, &mut rng);
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let w = WeightMatrix::Dense(dense.clone());
        assert_eq!(w.matvec(&x), dense.matvec(&x));
        assert_eq!(w.matvec_t(&x), dense.matvec_t(&x));

        let bc = BlockCirculantMatrix::project_dense(&dense, 4);
        let w = WeightMatrix::Circulant(bc.clone());
        assert_eq!(w.matvec(&x), bc.matvec(&x));
        assert_eq!(w.param_count(), bc.param_count());
        assert_eq!(w.block_size(), 4);
    }

    #[test]
    fn from_conversions() {
        let m = Matrix::zeros(2, 2);
        let w: WeightMatrix = m.into();
        assert_eq!(w.block_size(), 1);
        assert_eq!(w.param_count(), 4);
    }
}
