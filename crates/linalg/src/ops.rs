//! Element-wise vector operations.
//!
//! LSTM/GRU cells are dominated by matvecs plus a fixed menu of point-wise
//! operations (the `⊙` and `+` of the paper's Eqns. 1 and 2). Keeping them
//! as named free functions makes the cell implementations read like the
//! paper's equations and gives the benches a single place to measure.

/// `out[i] = a[i] * b[i]` — the paper's `⊙` operator.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn hadamard(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).collect()
}

/// `acc[i] += a[i] * b[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn hadamard_acc(acc: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert_eq!(acc.len(), a.len(), "length mismatch");
    for ((o, x), y) in acc.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o += x * y;
    }
}

/// `out[i] = a[i] + b[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// `acc[i] += alpha * x[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(acc: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "length mismatch");
    for (o, v) in acc.iter_mut().zip(x.iter()) {
        *o += alpha * v;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Dot product.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Concatenates two vectors — used for the paper's fused inputs
/// `[xᵀ, yᵀ₋₁]ᵀ` (LSTM) and `[xᵀ, cᵀ₋₁]ᵀ` (GRU).
pub fn concat(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Index of the maximum element (ties resolve to the first).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// Clips every element to `[-limit, limit]` and returns the pre-clip norm —
/// gradient clipping for BPTT stability.
pub fn clip_in_place(x: &mut [f32], limit: f32) -> f32 {
    let n = norm2(x);
    for v in x.iter_mut() {
        *v = v.clamp(-limit, limit);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_multiplies_pointwise() {
        assert_eq!(hadamard(&[1.0, 2.0], &[3.0, -1.0]), vec![3.0, -2.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn argmax_returns_first_max() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
    }

    #[test]
    fn concat_preserves_order() {
        assert_eq!(concat(&[1.0], &[2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn clip_bounds_entries() {
        let mut x = vec![10.0, -3.0, 0.5];
        clip_in_place(&mut x, 1.0);
        assert_eq!(x, vec![1.0, -1.0, 0.5]);
    }

    #[test]
    fn dot_matches_expansion() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
