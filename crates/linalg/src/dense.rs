//! Dense row-major matrix used for uncompressed weights and training state.

use rand::Rng;
use std::fmt;

/// A dense `rows × cols` matrix of `f32` in row-major order.
///
/// This is deliberately a small, explicit kernel set — matvec, transposed
/// matvec, rank-1 update — because those are exactly the operations BPTT
/// and ADMM need. No BLAS dependency keeps the reproduction self-contained.
///
/// ```
/// use ernn_linalg::Matrix;
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from explicit row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (rows + cols))`, the standard choice for tanh/sigmoid
    /// RNNs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0; self.rows];
        self.matvec_acc(x, &mut y);
        y
    }

    /// `y = A·x` into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        y.iter_mut().for_each(|v| *v = 0.0);
        self.matvec_acc(x, y);
    }

    /// `y += A·x` (accumulating into the caller's buffer).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn matvec_acc(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "input length must equal cols");
        assert_eq!(y.len(), self.rows, "output length must equal rows");
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *out += acc;
        }
    }

    /// `y = Aᵀ·x` (used by backpropagation to push deltas through a layer).
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0; self.cols];
        self.matvec_t_acc(x, &mut y);
        y
    }

    /// `y += Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn matvec_t_acc(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "input length must equal rows");
        assert_eq!(y.len(), self.cols, "output length must equal cols");
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (out, &a) in y.iter_mut().zip(row.iter()) {
                *out += a * xv;
            }
        }
    }

    /// Rank-1 update `A += α · u·vᵀ` (the weight-gradient accumulation of
    /// BPTT: `dW += δ ⊗ input`).
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != rows` or `v.len() != cols`.
    pub fn add_outer(&mut self, alpha: f32, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows, "u length must equal rows");
        assert_eq!(v.len(), self.cols, "v length must equal cols");
        for (r, &uv) in u.iter().enumerate() {
            if uv == 0.0 {
                continue;
            }
            let s = alpha * uv;
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, &b) in row.iter_mut().zip(v.iter()) {
                *a += s * b;
            }
        }
    }

    /// `A += α·B`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiply every entry by `s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Set every entry to zero (reusing the allocation).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Frobenius norm `sqrt(Σ a²)`.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Largest absolute entry (used to size fixed-point formats).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, a| m.max(a.abs()))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = [1.0, -1.0, 2.0];
        let via_t = m.matvec_t(&x);
        let explicit = m.transposed().matvec(&x);
        assert_eq!(via_t, explicit);
    }

    #[test]
    fn add_outer_is_rank_one_update() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[2.0, 4.0, 6.0]);
        assert_eq!(m.row(1), &[-2.0, -4.0, -6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, -1.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a.row(0), &[2.0, 0.5]);
    }

    #[test]
    fn frobenius_norm_of_identity_like() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let m = Matrix::xavier(64, 64, &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(m.max_abs() <= a);
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn matvec_rejects_bad_length() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m}").is_empty());
    }

    proptest! {
        #[test]
        fn transpose_twice_is_identity(rows in 1usize..10, cols in 1usize..10, seed in any::<u64>()) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let m = Matrix::xavier(rows, cols, &mut rng);
            prop_assert_eq!(m.transposed().transposed(), m);
        }

        #[test]
        fn matvec_linearity(seed in any::<u64>()) {
            use rand::Rng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let m = Matrix::xavier(5, 7, &mut rng);
            let x: Vec<f32> = (0..7).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let y: Vec<f32> = (0..7).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
            let lhs = m.matvec(&sum);
            let rx = m.matvec(&x);
            let ry = m.matvec(&y);
            for i in 0..5 {
                prop_assert!((lhs[i] - (rx[i] + ry[i])).abs() < 1e-4);
            }
        }
    }
}
