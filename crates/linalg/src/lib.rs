//! Linear-algebra substrate for the E-RNN reproduction.
//!
//! Two matrix representations coexist in the E-RNN framework:
//!
//! * [`Matrix`] — plain dense row-major storage, used during training
//!   (the ADMM subproblem 1 trains *unconstrained* weights).
//! * [`BlockCirculantMatrix`] — the paper's compressed format (Sec. III-A):
//!   the matrix is partitioned into `L_b × L_b` blocks, each a circulant
//!   defined by its first row, stored as one vector per block and executed
//!   with FFT kernels (Eqn. 4) using the FFT/IFFT decoupling of Sec. V-A1.
//!
//! The bridge between them is the **Euclidean projection** of Eqn. 6
//! ([`BlockCirculantMatrix::project_dense`]), the optimal mapping of an
//! arbitrary matrix onto the block-circulant manifold that drives ADMM's
//! second subproblem.
//!
//! ```
//! use ernn_linalg::{BlockCirculantMatrix, Matrix};
//!
//! let dense = Matrix::from_fn(8, 8, |r, c| (r * 8 + c) as f32 * 0.01);
//! let bc = BlockCirculantMatrix::project_dense(&dense, 4);
//! assert_eq!(bc.param_count(), 2 * 2 * 4); // p*q blocks, one vector each
//! let x = vec![1.0f32; 8];
//! let y_fft = bc.matvec(&x);
//! let y_direct = bc.matvec_direct(&x);
//! for (a, b) in y_fft.iter().zip(y_direct.iter()) {
//!     assert!((a - b).abs() < 1e-4);
//! }
//! ```

//! # Scratch / `_into` conventions
//!
//! Every matvec kernel has an allocating form (`matvec`, `matvec_batch`)
//! and an in-place form (`matvec_into`, `matvec_batch_into`) that writes
//! into caller-provided buffers and borrows a [`MatVecScratch`] for its
//! intermediates. The allocating forms are thin wrappers over the `_into`
//! kernels — bit-identical by construction — while the `_into` forms
//! perform **zero heap allocations** once the scratch has grown to the
//! shapes in play. `matvec_batch_into` additionally fuses a whole batch:
//! all inputs are FFT'd first and the cached weight spectra are streamed
//! once per *batch* rather than once per input (the cache-locality win
//! that makes host-side batching pay; see
//! [`BlockCirculantMatrix::matvec_batch_into`]). One [`MatVecScratch`]
//! serves every matrix in a model — keep it per worker and thread it
//! through.

mod circulant;
mod dense;
pub mod ops;
mod scratch;
mod weight;

pub use circulant::BlockCirculantMatrix;
pub use dense::Matrix;
pub use scratch::MatVecScratch;
pub use weight::{MatVec, WeightMatrix};
