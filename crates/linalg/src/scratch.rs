//! Reusable workspace for the matvec kernels.

use ernn_fft::{Complex32, RealFftScratch};

/// Caller-owned scratch space for the `_into` matvec kernels.
///
/// One scratch serves matrices of any shape and any batch size: every
/// buffer grows to the largest size seen and is then reused, so
/// steady-state [`BlockCirculantMatrix::matvec_into`](crate::BlockCirculantMatrix::matvec_into)
/// / [`matvec_batch_into`](crate::BlockCirculantMatrix::matvec_batch_into)
/// calls perform zero heap allocations. A serving worker keeps one
/// `MatVecScratch` (inside its cell/network scratch) for its whole
/// lifetime and threads it through every layer.
#[derive(Debug, Clone, Default)]
pub struct MatVecScratch {
    /// Zero-padded copy of one input block (`L_b`).
    pub(crate) padded: Vec<f32>,
    /// FFT'd input blocks, `batch · q · spectrum_len` entries.
    pub(crate) x_spectra: Vec<Complex32>,
    /// Frequency-domain accumulators, `batch · spectrum_len` entries.
    pub(crate) acc: Vec<Complex32>,
    /// Time-domain output of one block IFFT (`L_b`).
    pub(crate) block_out: Vec<f32>,
    /// Packed-buffer scratch for the real FFT itself.
    pub(crate) fft: RealFftScratch,
}

impl MatVecScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        MatVecScratch::default()
    }
}
