//! Constraint sets and their Euclidean projections.
//!
//! ADMM's second subproblem is `min_Z g(Z) + (ρ/2)‖Z − (W + U)‖²` where `g`
//! encodes membership of a constraint set; its solution is the Euclidean
//! projection of `W + U` onto the set. The paper proves the diagonal
//! averaging of Eqn. 6 is optimal for block-circulant structure and notes
//! that quantization fits the same template ("For special types of
//! combinatorial constraints, including structured matrices, quantization,
//! etc., the second subproblem can be optimally and analytically solved").

use ernn_linalg::{BlockCirculantMatrix, Matrix};

/// A combinatorial constraint set with an analytic Euclidean projection.
pub trait Constraint: std::fmt::Debug {
    /// The Euclidean projection `Π(m)` onto the constraint set.
    fn project(&self, m: &Matrix) -> Matrix;

    /// Projects a *gradient* onto the constraint set's tangent space, when
    /// the set is a linear subspace (block-circulant matrices are one).
    /// Updating with projected gradients keeps weights exactly on the
    /// manifold — the "retrain" phase of the paper's Fig. 6. Returns
    /// `None` for non-subspace sets (e.g. quantization).
    fn project_gradient(&self, g: &Matrix) -> Option<Matrix> {
        let _ = g;
        None
    }

    /// Human-readable description for reports.
    fn describe(&self) -> String;
}

/// Block-circulant structure with a fixed block size (paper Eqn. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CirculantConstraint {
    /// Block size `L_b` (power of two).
    pub block_size: usize,
}

impl CirculantConstraint {
    /// Creates the constraint.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn new(block_size: usize) -> Self {
        assert!(
            ernn_fft_is_power_of_two(block_size),
            "block size must be a power of two, got {block_size}"
        );
        CirculantConstraint { block_size }
    }
}

// Local helper to avoid a direct ernn-fft dependency for one predicate.
fn ernn_fft_is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

impl Constraint for CirculantConstraint {
    fn project(&self, m: &Matrix) -> Matrix {
        if self.block_size <= 1 {
            return m.clone();
        }
        BlockCirculantMatrix::project_dense(m, self.block_size).to_dense()
    }

    fn project_gradient(&self, g: &Matrix) -> Option<Matrix> {
        // The block-circulant matrices form a linear subspace, and the
        // orthogonal projection onto a subspace is the same diagonal
        // averaging as the point projection.
        Some(self.project(g))
    }

    fn describe(&self) -> String {
        format!("block-circulant L_b={}", self.block_size)
    }
}

/// Uniform symmetric quantization to `2^(bits−1) − 1` levels of step
/// `step` — the alternative constraint set the paper mentions. Projection
/// is round-to-nearest-level, which is the exact Euclidean minimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizeConstraint {
    /// Word length in bits (including sign).
    pub bits: u8,
    /// Quantization step between adjacent levels.
    pub step: f32,
}

impl QuantizeConstraint {
    /// Creates the constraint.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` or `step` is not positive.
    pub fn new(bits: u8, step: f32) -> Self {
        assert!(bits >= 2, "need at least a sign and one magnitude bit");
        assert!(step > 0.0, "step must be positive");
        QuantizeConstraint { bits, step }
    }
}

impl Constraint for QuantizeConstraint {
    fn project(&self, m: &Matrix) -> Matrix {
        let max_level = (1i64 << (self.bits - 1)) - 1;
        let mut out = m.clone();
        for v in out.as_mut_slice() {
            let level = (*v / self.step).round() as i64;
            let level = level.clamp(-max_level, max_level);
            *v = level as f32 * self.step;
        }
        out
    }

    fn describe(&self) -> String {
        format!("quantized {}b step {}", self.bits, self.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn circulant_projection_is_idempotent() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let m = Matrix::xavier(8, 8, &mut rng);
        let c = CirculantConstraint::new(4);
        let once = c.project(&m);
        let twice = c.project(&once);
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn circulant_projection_never_increases_distance_to_itself() {
        // Projection onto a convex-per-block linear subspace: the projected
        // point is the closest structured matrix.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let m = Matrix::xavier(8, 8, &mut rng);
        let c = CirculantConstraint::new(4);
        let p = c.project(&m);
        let d_direct: f32 = p
            .as_slice()
            .iter()
            .zip(m.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        // Any block-circulant competitor (here: the zero matrix) is at
        // least as far.
        let d_zero: f32 = m.as_slice().iter().map(|v| v * v).sum();
        assert!(d_direct <= d_zero);
    }

    #[test]
    fn block_size_one_is_identity() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let m = Matrix::xavier(5, 7, &mut rng);
        let c = CirculantConstraint::new(1);
        assert_eq!(c.project(&m), m);
    }

    #[test]
    fn quantize_projection_rounds_and_saturates() {
        let q = QuantizeConstraint::new(4, 0.25); // levels ±7 · 0.25
        let m = Matrix::from_rows(&[&[0.3, -0.12, 10.0]]);
        let p = q.project(&m);
        assert_eq!(p.row(0), &[0.25, 0.0, 1.75]);
    }

    #[test]
    fn quantize_projection_is_idempotent() {
        let q = QuantizeConstraint::new(8, 0.01);
        let m = Matrix::from_rows(&[&[0.123, -0.456]]);
        assert_eq!(q.project(&q.project(&m)), q.project(&m));
    }

    #[test]
    fn descriptions_are_informative() {
        assert!(CirculantConstraint::new(8).describe().contains('8'));
        assert!(QuantizeConstraint::new(12, 0.001).describe().contains("12"));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn circulant_rejects_bad_block() {
        let _ = CirculantConstraint::new(6);
    }
}
