//! The ADMM training loop over a stacked RNN (paper Fig. 6).

use crate::constraint::{CirculantConstraint, Constraint};
use ernn_linalg::Matrix;
use ernn_model::trainer::{train_with_hook, Sequence, TrainOptions};
use ernn_model::{BlockPolicy, NetworkGrads, Optimizer, RnnNetwork};
use rand::Rng;

/// Hyperparameters of the ADMM loop.
#[derive(Debug, Clone, Copy)]
pub struct AdmmConfig {
    /// Penalty parameter `ρ` of the augmented Lagrangian (per matrix).
    pub rho: f32,
    /// Multiplicative growth of `ρ` per outer iteration (≥ 1): a standard
    /// schedule that tightens the structure constraint as training settles.
    pub rho_growth: f32,
    /// Number of ADMM outer iterations.
    pub iterations: usize,
    /// SGD epochs per subproblem-1 solve.
    pub epochs_per_iter: usize,
    /// Epochs of constrained fine-tuning after the final projection (the
    /// "retrain" phase of Fig. 6); gradients are projected onto the
    /// circulant subspace so weights stay exactly structured.
    pub retrain_epochs: usize,
    /// Convergence threshold on the relative residual `‖W − Z‖/‖W‖`.
    pub residual_tol: f32,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            rho: 0.02,
            rho_growth: 1.5,
            iterations: 8,
            epochs_per_iter: 2,
            retrain_epochs: 2,
            residual_tol: 1e-3,
        }
    }
}

/// Statistics of one ADMM outer iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmmIterStats {
    /// Mean training loss during subproblem 1.
    pub mean_loss: f32,
    /// Relative primal residual `‖W − Z‖_F / ‖W‖_F` (max over matrices).
    pub residual: f32,
}

/// Full record of an ADMM run.
#[derive(Debug, Clone, Default)]
pub struct AdmmReport {
    /// Per-iteration statistics.
    pub iterations: Vec<AdmmIterStats>,
    /// Whether the residual tolerance was met before the iteration cap.
    pub converged: bool,
}

impl AdmmReport {
    /// Final relative residual (1.0 when no iteration ran).
    pub fn final_residual(&self) -> f32 {
        self.iterations.last().map_or(1.0, |s| s.residual)
    }
}

/// Trains the compressible weight matrices of a network onto per-matrix
/// constraint sets with ADMM.
///
/// ```no_run
/// use ernn_admm::{AdmmConfig, AdmmTrainer};
/// use ernn_model::{BlockPolicy, CellType, NetworkBuilder, Sgd};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut net = NetworkBuilder::new(CellType::Gru, 4, 3).layer_dims(&[8]).build(&mut rng);
/// let data: Vec<(Vec<Vec<f32>>, Vec<usize>)> = vec![(vec![vec![0.0; 4]; 6], vec![0; 6])];
/// let mut trainer = AdmmTrainer::new(&net, BlockPolicy::uniform(4), AdmmConfig::default());
/// let mut opt = Sgd::new(0.05).momentum(0.9).clip_norm(5.0);
/// let report = trainer.run(&mut net, &data, &mut opt, &mut rng);
/// trainer.finalize(&mut net);
/// println!("residual: {}", report.final_residual());
/// ```
#[derive(Debug)]
pub struct AdmmTrainer {
    config: AdmmConfig,
    /// One constraint per compressible weight matrix (aligned with
    /// `RnnNetwork::weight_matrices`).
    constraints: Vec<Box<dyn Constraint>>,
    /// Structured copies `Z`.
    z: Vec<Matrix>,
    /// Scaled duals `U`.
    u: Vec<Matrix>,
}

impl AdmmTrainer {
    /// Builds a trainer whose constraints follow the given block policy
    /// (per weight role), initializing `Z = Π(W)` and `U = 0`.
    pub fn new(net: &RnnNetwork<Matrix>, policy: BlockPolicy, config: AdmmConfig) -> Self {
        let mats = net.weight_matrices();
        let mut constraints: Vec<Box<dyn Constraint>> = Vec::with_capacity(mats.len());
        let mut z = Vec::with_capacity(mats.len());
        let mut u = Vec::with_capacity(mats.len());
        for (_, role, m) in &mats {
            let block = policy.for_role(*role);
            let c = CirculantConstraint::new(block.max(1));
            z.push(c.project(m));
            u.push(Matrix::zeros(m.rows(), m.cols()));
            constraints.push(Box::new(c));
        }
        AdmmTrainer {
            config,
            constraints,
            z,
            u,
        }
    }

    /// Builds a trainer with one block policy per stacked layer — the
    /// granularity of the paper's Table I (e.g. block sizes "4-8" for a
    /// two-layer model).
    ///
    /// # Panics
    ///
    /// Panics if `policies.len()` differs from the network's layer count.
    pub fn with_layer_policies(
        net: &RnnNetwork<Matrix>,
        policies: &[BlockPolicy],
        config: AdmmConfig,
    ) -> Self {
        assert_eq!(
            policies.len(),
            net.num_layers(),
            "need one block policy per layer"
        );
        let layer_of = net.weight_layer_indices();
        let constraints: Vec<Box<dyn Constraint>> = net
            .weight_matrices()
            .iter()
            .zip(layer_of.iter())
            .map(|((_, role, _), &layer)| {
                let block = policies[layer].for_role(*role).max(1);
                Box::new(CirculantConstraint::new(block)) as Box<dyn Constraint>
            })
            .collect();
        AdmmTrainer::with_constraints(net, constraints, config)
    }

    /// Builds a trainer with explicit per-matrix constraints (advanced use,
    /// e.g. mixing circulant and quantization sets).
    ///
    /// # Panics
    ///
    /// Panics if the constraint count differs from the network's
    /// compressible-matrix count.
    pub fn with_constraints(
        net: &RnnNetwork<Matrix>,
        constraints: Vec<Box<dyn Constraint>>,
        config: AdmmConfig,
    ) -> Self {
        let mats = net.weight_matrices();
        assert_eq!(
            constraints.len(),
            mats.len(),
            "need one constraint per compressible matrix ({} != {})",
            constraints.len(),
            mats.len()
        );
        let z: Vec<Matrix> = mats
            .iter()
            .zip(&constraints)
            .map(|((_, _, m), c)| c.project(m))
            .collect();
        let u = mats
            .iter()
            .map(|(_, _, m)| Matrix::zeros(m.rows(), m.cols()))
            .collect();
        AdmmTrainer {
            config,
            constraints,
            z,
            u,
        }
    }

    /// Relative primal residual `max_i ‖W_i − Z_i‖_F / ‖W_i‖_F`.
    pub fn residual(&self, net: &RnnNetwork<Matrix>) -> f32 {
        let mats = net.weight_matrices();
        let mut worst = 0.0f32;
        for ((_, _, w), z) in mats.iter().zip(&self.z) {
            let mut diff = (*w).clone();
            diff.axpy(-1.0, z);
            let denom = w.frobenius_norm().max(1e-12);
            worst = worst.max(diff.frobenius_norm() / denom);
        }
        worst
    }

    /// Runs the ADMM loop (Fig. 6): alternating subproblem-1 SGD (with the
    /// proximal gradient hook), subproblem-2 projection, and dual updates.
    pub fn run(
        &mut self,
        net: &mut RnnNetwork<Matrix>,
        data: &[Sequence],
        optimizer: &mut dyn Optimizer,
        rng: &mut impl Rng,
    ) -> AdmmReport {
        let mut report = AdmmReport::default();
        let mut rho = self.config.rho;
        for _iter in 0..self.config.iterations {
            // Subproblem 1: SGD on f(W) + (ρ/2)‖W − Z + U‖².
            let z = &self.z;
            let u = &self.u;
            let stats = train_with_hook(
                net,
                data,
                TrainOptions {
                    epochs: self.config.epochs_per_iter,
                    lr_decay: 1.0,
                    shuffle: true,
                },
                optimizer,
                rng,
                |net_ref: &RnnNetwork<Matrix>, grads: &mut NetworkGrads| {
                    let mats = net_ref.weight_matrices();
                    let g = grads.weight_matrices_mut();
                    for (((_, _, w), gw), (zi, ui)) in
                        mats.iter().zip(g).zip(z.iter().zip(u.iter()))
                    {
                        // ∇ of (ρ/2)‖W − Z + U‖² = ρ(W − Z + U).
                        gw.axpy(rho, w);
                        gw.axpy(-rho, zi);
                        gw.axpy(rho, ui);
                    }
                },
            );

            // Subproblem 2 + dual update.
            {
                let mats = net.weight_matrices_mut();
                for (i, w) in mats.into_iter().enumerate() {
                    let mut wu = w.clone();
                    wu.axpy(1.0, &self.u[i]);
                    self.z[i] = self.constraints[i].project(&wu);
                    // U += W − Z.
                    self.u[i].axpy(1.0, w);
                    self.u[i].axpy(-1.0, &self.z[i]);
                }
            }

            let residual = self.residual(net);
            report.iterations.push(AdmmIterStats {
                mean_loss: stats.last().map_or(f32::NAN, |s| s.mean_loss),
                residual,
            });
            if residual < self.config.residual_tol {
                report.converged = true;
                break;
            }
            rho *= self.config.rho_growth.max(1.0);
        }
        report
    }

    /// The whole Fig.-6 compression recipe in one call: ADMM iterations
    /// ([`Self::run`]), hard projection onto the constraint sets
    /// ([`Self::finalize`]), then `retrain_epochs` of constrained
    /// fine-tuning ([`Self::retrain_constrained`]) with `retrain_opt`.
    /// Exactly the sequence the flow oracle, the quickstart and the
    /// lifecycle pipeline previously re-chained by hand — results are
    /// bit-identical to calling the three steps yourself.
    pub fn fit(
        &mut self,
        net: &mut RnnNetwork<Matrix>,
        data: &[Sequence],
        optimizer: &mut dyn Optimizer,
        retrain_opt: &mut dyn Optimizer,
        rng: &mut impl Rng,
    ) -> AdmmReport {
        let report = self.run(net, data, optimizer, rng);
        self.finalize(net);
        self.retrain_constrained(net, data, self.config.retrain_epochs, retrain_opt, rng);
        report
    }

    /// Constrained fine-tuning after [`Self::finalize`]: trains with
    /// gradients projected onto each constraint's tangent subspace so the
    /// weights remain exactly structured — the "retrain to obtain the
    /// block circulant model" phase of Fig. 6. Constraints without a
    /// subspace structure keep their raw gradient and are re-projected
    /// after training.
    pub fn retrain_constrained(
        &self,
        net: &mut RnnNetwork<Matrix>,
        data: &[Sequence],
        epochs: usize,
        optimizer: &mut dyn Optimizer,
        rng: &mut impl Rng,
    ) {
        if epochs == 0 {
            return;
        }
        let constraints = &self.constraints;
        train_with_hook(
            net,
            data,
            TrainOptions {
                epochs,
                lr_decay: 1.0,
                shuffle: true,
            },
            optimizer,
            rng,
            |_net: &RnnNetwork<Matrix>, grads: &mut NetworkGrads| {
                for (gw, c) in grads.weight_matrices_mut().into_iter().zip(constraints) {
                    if let Some(projected) = c.project_gradient(gw) {
                        *gw = projected;
                    }
                }
            },
        );
        // Momentum of non-subspace constraints may have drifted; snap back.
        self.finalize(net);
    }

    /// Snaps the weights exactly onto the constraint sets (`W ← Π(W)`),
    /// making the subsequent block-circulant extraction lossless. Call
    /// after [`Self::run`].
    pub fn finalize(&self, net: &mut RnnNetwork<Matrix>) {
        for (i, w) in net.weight_matrices_mut().into_iter().enumerate() {
            *w = self.constraints[i].project(w);
        }
    }

    /// Descriptions of the per-matrix constraints (for reports).
    pub fn constraint_descriptions(&self) -> Vec<String> {
        self.constraints.iter().map(|c| c.describe()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ernn_model::{compress_network, CellType, NetworkBuilder, Sgd};
    use rand::SeedableRng;

    fn toy_data(n_seqs: usize, seq_len: usize, seed: u64) -> Vec<Sequence> {
        use rand::Rng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n_seqs)
            .map(|_| {
                let mut running = 0.0f32;
                let mut frames = Vec::new();
                let mut labels = Vec::new();
                for _ in 0..seq_len {
                    let v: f32 = rng.gen_range(-1.0..1.0);
                    running += v;
                    frames.push(vec![v, rng.gen_range(-1.0..1.0)]);
                    labels.push(usize::from(running > 0.0));
                }
                (frames, labels)
            })
            .collect()
    }

    #[test]
    fn residual_shrinks_over_iterations() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
        let mut net = NetworkBuilder::new(CellType::Gru, 2, 2)
            .layer_dims(&[8])
            .build(&mut rng);
        let data = toy_data(12, 10, 11);
        // Pretrain densely first (Fig. 6 starts from a pretrained model).
        let mut opt = Sgd::new(0.1).momentum(0.9).clip_norm(5.0);
        ernn_model::trainer::train(
            &mut net,
            &data,
            TrainOptions {
                epochs: 4,
                ..TrainOptions::default()
            },
            &mut opt,
            &mut rng,
        );
        let mut trainer = AdmmTrainer::new(
            &net,
            BlockPolicy::uniform(4),
            AdmmConfig {
                rho: 0.05,
                iterations: 6,
                epochs_per_iter: 2,
                residual_tol: 1e-4,
                ..AdmmConfig::default()
            },
        );
        let first_residual = trainer.residual(&net);
        let report = trainer.run(&mut net, &data, &mut opt, &mut rng);
        assert!(!report.iterations.is_empty());
        assert!(
            report.final_residual() < first_residual,
            "residual did not shrink: {} -> {}",
            first_residual,
            report.final_residual()
        );
    }

    #[test]
    fn finalize_makes_compression_lossless() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(20);
        let mut net = NetworkBuilder::new(CellType::Lstm, 2, 2)
            .layer_dims(&[8])
            .build(&mut rng);
        let data = toy_data(8, 8, 21);
        let mut opt = Sgd::new(0.05).momentum(0.9).clip_norm(5.0);
        let mut trainer = AdmmTrainer::new(
            &net,
            BlockPolicy::uniform(4),
            AdmmConfig {
                rho: 0.05,
                iterations: 3,
                epochs_per_iter: 1,
                residual_tol: 1e-6,
                ..AdmmConfig::default()
            },
        );
        trainer.run(&mut net, &data, &mut opt, &mut rng);
        trainer.finalize(&mut net);
        // After finalize the weights are exactly on the constraint set:
        // re-projection is the identity.
        for (_, _, w) in net.weight_matrices() {
            let reproj = CirculantConstraint::new(4).project(w);
            for (a, b) in w.as_slice().iter().zip(reproj.as_slice()) {
                assert!((a - b).abs() < 1e-6, "finalize must land on the manifold");
            }
        }

        let compressed = compress_network(&net, BlockPolicy::uniform(4));
        let frames = vec![vec![0.3f32, -0.1]; 5];
        let dense_logits = net.forward_logits(&frames);
        let comp_logits = compressed.forward_logits(&frames);
        for (a, b) in dense_logits
            .iter()
            .flatten()
            .zip(comp_logits.iter().flatten())
        {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn admm_preserves_task_accuracy_better_than_naive_projection() {
        // The paper's central claim for ADMM: training into the structure
        // beats projecting a trained model. Compare frame accuracy after
        // (a) hard projection of a dense model and (b) ADMM + projection.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(30);
        let mut net = NetworkBuilder::new(CellType::Gru, 2, 2)
            .layer_dims(&[12])
            .build(&mut rng);
        let train_data = toy_data(24, 12, 31);
        let test_data = toy_data(8, 12, 32);
        let mut opt = Sgd::new(0.1).momentum(0.9).clip_norm(5.0);
        ernn_model::trainer::train(
            &mut net,
            &train_data,
            TrainOptions {
                epochs: 8,
                lr_decay: 0.9,
                ..TrainOptions::default()
            },
            &mut opt,
            &mut rng,
        );

        // (a) naive: project the dense model directly.
        let mut naive = net.clone();
        let naive_trainer =
            AdmmTrainer::new(&naive, BlockPolicy::uniform(8), AdmmConfig::default());
        naive_trainer.finalize(&mut naive);
        let naive_acc = ernn_model::trainer::evaluate_set(&naive, &test_data).frame_accuracy;

        // (b) the full ADMM pipeline of Fig. 6: ADMM iterations, hard
        // projection, constrained retraining.
        let mut admm_net = net.clone();
        let mut opt2 = Sgd::new(0.05).momentum(0.9).clip_norm(5.0);
        let cfg = AdmmConfig {
            rho: 0.05,
            rho_growth: 1.6,
            iterations: 5,
            epochs_per_iter: 2,
            retrain_epochs: 3,
            residual_tol: 1e-5,
        };
        let mut trainer = AdmmTrainer::new(&admm_net, BlockPolicy::uniform(8), cfg);
        trainer.run(&mut admm_net, &train_data, &mut opt2, &mut rng);
        trainer.finalize(&mut admm_net);
        let mut opt3 = Sgd::new(0.05).momentum(0.9).clip_norm(5.0);
        trainer.retrain_constrained(
            &mut admm_net,
            &train_data,
            cfg.retrain_epochs,
            &mut opt3,
            &mut rng,
        );
        let admm_acc = ernn_model::trainer::evaluate_set(&admm_net, &test_data).frame_accuracy;

        assert!(
            admm_acc >= naive_acc - 0.02,
            "ADMM ({admm_acc}) should not lose to naive projection ({naive_acc})"
        );
    }

    #[test]
    fn constraint_descriptions_cover_all_matrices() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(40);
        let net = NetworkBuilder::new(CellType::Lstm, 2, 2)
            .layer_dims(&[8, 8])
            .build(&mut rng);
        let trainer = AdmmTrainer::new(&net, BlockPolicy::uniform(4), AdmmConfig::default());
        assert_eq!(
            trainer.constraint_descriptions().len(),
            net.weight_matrices().len()
        );
    }

    #[test]
    #[should_panic(expected = "one constraint per")]
    fn with_constraints_validates_count() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(50);
        let net = NetworkBuilder::new(CellType::Gru, 2, 2)
            .layer_dims(&[4])
            .build(&mut rng);
        let _ = AdmmTrainer::with_constraints(&net, vec![], AdmmConfig::default());
    }
}
