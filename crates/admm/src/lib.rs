//! ADMM-based structured training (paper Sec. III-B, Figs. 5 & 6).
//!
//! The block-circulant constraint is combinatorial, so E-RNN trains with
//! the alternating direction method of multipliers. Per weight matrix `W`
//! the algorithm keeps an auxiliary `Z` (the structured copy) and a scaled
//! dual `U`, iterating:
//!
//! 1. **Subproblem 1** — minimize `f(W) + (ρ/2)·‖W − Z + U‖²_F` by ordinary
//!    SGD; the quadratic term enters as an extra gradient `ρ(W − Z + U)`.
//! 2. **Subproblem 2** — `Z ← Π(W + U)`, the Euclidean projection onto the
//!    constraint set. For block-circulant structure the optimal projection
//!    is the diagonal averaging of Eqn. 6 (implemented in `ernn-linalg`);
//!    quantization is supported as an alternative constraint set, which the
//!    paper notes ADMM handles in the same framework.
//! 3. **Dual update** — `U ← U + W − Z`.
//!
//! On convergence `W ≈ Z` and [`AdmmTrainer::finalize`] snaps the weights
//! exactly onto the constraint set (the "retrain to obtain the block
//! circulant model" box of Fig. 6), after which the compression in
//! `ernn-model` is lossless.

mod constraint;
mod trainer;

pub use constraint::{CirculantConstraint, Constraint, QuantizeConstraint};
pub use trainer::{AdmmConfig, AdmmIterStats, AdmmReport, AdmmTrainer};
