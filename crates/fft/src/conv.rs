//! Circular convolution and correlation.
//!
//! A circulant matrix–vector product is a circular correlation of the
//! defining vector with the input (paper Eqn. 4 with the first-row
//! convention of Fig. 4). This module provides both the FFT-accelerated
//! versions and O(N²) reference implementations used for validation.

use crate::{is_power_of_two, real::spectrum_conj_mul, real::spectrum_mul, RealFft};

/// Circular convolution `y[r] = Σ_c w[(r - c) mod N] · x[c]` via FFT.
///
/// # Panics
///
/// Panics if the slices differ in length or the length is not a power of
/// two.
pub fn circular_convolve(w: &[f32], x: &[f32]) -> Vec<f32> {
    assert_eq!(w.len(), x.len(), "operands must have equal length");
    assert!(is_power_of_two(w.len()), "length must be a power of two");
    let rfft = RealFft::new(w.len());
    let spec = spectrum_mul(&rfft.forward(w), &rfft.forward(x));
    rfft.inverse(&spec)
}

/// Circular cross-correlation `y[r] = Σ_c w[(c - r) mod N] · x[c]` via FFT.
///
/// This is the operation performed by a circulant matrix whose *rows* are
/// successive right-rotations of `w` — the convention the paper illustrates
/// in Fig. 4 — hence the conjugation in the frequency domain.
///
/// # Panics
///
/// Panics if the slices differ in length or the length is not a power of
/// two.
pub fn circular_correlate(w: &[f32], x: &[f32]) -> Vec<f32> {
    assert_eq!(w.len(), x.len(), "operands must have equal length");
    assert!(is_power_of_two(w.len()), "length must be a power of two");
    let rfft = RealFft::new(w.len());
    let spec = spectrum_conj_mul(&rfft.forward(w), &rfft.forward(x));
    rfft.inverse(&spec)
}

/// Direct O(N²) circular convolution, for any length.
pub fn circular_convolve_direct(w: &[f32], x: &[f32]) -> Vec<f32> {
    assert_eq!(w.len(), x.len(), "operands must have equal length");
    let n = w.len();
    (0..n)
        .map(|r| (0..n).map(|c| w[(r + n - c) % n] * x[c]).sum())
        .collect()
}

/// Direct O(N²) circular cross-correlation, for any length.
pub fn circular_correlate_direct(w: &[f32], x: &[f32]) -> Vec<f32> {
    assert_eq!(w.len(), x.len(), "operands must have equal length");
    let n = w.len();
    (0..n)
        .map(|r| (0..n).map(|c| w[(c + n - r) % n] * x[c]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn convolution_with_impulse_is_identity() {
        let mut delta = vec![0.0f32; 8];
        delta[0] = 1.0;
        let x: Vec<f32> = (0..8).map(|i| i as f32 - 3.0).collect();
        let y = circular_convolve(&delta, &x);
        for (a, b) in y.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn convolution_with_shifted_impulse_rotates() {
        let mut delta = vec![0.0f32; 8];
        delta[1] = 1.0; // shift by one
        let x: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let y = circular_convolve(&delta, &x);
        for r in 0..8 {
            assert!((y[r] - x[(r + 8 - 1) % 8]).abs() < 1e-4, "r={r}");
        }
    }

    #[test]
    fn correlation_with_impulse_is_identity() {
        let mut delta = vec![0.0f32; 8];
        delta[0] = 1.0;
        let x: Vec<f32> = (0..8).map(|i| (i as f32).cos()).collect();
        let y = circular_correlate(&delta, &x);
        for (a, b) in y.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn matches_paper_figure_4_example() {
        // Fig. 4 of the paper: circulant with first row
        // [1.14, -0.69, 0.83, -2.26] times x = [-1.11, 0.95, 0.39, 0.78].
        let w = [1.14f32, -0.69, 0.83, -2.26];
        let x = [-1.11f32, 0.95, 0.39, 0.78];
        // Row r of the matrix is w rotated right by r (Fig. 4 layout), so the
        // product is the circular correlation.
        let expected = {
            let rows = [
                [1.14f32, -0.69, 0.83, -2.26],
                [-2.26, 1.14, -0.69, 0.83],
                [0.83, -2.26, 1.14, -0.69],
                [-0.69, 0.83, -2.26, 1.14],
            ];
            rows.iter()
                .map(|row| row.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f32>())
                .collect::<Vec<_>>()
        };
        let got = circular_correlate(&w, &x);
        for (a, b) in got.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-3, "{got:?} vs {expected:?}");
        }
    }

    proptest! {
        #[test]
        fn fft_convolution_matches_direct(log_n in 0u32..8, seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let n = 1usize << log_n;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let w: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let fast = circular_convolve(&w, &x);
            let slow = circular_convolve_direct(&w, &x);
            for (a, b) in fast.iter().zip(slow.iter()) {
                prop_assert!((a - b).abs() < 1e-2 * (1.0 + b.abs()));
            }
        }

        #[test]
        fn fft_correlation_matches_direct(log_n in 0u32..8, seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let n = 1usize << log_n;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let w: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let fast = circular_correlate(&w, &x);
            let slow = circular_correlate_direct(&w, &x);
            for (a, b) in fast.iter().zip(slow.iter()) {
                prop_assert!((a - b).abs() < 1e-2 * (1.0 + b.abs()));
            }
        }

        #[test]
        fn convolution_commutes(log_n in 1u32..7, seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let n = 1usize << log_n;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let w: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let wx = circular_convolve(&w, &x);
            let xw = circular_convolve(&x, &w);
            for (a, b) in wx.iter().zip(xw.iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
