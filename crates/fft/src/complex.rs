//! Minimal single-precision complex arithmetic.
//!
//! A dedicated type (rather than `(f32, f32)` tuples) keeps call sites
//! legible and lets us implement the exact operation set the E-RNN PE
//! datapath uses: multiply, conjugate, add/sub and scaling (Fig. 10 of the
//! paper: "two FFT operators, M multipliers, a conjugation operator ...").

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f32` components.
///
/// ```
/// use ernn_fft::Complex32;
/// let a = Complex32::new(1.0, 2.0);
/// let b = Complex32::new(3.0, -1.0);
/// let c = a * b;
/// assert_eq!(c, Complex32::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex32 = Complex32 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f32) -> Self {
        Complex32 { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex32::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f32) -> Self {
        Complex32::new(self.re * s, self.im * s)
    }

    /// `e^{iθ}` for a phase in radians, computed in `f64` for accuracy.
    ///
    /// Twiddle-factor tables are generated through this so that repeated
    /// angle accumulation does not erode precision.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex32::new(theta.cos() as f32, theta.sin() as f32)
    }

    /// Multiply by `i` without a full complex multiplication.
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex32::new(-self.im, self.re)
    }

    /// Multiply by `-i` without a full complex multiplication.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        Complex32::new(self.im, -self.re)
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex32) {
        *self = *self * rhs;
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Complex32 {
        Complex32::new(-self.re, -self.im)
    }
}

impl Sum for Complex32 {
    fn sum<I: Iterator<Item = Complex32>>(iter: I) -> Complex32 {
        iter.fold(Complex32::ZERO, |acc, x| acc + x)
    }
}

impl From<f32> for Complex32 {
    fn from(re: f32) -> Self {
        Complex32::from_real(re)
    }
}

impl fmt::Display for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex32::new(2.0, 3.0);
        let b = Complex32::new(-1.0, 4.0);
        let c = a * b;
        assert_eq!(c.re, -2.0 - 3.0 * 4.0);
        assert_eq!(c.im, 2.0 * 4.0 - 3.0);
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let a = Complex32::new(1.5, -2.5);
        assert_eq!(a.conj(), Complex32::new(1.5, 2.5));
        assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn mul_i_shortcuts_match_full_multiplication() {
        let a = Complex32::new(0.3, -0.7);
        assert_eq!(a.mul_i(), a * Complex32::I);
        assert_eq!(a.mul_neg_i(), a * Complex32::new(0.0, -1.0));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = 2.0 * std::f64::consts::PI * (k as f64) / 16.0;
            let w = Complex32::cis(theta);
            assert!((w.abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sum_accumulates() {
        let xs = [
            Complex32::new(1.0, 1.0),
            Complex32::new(2.0, -1.0),
            Complex32::new(-0.5, 0.5),
        ];
        let s: Complex32 = xs.iter().copied().sum();
        assert_eq!(s, Complex32::new(2.5, 0.5));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex32::new(1.0, -2.0).to_string(), "1-2i");
    }
}
