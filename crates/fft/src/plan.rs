//! Iterative radix-2 Cooley–Tukey FFT with a reusable plan.
//!
//! A [`FftPlan`] owns the twiddle-factor table and bit-reversal permutation
//! for one transform size, mirroring how the E-RNN hardware pre-computes and
//! stores `FFT(w_ij)` in BRAM (Sec. V-A1 of the paper): the expensive
//! set-up is paid once, each invocation is then multiplication/addition work
//! only.

use crate::{is_power_of_two, Complex32};

/// A reusable radix-2 decimation-in-time FFT plan for one size.
///
/// The forward transform computes `X[k] = Σ_n x[n]·e^{-2πikn/N}` in place;
/// the inverse applies the conjugate transform and the `1/N` scaling so that
/// `inverse(forward(x)) == x` up to floating-point rounding.
///
/// ```
/// use ernn_fft::{FftPlan, Complex32};
/// let plan = FftPlan::new(4);
/// let mut x = vec![
///     Complex32::new(1.0, 0.0),
///     Complex32::new(0.0, 0.0),
///     Complex32::new(0.0, 0.0),
///     Complex32::new(0.0, 0.0),
/// ];
/// plan.forward(&mut x);
/// // The DFT of a unit impulse is flat.
/// for bin in &x {
///     assert!((bin.re - 1.0).abs() < 1e-6 && bin.im.abs() < 1e-6);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    size: usize,
    /// Twiddles `e^{-2πik/N}` for `k in 0..N/2` (forward direction).
    twiddles: Vec<Complex32>,
    /// Bit-reversal permutation indices.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn new(size: usize) -> Self {
        assert!(
            is_power_of_two(size),
            "FFT size must be a power of two, got {size}"
        );
        let mut twiddles = Vec::with_capacity(size / 2);
        for k in 0..size / 2 {
            let theta = -2.0 * std::f64::consts::PI * (k as f64) / (size as f64);
            twiddles.push(Complex32::cis(theta));
        }
        let bits = size.trailing_zeros();
        let bitrev = (0..size as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .map(|i| if size == 1 { 0 } else { i })
            .collect();
        crate::stats::count_plan();
        FftPlan {
            size,
            twiddles,
            bitrev,
        }
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.size()`.
    pub fn forward(&self, buf: &mut [Complex32]) {
        assert_eq!(buf.len(), self.size, "buffer length must match plan size");
        if self.size <= 1 {
            return;
        }
        self.permute(buf);
        self.butterflies(buf, false);
    }

    /// In-place inverse FFT including the `1/N` normalization.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.size()`.
    pub fn inverse(&self, buf: &mut [Complex32]) {
        assert_eq!(buf.len(), self.size, "buffer length must match plan size");
        if self.size <= 1 {
            return;
        }
        self.permute(buf);
        self.butterflies(buf, true);
        let scale = 1.0 / self.size as f32;
        for v in buf.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// Forward FFT of a real signal, convenience wrapper producing the full
    /// complex spectrum. Prefer [`crate::RealFft`] when only the unique half
    /// spectrum is needed.
    pub fn forward_real(&self, input: &[f32]) -> Vec<Complex32> {
        assert_eq!(input.len(), self.size, "input length must match plan size");
        let mut buf: Vec<Complex32> = input.iter().map(|&x| Complex32::from_real(x)).collect();
        self.forward(&mut buf);
        buf
    }

    fn permute(&self, buf: &mut [Complex32]) {
        for (i, &j) in self.bitrev.iter().enumerate() {
            let j = j as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
    }

    fn butterflies(&self, buf: &mut [Complex32], inverse: bool) {
        let n = self.size;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let w = if inverse { w.conj() } else { w };
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

/// Reference O(N²) DFT used to validate the fast implementation in tests.
///
/// Exposed publicly so downstream crates' property tests can cross-check any
/// FFT-based computation against the definition.
pub fn dft_naive(input: &[Complex32]) -> Vec<Complex32> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex32::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * Complex32::cis(theta);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Complex32, b: Complex32, tol: f32) -> bool {
        (a.re - b.re).abs() <= tol && (a.im - b.im).abs() <= tol
    }

    #[test]
    fn size_one_is_identity() {
        let plan = FftPlan::new(1);
        let mut buf = vec![Complex32::new(3.0, -2.0)];
        plan.forward(&mut buf);
        assert_eq!(buf[0], Complex32::new(3.0, -2.0));
        plan.inverse(&mut buf);
        assert_eq!(buf[0], Complex32::new(3.0, -2.0));
    }

    #[test]
    fn size_two_matches_hand_computation() {
        let plan = FftPlan::new(2);
        let mut buf = vec![Complex32::from_real(1.0), Complex32::from_real(2.0)];
        plan.forward(&mut buf);
        assert!(close(buf[0], Complex32::from_real(3.0), 1e-6));
        assert!(close(buf[1], Complex32::from_real(-1.0), 1e-6));
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[2usize, 4, 8, 16, 32, 64] {
            let plan = FftPlan::new(n);
            let input: Vec<Complex32> = (0..n)
                .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.91).cos()))
                .collect();
            let expected = dft_naive(&input);
            let mut buf = input.clone();
            plan.forward(&mut buf);
            for (a, b) in buf.iter().zip(expected.iter()) {
                assert!(close(*a, *b, 1e-3), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let plan = FftPlan::new(n);
        let input: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 1.3).sin(), 0.0))
            .collect();
        let time_energy: f32 = input.iter().map(|x| x.norm_sqr()).sum();
        let mut buf = input;
        plan.forward(&mut buf);
        let freq_energy: f32 = buf.iter().map(|x| x.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() < 1e-3 * time_energy.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn rejects_wrong_buffer_length() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex32::ZERO; 4];
        plan.forward(&mut buf);
    }

    proptest! {
        #[test]
        fn roundtrip_recovers_input(
            log_n in 0u32..8,
            seed in any::<u64>(),
        ) {
            let n = 1usize << log_n;
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let input: Vec<Complex32> = (0..n)
                .map(|_| Complex32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let plan = FftPlan::new(n);
            let mut buf = input.clone();
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            for (a, b) in buf.iter().zip(input.iter()) {
                prop_assert!(close(*a, *b, 1e-3));
            }
        }

        #[test]
        fn linearity_holds(seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let n = 32;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let a: Vec<Complex32> = (0..n)
                .map(|_| Complex32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let b: Vec<Complex32> = (0..n)
                .map(|_| Complex32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let plan = FftPlan::new(n);
            let mut sum: Vec<Complex32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
            plan.forward(&mut sum);
            let mut fa = a.clone();
            let mut fb = b.clone();
            plan.forward(&mut fa);
            plan.forward(&mut fb);
            for i in 0..n {
                prop_assert!(close(sum[i], fa[i] + fb[i], 1e-3));
            }
        }
    }
}
