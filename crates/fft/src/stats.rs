//! Process-wide FFT invocation counters.
//!
//! The serving runtime's weight-spectrum cache (see `ernn-serve`) claims
//! that block-circulant weight FFTs run once per model load rather than
//! once per request. These counters make that claim *observable*: plan
//! construction and forward/inverse transform invocations are counted
//! globally (relaxed atomics, negligible cost), so a test or a demo can
//! snapshot the counters around a serving run and show that only
//! input-side transforms grow with request count.
//!
//! Counters are process-global and monotonically increasing; consumers
//! should compare [`FftStats`] snapshots rather than absolute values, and
//! tests that assert exact deltas must not run concurrently with other
//! FFT-using tests in the same process.

use std::sync::atomic::{AtomicU64, Ordering};

static PLANS_CREATED: AtomicU64 = AtomicU64::new(0);
static FORWARD_TRANSFORMS: AtomicU64 = AtomicU64::new(0);
static INVERSE_TRANSFORMS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide FFT counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftStats {
    /// [`crate::FftPlan`] / [`crate::RealFft`] constructions.
    pub plans_created: u64,
    /// Real-input forward transforms ([`crate::RealFft::forward`]).
    pub forward_transforms: u64,
    /// Real-output inverse transforms ([`crate::RealFft::inverse`]).
    pub inverse_transforms: u64,
}

impl FftStats {
    /// Component-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &FftStats) -> FftStats {
        FftStats {
            plans_created: self.plans_created - earlier.plans_created,
            forward_transforms: self.forward_transforms - earlier.forward_transforms,
            inverse_transforms: self.inverse_transforms - earlier.inverse_transforms,
        }
    }
}

/// Takes a snapshot of the counters.
pub fn snapshot() -> FftStats {
    FftStats {
        plans_created: PLANS_CREATED.load(Ordering::Relaxed),
        forward_transforms: FORWARD_TRANSFORMS.load(Ordering::Relaxed),
        inverse_transforms: INVERSE_TRANSFORMS.load(Ordering::Relaxed),
    }
}

pub(crate) fn count_plan() {
    PLANS_CREATED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_forward() {
    FORWARD_TRANSFORMS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_inverse() {
    INVERSE_TRANSFORMS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RealFft;

    #[test]
    fn counters_track_plan_and_transform_activity() {
        // Other tests may run concurrently in this process, so assert
        // monotone growth by at-least the local activity, not equality.
        let before = snapshot();
        let rfft = RealFft::new(16);
        let spec = rfft.forward(&[0.5f32; 16]);
        let _ = rfft.inverse(&spec);
        let delta = snapshot().since(&before);
        assert!(delta.plans_created >= 1, "{delta:?}");
        assert!(delta.forward_transforms >= 1, "{delta:?}");
        assert!(delta.inverse_transforms >= 1, "{delta:?}");
    }
}
