//! Process-wide FFT invocation counters.
//!
//! The serving runtime's weight-spectrum cache (see `ernn-serve`) claims
//! that block-circulant weight FFTs run once per model load rather than
//! once per request. These counters make that claim *observable*: plan
//! construction and forward/inverse transform invocations are counted
//! globally (relaxed atomics, negligible cost), so a test or a demo can
//! snapshot the counters around a serving run and show that only
//! input-side transforms grow with request count.
//!
//! Counters are process-global and monotonically increasing; consumers
//! should compare [`FftStats`] snapshots rather than absolute values, and
//! tests that assert exact deltas must not run concurrently with other
//! FFT-using tests in the same process.
//!
//! Every increment is mirrored into a **thread-local** counter set
//! ([`thread_snapshot`]). Unlike the globals, a thread-local delta is
//! immune to concurrent FFT users on other threads, so a parallel host
//! executor (see `ernn-serve`) can attribute FFT work to individual
//! workers exactly: the per-worker deltas always sum to the global delta.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static PLANS_CREATED: AtomicU64 = AtomicU64::new(0);
static PLAN_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static FORWARD_TRANSFORMS: AtomicU64 = AtomicU64::new(0);
static INVERSE_TRANSFORMS: AtomicU64 = AtomicU64::new(0);
static SPECTRUM_BLOCK_READS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_PLANS_CREATED: Cell<u64> = const { Cell::new(0) };
    static TL_PLAN_CACHE_HITS: Cell<u64> = const { Cell::new(0) };
    static TL_FORWARD_TRANSFORMS: Cell<u64> = const { Cell::new(0) };
    static TL_INVERSE_TRANSFORMS: Cell<u64> = const { Cell::new(0) };
    static TL_SPECTRUM_BLOCK_READS: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of the process-wide FFT counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FftStats {
    /// [`crate::FftPlan`] / [`crate::RealFft`] constructions.
    pub plans_created: u64,
    /// [`crate::RealFft::shared`] lookups satisfied from the process-wide
    /// plan cache (no twiddle recomputation).
    pub plan_cache_hits: u64,
    /// Real-input forward transforms ([`crate::RealFft::forward`]).
    pub forward_transforms: u64,
    /// Real-output inverse transforms ([`crate::RealFft::inverse`]).
    pub inverse_transforms: u64,
    /// Cached weight-spectrum blocks streamed by block-circulant matvec
    /// kernels (one count per `(i, j)` block visit, however many batch
    /// inputs that visit serves — see
    /// [`count_spectrum_block_reads`]). A batch-fused matvec reads `p·q`
    /// blocks per *batch*; B sequential matvecs read `B·p·q`.
    pub spectrum_block_reads: u64,
}

impl FftStats {
    /// Component-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &FftStats) -> FftStats {
        FftStats {
            plans_created: self.plans_created - earlier.plans_created,
            plan_cache_hits: self.plan_cache_hits - earlier.plan_cache_hits,
            forward_transforms: self.forward_transforms - earlier.forward_transforms,
            inverse_transforms: self.inverse_transforms - earlier.inverse_transforms,
            spectrum_block_reads: self.spectrum_block_reads - earlier.spectrum_block_reads,
        }
    }

    /// Component-wise sum (used to fold per-worker deltas back together).
    pub fn plus(&self, other: &FftStats) -> FftStats {
        FftStats {
            plans_created: self.plans_created + other.plans_created,
            plan_cache_hits: self.plan_cache_hits + other.plan_cache_hits,
            forward_transforms: self.forward_transforms + other.forward_transforms,
            inverse_transforms: self.inverse_transforms + other.inverse_transforms,
            spectrum_block_reads: self.spectrum_block_reads + other.spectrum_block_reads,
        }
    }

    /// Total transform invocations (forward + inverse; plans excluded).
    pub fn transforms(&self) -> u64 {
        self.forward_transforms + self.inverse_transforms
    }
}

/// Takes a snapshot of the counters.
pub fn snapshot() -> FftStats {
    FftStats {
        plans_created: PLANS_CREATED.load(Ordering::Relaxed),
        plan_cache_hits: PLAN_CACHE_HITS.load(Ordering::Relaxed),
        forward_transforms: FORWARD_TRANSFORMS.load(Ordering::Relaxed),
        inverse_transforms: INVERSE_TRANSFORMS.load(Ordering::Relaxed),
        spectrum_block_reads: SPECTRUM_BLOCK_READS.load(Ordering::Relaxed),
    }
}

/// Takes a snapshot of the *calling thread's* counters.
///
/// Deltas between two `thread_snapshot` calls on the same thread count
/// exactly the FFT work that thread performed in between, regardless of
/// what other threads are doing — so exact-delta assertions are safe even
/// in multi-threaded test binaries.
pub fn thread_snapshot() -> FftStats {
    FftStats {
        plans_created: TL_PLANS_CREATED.get(),
        plan_cache_hits: TL_PLAN_CACHE_HITS.get(),
        forward_transforms: TL_FORWARD_TRANSFORMS.get(),
        inverse_transforms: TL_INVERSE_TRANSFORMS.get(),
        spectrum_block_reads: TL_SPECTRUM_BLOCK_READS.get(),
    }
}

pub(crate) fn count_plan() {
    PLANS_CREATED.fetch_add(1, Ordering::Relaxed);
    TL_PLANS_CREATED.set(TL_PLANS_CREATED.get() + 1);
}

pub(crate) fn count_plan_cache_hit() {
    PLAN_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
    TL_PLAN_CACHE_HITS.set(TL_PLAN_CACHE_HITS.get() + 1);
}

pub(crate) fn count_forward() {
    FORWARD_TRANSFORMS.fetch_add(1, Ordering::Relaxed);
    TL_FORWARD_TRANSFORMS.set(TL_FORWARD_TRANSFORMS.get() + 1);
}

pub(crate) fn count_inverse() {
    INVERSE_TRANSFORMS.fetch_add(1, Ordering::Relaxed);
    TL_INVERSE_TRANSFORMS.set(TL_INVERSE_TRANSFORMS.get() + 1);
}

/// Records `n` weight-spectrum block reads.
///
/// Instrumentation hook for downstream frequency-domain kernels (the
/// block-circulant matvec in `ernn-linalg`): each count is one visit to
/// one cached `FFT(w_ij)` block, regardless of how many batch inputs
/// that single visit serves. Tests use the delta to prove a batch-fused
/// matvec streams the weight spectra once per batch instead of once per
/// input.
pub fn count_spectrum_block_reads(n: u64) {
    SPECTRUM_BLOCK_READS.fetch_add(n, Ordering::Relaxed);
    TL_SPECTRUM_BLOCK_READS.set(TL_SPECTRUM_BLOCK_READS.get() + n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RealFft;

    #[test]
    fn counters_track_plan_and_transform_activity() {
        // Other tests may run concurrently in this process, so assert
        // monotone growth by at-least the local activity, not equality.
        let before = snapshot();
        let rfft = RealFft::new(16);
        let spec = rfft.forward(&[0.5f32; 16]);
        let _ = rfft.inverse(&spec);
        let delta = snapshot().since(&before);
        assert!(delta.plans_created >= 1, "{delta:?}");
        assert!(delta.forward_transforms >= 1, "{delta:?}");
        assert!(delta.inverse_transforms >= 1, "{delta:?}");
    }

    #[test]
    fn thread_counters_are_exact_under_concurrency() {
        // Thread-local deltas are immune to other tests' FFT activity, so
        // exact equality is safe here (unlike the global counters above).
        let before = thread_snapshot();
        let rfft = RealFft::new(8); // size 8 => one extra half plan inside
        let spec = rfft.forward(&[1.0f32; 8]);
        let spec2 = rfft.forward(&[2.0f32; 8]);
        let _ = rfft.inverse(&spec);
        let _ = spec2;
        let delta = thread_snapshot().since(&before);
        assert_eq!(delta.plans_created, 2, "{delta:?}"); // RealFft + half FftPlan
        assert_eq!(delta.forward_transforms, 2, "{delta:?}");
        assert_eq!(delta.inverse_transforms, 1, "{delta:?}");
        assert_eq!(delta.transforms(), 3);
    }

    #[test]
    fn fft_work_on_another_thread_stays_off_this_thread_ledger() {
        let before = thread_snapshot();
        std::thread::spawn(|| {
            let rfft = RealFft::new(16);
            let _ = rfft.forward(&[0.25f32; 16]);
        })
        .join()
        .expect("spawned FFT thread");
        let delta = thread_snapshot().since(&before);
        assert_eq!(delta, FftStats::default(), "{delta:?}");
    }

    #[test]
    fn plus_is_componentwise() {
        let a = FftStats {
            plans_created: 1,
            plan_cache_hits: 4,
            forward_transforms: 2,
            inverse_transforms: 3,
            spectrum_block_reads: 5,
        };
        let b = FftStats {
            plans_created: 10,
            plan_cache_hits: 40,
            forward_transforms: 20,
            inverse_transforms: 30,
            spectrum_block_reads: 50,
        };
        let sum = a.plus(&b);
        assert_eq!(sum.plans_created, 11);
        assert_eq!(sum.plan_cache_hits, 44);
        assert_eq!(sum.forward_transforms, 22);
        assert_eq!(sum.inverse_transforms, 33);
        assert_eq!(sum.spectrum_block_reads, 55);
        assert_eq!(sum.since(&a), b);
    }

    #[test]
    fn spectrum_block_reads_accumulate() {
        let before = thread_snapshot();
        count_spectrum_block_reads(3);
        count_spectrum_block_reads(4);
        let delta = thread_snapshot().since(&before);
        assert_eq!(delta.spectrum_block_reads, 7);
        assert_eq!(delta.plans_created, 0);
    }
}
