//! Real-input FFT via the packed half-size complex transform.
//!
//! E-RNN's inputs and weights are real-valued, so the spectra are Hermitian
//! symmetric: only `N/2 + 1` bins are unique. Sec. V-A2 of the paper
//! exploits this to halve the butterfly work and the element-wise multiply
//! count. This module implements the classic "pack two real samples into one
//! complex sample" algorithm, which performs a complex FFT of half the
//! length plus an O(N) untangling pass — the software analogue of the
//! hardware optimization.

use crate::{is_power_of_two, Complex32, FftPlan};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Reusable workspace for the in-place real-FFT kernels.
///
/// [`RealFft::forward_into`] and [`RealFft::inverse_into`] need one
/// half-length complex buffer for the packed transform; a `RealFftScratch`
/// owns it so steady-state transforms allocate nothing. One scratch serves
/// plans of any size (the buffer grows to the largest size seen and is
/// then reused), so a worker can keep a single scratch across every layer
/// of a model.
#[derive(Debug, Clone, Default)]
pub struct RealFftScratch {
    packed: Vec<Complex32>,
}

impl RealFftScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        RealFftScratch::default()
    }

    /// The packed buffer, resized to exactly `half` entries.
    fn packed(&mut self, half: usize) -> &mut [Complex32] {
        self.packed.resize(half, Complex32::ZERO);
        &mut self.packed[..half]
    }
}

/// Real-input FFT producing (and consuming) the unique half spectrum.
///
/// The forward transform maps `N` real samples to `N/2 + 1` complex bins;
/// bins `0` and `N/2` are purely real. The inverse reconstructs the real
/// signal, including the `1/N` scaling.
///
/// ```
/// use ernn_fft::RealFft;
/// let rfft = RealFft::new(8);
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// let spec = rfft.forward(&x);
/// assert_eq!(spec.len(), 5); // N/2 + 1 unique bins
/// let back = rfft.inverse(&spec);
/// for (a, b) in back.iter().zip(x.iter()) {
///     assert!((a - b).abs() < 1e-4);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RealFft {
    size: usize,
    /// Plan of size `N/2` (absent for N ≤ 2 where the transform is trivial).
    half_plan: Option<FftPlan>,
    /// `e^{-2πik/N}` for `k in 0..=N/2`.
    twiddles: Vec<Complex32>,
}

impl RealFft {
    /// Creates a real-FFT plan for signals of length `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn new(size: usize) -> Self {
        assert!(
            is_power_of_two(size),
            "real FFT size must be a power of two, got {size}"
        );
        let half_plan = if size >= 4 {
            Some(FftPlan::new(size / 2))
        } else {
            None
        };
        let twiddles = (0..=size / 2)
            .map(|k| Complex32::cis(-2.0 * std::f64::consts::PI * k as f64 / size as f64))
            .collect();
        crate::stats::count_plan();
        RealFft {
            size,
            half_plan,
            twiddles,
        }
    }

    /// The signal length this plan was built for.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of unique spectrum bins, `N/2 + 1` (or 1 when `N == 1`).
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        if self.size == 1 {
            1
        } else {
            self.size / 2 + 1
        }
    }

    /// Looks up (or builds) a process-wide shared plan for `size`.
    ///
    /// `RealFft::new` recomputes the twiddle tables on every call — e.g.
    /// once per block-circulant matrix per model clone. The shared cache
    /// builds each size exactly once per process and hands out `Arc`
    /// clones afterwards; hits are observable as
    /// [`FftStats::plan_cache_hits`](crate::stats::FftStats).
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn shared(size: usize) -> Arc<RealFft> {
        static CACHE: OnceLock<Mutex<HashMap<usize, Arc<RealFft>>>> = OnceLock::new();
        assert!(
            is_power_of_two(size),
            "real FFT size must be a power of two, got {size}"
        );
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("plan cache poisoned");
        if let Some(plan) = map.get(&size) {
            crate::stats::count_plan_cache_hit();
            return Arc::clone(plan);
        }
        let plan = Arc::new(RealFft::new(size));
        map.insert(size, Arc::clone(&plan));
        plan
    }

    /// Forward transform of a real signal into its unique half spectrum.
    ///
    /// Thin allocating wrapper over [`Self::forward_into`]; results are
    /// bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.size()`.
    pub fn forward(&self, input: &[f32]) -> Vec<Complex32> {
        let mut spectrum = vec![Complex32::ZERO; self.spectrum_len()];
        self.forward_into(input, &mut spectrum, &mut RealFftScratch::new());
        spectrum
    }

    /// In-place forward transform: writes the unique half spectrum into
    /// `spectrum`, using `scratch` for the packed half-length buffer.
    /// Allocation-free once the scratch has grown to this plan's size.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.size()` or
    /// `spectrum.len() != self.spectrum_len()`.
    pub fn forward_into(
        &self,
        input: &[f32],
        spectrum: &mut [Complex32],
        scratch: &mut RealFftScratch,
    ) {
        assert_eq!(input.len(), self.size, "input length must match plan size");
        assert_eq!(
            spectrum.len(),
            self.spectrum_len(),
            "spectrum length must be N/2 + 1"
        );
        crate::stats::count_forward();
        match self.size {
            1 => spectrum[0] = Complex32::from_real(input[0]),
            2 => {
                spectrum[0] = Complex32::from_real(input[0] + input[1]);
                spectrum[1] = Complex32::from_real(input[0] - input[1]);
            }
            n => {
                let half = n / 2;
                let packed = scratch.packed(half);
                for (k, p) in packed.iter_mut().enumerate() {
                    *p = Complex32::new(input[2 * k], input[2 * k + 1]);
                }
                self.half_plan
                    .as_ref()
                    .expect("plan exists for N >= 4")
                    .forward(packed);
                for (k, bin) in spectrum.iter_mut().enumerate() {
                    let zk = packed[k % half];
                    let znk = packed[(half - k) % half].conj();
                    let even = (zk + znk).scale(0.5);
                    let odd = (zk - znk).mul_neg_i().scale(0.5);
                    *bin = even + self.twiddles[k] * odd;
                }
                // Enforce the exact Hermitian endpoints: bins 0 and N/2 of a
                // real signal are mathematically real.
                spectrum[0].im = 0.0;
                spectrum[half].im = 0.0;
            }
        }
    }

    /// Inverse transform from the unique half spectrum back to a real signal.
    ///
    /// Thin allocating wrapper over [`Self::inverse_into`]; results are
    /// bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != self.spectrum_len()`.
    pub fn inverse(&self, spectrum: &[Complex32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.size];
        self.inverse_into(spectrum, &mut out, &mut RealFftScratch::new());
        out
    }

    /// In-place inverse transform: writes the real signal into `output`,
    /// using `scratch` for the packed half-length buffer. Allocation-free
    /// once the scratch has grown to this plan's size.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != self.spectrum_len()` or
    /// `output.len() != self.size()`.
    pub fn inverse_into(
        &self,
        spectrum: &[Complex32],
        output: &mut [f32],
        scratch: &mut RealFftScratch,
    ) {
        assert_eq!(
            spectrum.len(),
            self.spectrum_len(),
            "spectrum length must be N/2 + 1"
        );
        assert_eq!(
            output.len(),
            self.size,
            "output length must match plan size"
        );
        crate::stats::count_inverse();
        match self.size {
            1 => output[0] = spectrum[0].re,
            2 => {
                output[0] = 0.5 * (spectrum[0].re + spectrum[1].re);
                output[1] = 0.5 * (spectrum[0].re - spectrum[1].re);
            }
            n => {
                let half = n / 2;
                let packed = scratch.packed(half);
                for (k, p) in packed.iter_mut().enumerate() {
                    let xk = spectrum[k];
                    let xnk = spectrum[half - k].conj();
                    let even = (xk + xnk).scale(0.5);
                    // W^k · O[k] = (X[k] - conj(X[N/2-k])) / 2
                    let odd = (xk - xnk).scale(0.5) * self.twiddles[k].conj();
                    *p = even + odd.mul_i();
                }
                self.half_plan
                    .as_ref()
                    .expect("plan exists for N >= 4")
                    .inverse(packed);
                for (k, z) in packed.iter().enumerate() {
                    output[2 * k] = z.re;
                    output[2 * k + 1] = z.im;
                }
            }
        }
    }
}

/// Element-wise product of two half spectra.
///
/// Applying [`RealFft::inverse`] to the result yields the circular
/// convolution of the two time-domain signals — the core of Eqn. 4.
pub fn spectrum_mul(a: &[Complex32], b: &[Complex32]) -> Vec<Complex32> {
    assert_eq!(a.len(), b.len(), "spectra must have equal length");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).collect()
}

/// Element-wise product with the conjugate of `a`: `conj(a) ∘ b`.
///
/// Inverting the result gives the circular *cross-correlation*, which is the
/// operation a row-defined circulant matrix–vector product performs; this is
/// why the E-RNN PE datapath contains a conjugation operator (Fig. 10).
pub fn spectrum_conj_mul(a: &[Complex32], b: &[Complex32]) -> Vec<Complex32> {
    assert_eq!(a.len(), b.len(), "spectra must have equal length");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x.conj() * y)
        .collect()
}

/// Accumulate `conj(a) ∘ b` into `acc` (used by the FFT/IFFT-decoupled
/// block-circulant matvec, Sec. V-A1: accumulate in the frequency domain,
/// run a single IFFT per output block).
pub fn spectrum_conj_mul_acc(acc: &mut [Complex32], a: &[Complex32], b: &[Complex32]) {
    assert_eq!(a.len(), b.len(), "spectra must have equal length");
    assert_eq!(acc.len(), a.len(), "accumulator must match spectra length");
    for ((dst, &x), &y) in acc.iter_mut().zip(a.iter()).zip(b.iter()) {
        *dst += x.conj() * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::dft_naive;
    use proptest::prelude::*;

    fn spectra_close(a: &[Complex32], b: &[Complex32], tol: f32) -> bool {
        a.iter()
            .zip(b.iter())
            .all(|(x, y)| (x.re - y.re).abs() <= tol && (x.im - y.im).abs() <= tol)
    }

    #[test]
    fn matches_full_complex_fft() {
        for &n in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
            let rfft = RealFft::new(n);
            let x: Vec<f32> = (0..n).map(|i| ((i * 7 % 13) as f32) * 0.3 - 1.0).collect();
            let spec = rfft.forward(&x);
            let full = dft_naive(
                &x.iter()
                    .map(|&v| Complex32::from_real(v))
                    .collect::<Vec<_>>(),
            );
            let expected: Vec<Complex32> = full[..rfft.spectrum_len()].to_vec();
            assert!(
                spectra_close(&spec, &expected, 2e-3),
                "n={n}: {spec:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn endpoints_are_real() {
        let rfft = RealFft::new(16);
        let x: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let spec = rfft.forward(&x);
        assert_eq!(spec[0].im, 0.0);
        assert_eq!(spec[8].im, 0.0);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let rfft = RealFft::new(8);
        let mut x = [0.0f32; 8];
        x[0] = 1.0;
        let spec = rfft.forward(&x);
        for bin in &spec {
            assert!((bin.re - 1.0).abs() < 1e-5 && bin.im.abs() < 1e-5);
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let rfft = RealFft::new(16);
        let x = [0.5f32; 16];
        let spec = rfft.forward(&x);
        assert!((spec[0].re - 8.0).abs() < 1e-4);
        for bin in &spec[1..] {
            assert!(bin.abs() < 1e-4);
        }
    }

    #[test]
    fn spectrum_mul_rejects_length_mismatch() {
        let a = vec![Complex32::ONE; 3];
        let b = vec![Complex32::ONE; 4];
        let result = std::panic::catch_unwind(|| spectrum_mul(&a, &b));
        assert!(result.is_err());
    }

    #[test]
    fn into_variants_are_bit_identical_to_allocating_paths() {
        let mut scratch = RealFftScratch::new();
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let rfft = RealFft::new(n);
            let x: Vec<f32> = (0..n).map(|i| ((i * 5 % 11) as f32) * 0.7 - 2.0).collect();
            let spec = rfft.forward(&x);
            let mut spec_into = vec![Complex32::ZERO; rfft.spectrum_len()];
            rfft.forward_into(&x, &mut spec_into, &mut scratch);
            assert_eq!(spec, spec_into, "forward n={n}");
            let back = rfft.inverse(&spec);
            let mut back_into = vec![0.0f32; n];
            rfft.inverse_into(&spec_into, &mut back_into, &mut scratch);
            assert_eq!(back, back_into, "inverse n={n}");
        }
    }

    #[test]
    fn one_scratch_serves_mixed_sizes() {
        // Shrinking then regrowing the packed buffer must stay correct.
        let mut scratch = RealFftScratch::new();
        for &n in &[64usize, 8, 128, 16] {
            let rfft = RealFft::new(n);
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.13).cos()).collect();
            let mut spec = vec![Complex32::ZERO; rfft.spectrum_len()];
            rfft.forward_into(&x, &mut spec, &mut scratch);
            let mut back = vec![0.0f32; n];
            rfft.inverse_into(&spec, &mut back, &mut scratch);
            for (a, b) in back.iter().zip(x.iter()) {
                assert!((a - b).abs() < 1e-3, "n={n}");
            }
        }
    }

    #[test]
    fn shared_plan_cache_reuses_plans() {
        // Unusual size to keep this test's first lookup plausibly cold;
        // the assertions below are exact regardless thanks to the
        // thread-local counters and the grow-only cache.
        let a = RealFft::shared(4096);
        let before = crate::stats::thread_snapshot();
        let b = RealFft::shared(4096);
        let delta = crate::stats::thread_snapshot().since(&before);
        assert_eq!(delta.plans_created, 0, "second lookup must build nothing");
        assert_eq!(delta.plan_cache_hits, 1);
        assert!(Arc::ptr_eq(&a, &b), "both handles share one plan");
        assert_eq!(a.size(), 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn shared_rejects_non_power_of_two() {
        let _ = RealFft::shared(12);
    }

    proptest! {
        #[test]
        fn roundtrip_recovers_signal(log_n in 0u32..9, seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let n = 1usize << log_n;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let rfft = RealFft::new(n);
            let spec = rfft.forward(&x);
            let back = rfft.inverse(&spec);
            for (a, b) in back.iter().zip(x.iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
