//! Real-input FFT via the packed half-size complex transform.
//!
//! E-RNN's inputs and weights are real-valued, so the spectra are Hermitian
//! symmetric: only `N/2 + 1` bins are unique. Sec. V-A2 of the paper
//! exploits this to halve the butterfly work and the element-wise multiply
//! count. This module implements the classic "pack two real samples into one
//! complex sample" algorithm, which performs a complex FFT of half the
//! length plus an O(N) untangling pass — the software analogue of the
//! hardware optimization.

use crate::{is_power_of_two, Complex32, FftPlan};

/// Real-input FFT producing (and consuming) the unique half spectrum.
///
/// The forward transform maps `N` real samples to `N/2 + 1` complex bins;
/// bins `0` and `N/2` are purely real. The inverse reconstructs the real
/// signal, including the `1/N` scaling.
///
/// ```
/// use ernn_fft::RealFft;
/// let rfft = RealFft::new(8);
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// let spec = rfft.forward(&x);
/// assert_eq!(spec.len(), 5); // N/2 + 1 unique bins
/// let back = rfft.inverse(&spec);
/// for (a, b) in back.iter().zip(x.iter()) {
///     assert!((a - b).abs() < 1e-4);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RealFft {
    size: usize,
    /// Plan of size `N/2` (absent for N ≤ 2 where the transform is trivial).
    half_plan: Option<FftPlan>,
    /// `e^{-2πik/N}` for `k in 0..=N/2`.
    twiddles: Vec<Complex32>,
}

impl RealFft {
    /// Creates a real-FFT plan for signals of length `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn new(size: usize) -> Self {
        assert!(
            is_power_of_two(size),
            "real FFT size must be a power of two, got {size}"
        );
        let half_plan = if size >= 4 {
            Some(FftPlan::new(size / 2))
        } else {
            None
        };
        let twiddles = (0..=size / 2)
            .map(|k| Complex32::cis(-2.0 * std::f64::consts::PI * k as f64 / size as f64))
            .collect();
        crate::stats::count_plan();
        RealFft {
            size,
            half_plan,
            twiddles,
        }
    }

    /// The signal length this plan was built for.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of unique spectrum bins, `N/2 + 1` (or 1 when `N == 1`).
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        if self.size == 1 {
            1
        } else {
            self.size / 2 + 1
        }
    }

    /// Forward transform of a real signal into its unique half spectrum.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.size()`.
    pub fn forward(&self, input: &[f32]) -> Vec<Complex32> {
        assert_eq!(input.len(), self.size, "input length must match plan size");
        crate::stats::count_forward();
        match self.size {
            1 => vec![Complex32::from_real(input[0])],
            2 => vec![
                Complex32::from_real(input[0] + input[1]),
                Complex32::from_real(input[0] - input[1]),
            ],
            n => {
                let half = n / 2;
                let mut packed: Vec<Complex32> = (0..half)
                    .map(|k| Complex32::new(input[2 * k], input[2 * k + 1]))
                    .collect();
                self.half_plan
                    .as_ref()
                    .expect("plan exists for N >= 4")
                    .forward(&mut packed);
                let mut spectrum = Vec::with_capacity(half + 1);
                for k in 0..=half {
                    let zk = packed[k % half];
                    let znk = packed[(half - k) % half].conj();
                    let even = (zk + znk).scale(0.5);
                    let odd = (zk - znk).mul_neg_i().scale(0.5);
                    spectrum.push(even + self.twiddles[k] * odd);
                }
                // Enforce the exact Hermitian endpoints: bins 0 and N/2 of a
                // real signal are mathematically real.
                spectrum[0].im = 0.0;
                spectrum[half].im = 0.0;
                spectrum
            }
        }
    }

    /// Inverse transform from the unique half spectrum back to a real signal.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != self.spectrum_len()`.
    pub fn inverse(&self, spectrum: &[Complex32]) -> Vec<f32> {
        assert_eq!(
            spectrum.len(),
            self.spectrum_len(),
            "spectrum length must be N/2 + 1"
        );
        crate::stats::count_inverse();
        match self.size {
            1 => vec![spectrum[0].re],
            2 => vec![
                0.5 * (spectrum[0].re + spectrum[1].re),
                0.5 * (spectrum[0].re - spectrum[1].re),
            ],
            n => {
                let half = n / 2;
                let mut packed = Vec::with_capacity(half);
                for k in 0..half {
                    let xk = spectrum[k];
                    let xnk = spectrum[half - k].conj();
                    let even = (xk + xnk).scale(0.5);
                    // W^k · O[k] = (X[k] - conj(X[N/2-k])) / 2
                    let odd = (xk - xnk).scale(0.5) * self.twiddles[k].conj();
                    packed.push(even + odd.mul_i());
                }
                self.half_plan
                    .as_ref()
                    .expect("plan exists for N >= 4")
                    .inverse(&mut packed);
                let mut out = Vec::with_capacity(n);
                for z in packed {
                    out.push(z.re);
                    out.push(z.im);
                }
                out
            }
        }
    }
}

/// Element-wise product of two half spectra.
///
/// Applying [`RealFft::inverse`] to the result yields the circular
/// convolution of the two time-domain signals — the core of Eqn. 4.
pub fn spectrum_mul(a: &[Complex32], b: &[Complex32]) -> Vec<Complex32> {
    assert_eq!(a.len(), b.len(), "spectra must have equal length");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).collect()
}

/// Element-wise product with the conjugate of `a`: `conj(a) ∘ b`.
///
/// Inverting the result gives the circular *cross-correlation*, which is the
/// operation a row-defined circulant matrix–vector product performs; this is
/// why the E-RNN PE datapath contains a conjugation operator (Fig. 10).
pub fn spectrum_conj_mul(a: &[Complex32], b: &[Complex32]) -> Vec<Complex32> {
    assert_eq!(a.len(), b.len(), "spectra must have equal length");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x.conj() * y)
        .collect()
}

/// Accumulate `conj(a) ∘ b` into `acc` (used by the FFT/IFFT-decoupled
/// block-circulant matvec, Sec. V-A1: accumulate in the frequency domain,
/// run a single IFFT per output block).
pub fn spectrum_conj_mul_acc(acc: &mut [Complex32], a: &[Complex32], b: &[Complex32]) {
    assert_eq!(a.len(), b.len(), "spectra must have equal length");
    assert_eq!(acc.len(), a.len(), "accumulator must match spectra length");
    for ((dst, &x), &y) in acc.iter_mut().zip(a.iter()).zip(b.iter()) {
        *dst += x.conj() * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::dft_naive;
    use proptest::prelude::*;

    fn spectra_close(a: &[Complex32], b: &[Complex32], tol: f32) -> bool {
        a.iter()
            .zip(b.iter())
            .all(|(x, y)| (x.re - y.re).abs() <= tol && (x.im - y.im).abs() <= tol)
    }

    #[test]
    fn matches_full_complex_fft() {
        for &n in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
            let rfft = RealFft::new(n);
            let x: Vec<f32> = (0..n).map(|i| ((i * 7 % 13) as f32) * 0.3 - 1.0).collect();
            let spec = rfft.forward(&x);
            let full = dft_naive(
                &x.iter()
                    .map(|&v| Complex32::from_real(v))
                    .collect::<Vec<_>>(),
            );
            let expected: Vec<Complex32> = full[..rfft.spectrum_len()].to_vec();
            assert!(
                spectra_close(&spec, &expected, 2e-3),
                "n={n}: {spec:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn endpoints_are_real() {
        let rfft = RealFft::new(16);
        let x: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let spec = rfft.forward(&x);
        assert_eq!(spec[0].im, 0.0);
        assert_eq!(spec[8].im, 0.0);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let rfft = RealFft::new(8);
        let mut x = [0.0f32; 8];
        x[0] = 1.0;
        let spec = rfft.forward(&x);
        for bin in &spec {
            assert!((bin.re - 1.0).abs() < 1e-5 && bin.im.abs() < 1e-5);
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let rfft = RealFft::new(16);
        let x = [0.5f32; 16];
        let spec = rfft.forward(&x);
        assert!((spec[0].re - 8.0).abs() < 1e-4);
        for bin in &spec[1..] {
            assert!(bin.abs() < 1e-4);
        }
    }

    #[test]
    fn spectrum_mul_rejects_length_mismatch() {
        let a = vec![Complex32::ONE; 3];
        let b = vec![Complex32::ONE; 4];
        let result = std::panic::catch_unwind(|| spectrum_mul(&a, &b));
        assert!(result.is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_recovers_signal(log_n in 0u32..9, seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let n = 1usize << log_n;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let rfft = RealFft::new(n);
            let spec = rfft.forward(&x);
            let back = rfft.inverse(&spec);
            for (a, b) in back.iter().zip(x.iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
