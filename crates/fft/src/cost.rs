//! Multiplication-count model for the block-circulant matvec (paper Sec. V).
//!
//! Fig. 8 of the paper plots the number of multiplications in one RNN layer
//! as a function of block size, normalized to the dense (block size 1)
//! baseline, after applying three computation-reduction techniques:
//!
//! 1. **FFT/IFFT decoupling** (Sec. V-A1): `FFT(x_j)` is computed once per
//!    input block (q FFTs, not p·q) and the IFFT runs once per output block
//!    after frequency-domain accumulation (p IFFTs, not p·q).
//! 2. **Real-valued symmetry** (Sec. V-A2): Hermitian spectra halve the
//!    butterfly work and the element-wise multiply count.
//! 3. **Trivial twiddles**: butterflies whose twiddle factor is `±1` or
//!    `±i` need no multiplier; the first two FFT stages are multiplier-free,
//!    stage `s ≥ 3` has `2^(s-1) − 2` non-trivial twiddles.
//!
//! The model is exact combinatorial counting (not asymptotics), so it can be
//! cross-checked against an instrumented FFT in tests and reused by the
//! hardware cost model in `ernn-fpga`.

use crate::{is_power_of_two, log2};

/// Which computation-reduction techniques to account for.
///
/// `CostModel::paper()` enables everything, matching the assumptions behind
/// Fig. 8; the ablation benches toggle individual flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Reuse `FFT(x_j)` across output blocks and defer the IFFT until after
    /// frequency-domain accumulation.
    pub fft_decoupling: bool,
    /// Exploit Hermitian symmetry of real-input spectra.
    pub real_symmetry: bool,
    /// Skip multiplications by the trivial twiddles `1, −1, i, −i`.
    pub trivial_twiddles: bool,
    /// Real multiplications per general complex multiplication (4 for the
    /// schoolbook product the paper's PE uses; 3 with the Karatsuba trick).
    pub real_mults_per_complex: u32,
}

impl CostModel {
    /// The full set of optimizations assumed by Fig. 8 of the paper.
    pub fn paper() -> Self {
        CostModel {
            fft_decoupling: true,
            real_symmetry: true,
            trivial_twiddles: true,
            real_mults_per_complex: 4,
        }
    }

    /// No optimizations: every block op runs a fresh complex FFT/IFFT pair.
    pub fn unoptimized() -> Self {
        CostModel {
            fft_decoupling: false,
            real_symmetry: false,
            trivial_twiddles: false,
            real_mults_per_complex: 4,
        }
    }

    /// Number of *complex* multiplications in one radix-2 FFT of length `n`.
    ///
    /// Counts exactly: stage `s` (1-indexed, `s = 1..=log2 n`) performs
    /// `n / 2^s` butterflies per distinct twiddle `W_{2^s}^k`,
    /// `k = 0..2^(s-1)`. With trivial-twiddle elimination, `k = 0` (W = 1)
    /// and, for `s ≥ 2`, `k = 2^(s-2)` (W = −i) are free.
    pub fn fft_complex_mults(&self, n: usize) -> u64 {
        assert!(is_power_of_two(n), "FFT size must be a power of two");
        if n <= 1 {
            return 0;
        }
        let stages = log2(n);
        let mut total = 0u64;
        for s in 1..=stages {
            let distinct = 1u64 << (s - 1);
            let trivial = if self.trivial_twiddles {
                if s >= 2 {
                    2
                } else {
                    1
                }
            } else {
                0
            };
            let non_trivial = distinct.saturating_sub(trivial);
            let reps = (n as u64) >> s;
            total += non_trivial * reps;
        }
        total
    }

    /// Real multiplications for one FFT (or IFFT) of length `n` on
    /// real-valued data.
    ///
    /// With `real_symmetry`, the Hermitian-symmetric half of the butterfly
    /// network is skipped, halving the multiplier count (Sec. V-A2: "the
    /// last level of the butterfly plot in FFT computation and the first
    /// level of IFFT can be reduced by half" generalizes to half the
    /// complex work for real data).
    pub fn fft_real_mults(&self, n: usize) -> u64 {
        let complex = self.fft_complex_mults(n) * self.real_mults_per_complex as u64;
        if self.real_symmetry {
            complex / 2
        } else {
            complex
        }
    }

    /// Real multiplications for the element-wise spectrum product of one
    /// block pair (`FFT(w_ij) ∘ FFT(x_j)` over a block of size `lb`).
    ///
    /// With `real_symmetry`, only `lb/2 + 1` unique bins are multiplied and
    /// the two endpoint bins are purely real (1 real multiply each).
    pub fn elementwise_real_mults(&self, lb: usize) -> u64 {
        assert!(is_power_of_two(lb), "block size must be a power of two");
        let c = self.real_mults_per_complex as u64;
        if !self.real_symmetry {
            return lb as u64 * c;
        }
        match lb {
            1 => 1,
            2 => 2, // both bins real
            _ => {
                let interior = (lb as u64 / 2).saturating_sub(1);
                interior * c + 2
            }
        }
    }

    /// Total real multiplications for one block-circulant matvec
    /// `W x` with `W ∈ R^{rows×cols}` partitioned into blocks of size `lb`.
    ///
    /// Dimensions that do not divide evenly are zero-padded up, matching the
    /// storage layout in `ernn-linalg`.
    ///
    /// # Panics
    ///
    /// Panics if `lb` is not a power of two or any dimension is zero.
    pub fn matvec_real_mults(&self, rows: usize, cols: usize, lb: usize) -> u64 {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert!(is_power_of_two(lb), "block size must be a power of two");
        if lb == 1 {
            // Degenerate blocks: plain dense matvec.
            return rows as u64 * cols as u64;
        }
        let p = rows.div_ceil(lb) as u64;
        let q = cols.div_ceil(lb) as u64;
        let (n_fft, n_ifft) = if self.fft_decoupling {
            (q, p)
        } else {
            (p * q, p * q)
        };
        let transform = (n_fft + n_ifft) * self.fft_real_mults(lb);
        let elementwise = p * q * self.elementwise_real_mults(lb);
        transform + elementwise
    }

    /// Fig. 8's y-axis: multiplications normalized by the dense baseline
    /// (`rows × cols` multiplies).
    pub fn normalized_matvec_mults(&self, rows: usize, cols: usize, lb: usize) -> f64 {
        self.matvec_real_mults(rows, cols, lb) as f64 / (rows as f64 * cols as f64)
    }
}

/// One point of the Fig. 8 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultCurvePoint {
    /// Block size `L_b`.
    pub block_size: usize,
    /// Normalized multiplication count (1.0 = dense baseline).
    pub normalized_mults: f64,
}

/// Computes the Fig. 8 curve for a square layer of the given size over block
/// sizes `2, 4, …, max_block`.
///
/// ```
/// use ernn_fft::cost::{fig8_curve, CostModel};
/// let curve = fig8_curve(CostModel::paper(), 512, 256);
/// // Compression improves rapidly up to block size ~32 and then converges
/// // (paper Sec. V-B).
/// assert!(curve[0].normalized_mults > curve.last().unwrap().normalized_mults);
/// ```
pub fn fig8_curve(model: CostModel, layer_size: usize, max_block: usize) -> Vec<MultCurvePoint> {
    assert!(
        is_power_of_two(max_block),
        "max block must be a power of two"
    );
    let mut points = Vec::new();
    let mut lb = 2;
    while lb <= max_block && lb <= layer_size {
        points.push(MultCurvePoint {
            block_size: lb,
            normalized_mults: model.normalized_matvec_mults(layer_size, layer_size, lb),
        });
        lb <<= 1;
    }
    points
}

/// Default absolute-gain threshold for [`block_size_upper_bound`]: doubling
/// the block size must save at least 1.5% of the dense multiply count.
/// Calibrated so the bound lands at 32–64 for the paper's 512/1024 layers.
pub const DEFAULT_MIN_GAIN: f64 = 0.015;

/// The block-size upper bound implied by the bottom-up exploration
/// (Sec. V-B): the largest block size whose *absolute* multiply-count
/// reduction (as a fraction of the dense baseline) still exceeds
/// `min_gain`. Past this point the curve has converged — larger blocks buy
/// almost nothing while costing accuracy.
///
/// The paper observes the convergence at 32 or 64 for ASR layer sizes and
/// uses it to cap Phase-I training trials.
pub fn block_size_upper_bound(model: CostModel, layer_size: usize, min_gain: f64) -> usize {
    let curve = fig8_curve(model, layer_size, layer_size.min(1024));
    let mut best = curve.first().map_or(2, |p| p.block_size);
    for pair in curve.windows(2) {
        let improvement = pair[0].normalized_mults - pair[1].normalized_mults;
        if improvement > min_gain {
            best = pair[1].block_size;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_complex_mult_count_matches_closed_form() {
        // Exact trivial-twiddle counting reproduces the classic closed form
        // (N/2)(log2 N − 3) + 2 for N ≥ 8.
        let m = CostModel::paper();
        assert_eq!(m.fft_complex_mults(2), 0);
        assert_eq!(m.fft_complex_mults(4), 0);
        assert_eq!(m.fft_complex_mults(8), 2);
        assert_eq!(m.fft_complex_mults(16), 10);
        assert_eq!(m.fft_complex_mults(32), 34);
        for &n in &[8usize, 16, 32, 64, 128, 256, 512] {
            let expected = (n as u64 / 2) * (log2(n) as u64 - 3) + 2;
            // log2(8) - 3 = 0, closed form = 2. General check:
            assert_eq!(m.fft_complex_mults(n), expected, "n={n}");
        }
    }

    #[test]
    fn unoptimized_fft_counts_all_butterflies() {
        let m = CostModel::unoptimized();
        for &n in &[2usize, 4, 8, 16, 64] {
            assert_eq!(m.fft_complex_mults(n), (n as u64 / 2) * log2(n) as u64);
        }
    }

    #[test]
    fn block_size_one_is_dense() {
        let m = CostModel::paper();
        assert_eq!(m.matvec_real_mults(512, 512, 1), 512 * 512);
        assert_eq!(m.normalized_matvec_mults(512, 512, 1), 1.0);
    }

    #[test]
    fn decoupling_reduces_transform_count() {
        let with = CostModel::paper();
        let without = CostModel {
            fft_decoupling: false,
            ..CostModel::paper()
        };
        assert!(with.matvec_real_mults(512, 512, 16) < without.matvec_real_mults(512, 512, 16));
    }

    #[test]
    fn symmetry_halves_elementwise_work() {
        let with = CostModel::paper();
        let without = CostModel {
            real_symmetry: false,
            ..CostModel::paper()
        };
        // 4·(Lb/2 − 1) + 2 versus 4·Lb.
        assert_eq!(with.elementwise_real_mults(16), 4 * 7 + 2);
        assert_eq!(without.elementwise_real_mults(16), 4 * 16);
    }

    #[test]
    fn fig8_shape_matches_paper_observation() {
        // Paper Sec. V-B: the reduction converges when the block size
        // reaches 32 or 64. Check the big drops happen before 32 and the
        // marginal improvement after 64 is small.
        for &layer in &[512usize, 1024] {
            let curve = fig8_curve(CostModel::paper(), layer, 256);
            let at = |lb: usize| {
                curve
                    .iter()
                    .find(|p| p.block_size == lb)
                    .unwrap()
                    .normalized_mults
            };
            assert!(at(2) > 0.4 && at(2) <= 0.55, "layer {layer}: {}", at(2));
            assert!(at(8) < 0.25, "layer {layer}");
            assert!(at(32) < 0.08, "layer {layer}");
            // Convergence: absolute improvement from 64 onwards is tiny
            // (< 1.5% of the dense count per doubling), versus ~13–25%
            // steps at small block sizes.
            assert!(at(64) - at(128) < 0.015, "layer {layer}");
            assert!(at(4) - at(8) > 0.1, "layer {layer}");
        }
    }

    #[test]
    fn undecoupled_computation_exceeds_dense_at_small_blocks() {
        // Without FFT/IFFT decoupling every block pair pays a fresh
        // transform; at small block sizes the total *exceeds* the dense
        // baseline — the "computation can even increase" effect the paper
        // uses to motivate bounding the block-size search (Sec. V-B).
        let m = CostModel::unoptimized();
        assert!(m.normalized_matvec_mults(512, 512, 2) > 1.0);
        // The optimized model dominates the unoptimized one everywhere.
        let opt = CostModel::paper();
        for lb in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            assert!(
                opt.normalized_matvec_mults(512, 512, lb) < m.normalized_matvec_mults(512, 512, lb),
                "lb={lb}"
            );
        }
    }

    #[test]
    fn upper_bound_lands_in_paper_range() {
        for &layer in &[512usize, 1024] {
            let ub = block_size_upper_bound(CostModel::paper(), layer, DEFAULT_MIN_GAIN);
            assert!(
                (32..=64).contains(&ub),
                "layer {layer}: upper bound {ub} outside the paper's 32–64 window"
            );
        }
    }

    #[test]
    fn non_square_and_padded_dims_are_supported() {
        let m = CostModel::paper();
        // 100 is not divisible by 8; padded to 104.
        let padded = m.matvec_real_mults(100, 100, 8);
        let exact = m.matvec_real_mults(104, 104, 8);
        assert_eq!(padded, exact);
        // Tall matrices have more IFFTs than FFTs.
        let tall = m.matvec_real_mults(1024, 256, 16);
        let wide = m.matvec_real_mults(256, 1024, 16);
        assert_eq!(tall, wide, "FFT+IFFT counts are symmetric for transposes");
    }

    #[test]
    fn karatsuba_reduces_real_mults() {
        let school = CostModel::paper();
        let karatsuba = CostModel {
            real_mults_per_complex: 3,
            ..CostModel::paper()
        };
        assert!(karatsuba.matvec_real_mults(512, 512, 16) < school.matvec_real_mults(512, 512, 16));
    }
}
