//! FFT substrate for the E-RNN reproduction.
//!
//! The block-circulant framework of E-RNN (Li et al., HPCA 2019) executes
//! every weight-matrix/vector product as
//! `IFFT(FFT(w) ∘ FFT(x))` (Eqn. 4 of the paper). This crate provides the
//! signal-processing kernels that the rest of the workspace builds on:
//!
//! * [`Complex32`] — a minimal single-precision complex number.
//! * [`FftPlan`] — an iterative radix-2 Cooley–Tukey FFT with precomputed
//!   twiddle factors and bit-reversal permutation.
//! * [`RealFft`] — real-input FFT using the packed half-size complex trick,
//!   exploiting the Hermitian symmetry the paper leverages in Sec. V-A2.
//! * [`conv`] — circular convolution/correlation used by circulant matvecs.
//! * [`cost`] — the multiplication-count model behind Fig. 8 of the paper
//!   (FFT/IFFT decoupling, real-valued symmetry, trivial-twiddle trimming).
//!
//! # Scratch / `_into` conventions
//!
//! Every transform has two forms. The allocating form (`forward`,
//! `inverse`) returns fresh `Vec`s and is the convenient API for setup
//! code and tests. The in-place form (`forward_into`, `inverse_into`)
//! writes into caller-provided buffers and borrows a [`RealFftScratch`]
//! for its internal packed half-length buffer, so steady-state transforms
//! perform **zero heap allocations** — the contract the serving hot path
//! in `ernn-serve` is built on. The allocating forms are thin wrappers
//! over the `_into` kernels, so the two are bit-identical by construction.
//!
//! Plans themselves are cheap to share: [`RealFft::shared`] returns a
//! process-wide cached `Arc<RealFft>` per size, so model clones stop
//! recomputing twiddle tables ([`stats::FftStats::plan_cache_hits`] makes
//! the reuse observable).
//!
//! # Example
//!
//! ```
//! use ernn_fft::{FftPlan, Complex32};
//!
//! let plan = FftPlan::new(8);
//! let mut buf: Vec<Complex32> = (0..8).map(|i| Complex32::new(i as f32, 0.0)).collect();
//! let orig = buf.clone();
//! plan.forward(&mut buf);
//! plan.inverse(&mut buf);
//! for (a, b) in buf.iter().zip(orig.iter()) {
//!     assert!((a.re - b.re).abs() < 1e-4);
//! }
//! ```

mod complex;
mod plan;
mod real;

pub mod conv;
pub mod cost;
pub mod stats;

pub use complex::Complex32;
pub use plan::{dft_naive, FftPlan};
pub use real::{spectrum_conj_mul, spectrum_conj_mul_acc, spectrum_mul, RealFft, RealFftScratch};

/// Returns `true` if `n` is a power of two (and non-zero).
///
/// Block sizes in the E-RNN framework are constrained to powers of two
/// (Sec. IV of the paper) so that the radix-2 FFT applies directly.
///
/// ```
/// assert!(ernn_fft::is_power_of_two(8));
/// assert!(!ernn_fft::is_power_of_two(12));
/// ```
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Integer base-2 logarithm of a power of two.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn log2(n: usize) -> u32 {
    assert!(is_power_of_two(n), "log2 requires a power of two, got {n}");
    n.trailing_zeros()
}
