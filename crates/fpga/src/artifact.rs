//! The versioned, deployable model artifact and the pipeline error type.
//!
//! E-RNN's two-phase flow ends with a *quantized, block-circulant,
//! datapath-annotated* model; [`ModelArtifact`] is that result as plain
//! data — spec, block policy, quantized weights, [`DatapathConfig`],
//! target platform, and the provenance of how the design was derived
//! (Phase-I trial log, ADMM residual, Phase-II quantization scan). It
//! byte-serializes deterministically with a hand-rolled little-endian
//! codec ([`ModelArtifact::save_bytes`] / [`ModelArtifact::load_bytes`]):
//! no dependencies, `save(load(bytes)) == bytes`, and a loaded artifact
//! reconstructs a [`QuantizedNetwork`] whose logits are **bit-identical**
//! to the in-process build — the weight values are stored exactly and the
//! weight spectra are recomputed from them by the same deterministic FFT.
//!
//! Every failure mode — truncated or corrupted bytes, unknown version or
//! platform, shape inconsistencies — surfaces as a [`PipelineError`]
//! rather than a panic, making artifact loading safe on untrusted input.

use crate::device::Device;
use crate::exec::{DatapathConfig, QuantizationReport, QuantizedNetwork};
use ernn_linalg::{BlockCirculantMatrix, Matrix, WeightMatrix};
use ernn_model::{
    Act, BlockPolicy, CellType, GruLayer, LstmConfig, LstmLayer, ModelSpec, RnnLayer, RnnNetwork,
};

/// The single error type of the model-lifecycle pipeline: stage
/// validation, artifact encoding/decoding, and registry loading all
/// report through it instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The bytes do not start with the artifact magic.
    BadMagic,
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The byte stream ended before a field could be read.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The bytes decoded but describe an inconsistent artifact.
    Corrupt(String),
    /// The artifact targets a platform this build does not know
    /// (see [`crate::device::KNOWN_DEVICES`]).
    UnknownDevice(String),
    /// The model spec is not instantiable (empty layer stack, zero dims).
    InvalidSpec(String),
    /// A block policy size is not a power of two (or 1 for dense).
    InvalidBlockPolicy(String),
    /// The datapath configuration is outside the supported range.
    InvalidDatapath(String),
    /// A supplied network does not match the declared spec.
    ShapeMismatch(String),
    /// A training or compression stage was given no data.
    EmptyTrainingSet,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::BadMagic => write!(f, "not an E-RNN model artifact (bad magic)"),
            PipelineError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "artifact version {found} unsupported (expected {supported})"
                )
            }
            PipelineError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "artifact truncated: needed {needed} bytes, {remaining} remaining"
                )
            }
            PipelineError::Corrupt(why) => write!(f, "corrupt artifact: {why}"),
            PipelineError::UnknownDevice(name) => write!(f, "unknown target platform {name:?}"),
            PipelineError::InvalidSpec(why) => write!(f, "invalid model spec: {why}"),
            PipelineError::InvalidBlockPolicy(why) => write!(f, "invalid block policy: {why}"),
            PipelineError::InvalidDatapath(why) => write!(f, "invalid datapath: {why}"),
            PipelineError::ShapeMismatch(why) => write!(f, "shape mismatch: {why}"),
            PipelineError::EmptyTrainingSet => write!(f, "training data is empty"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Checks a [`ModelSpec`] is instantiable.
pub fn validate_spec(spec: &ModelSpec) -> Result<(), PipelineError> {
    spec.validate().map_err(PipelineError::InvalidSpec)
}

/// Checks every block size of a [`BlockPolicy`] is 1 (dense) or a power
/// of two.
pub fn validate_policy(policy: &BlockPolicy) -> Result<(), PipelineError> {
    for (role, b) in [
        ("recurrent", policy.recurrent),
        ("input", policy.input),
        ("output", policy.output),
    ] {
        if b == 0 || (b > 1 && !ernn_fft::is_power_of_two(b)) {
            return Err(PipelineError::InvalidBlockPolicy(format!(
                "{role} block size must be 1 or a power of two, got {b}"
            )));
        }
    }
    Ok(())
}

/// Checks a [`DatapathConfig`] is within the fixed-point/PWL ranges the
/// functional datapath supports.
pub fn validate_datapath(datapath: &DatapathConfig) -> Result<(), PipelineError> {
    for (what, bits) in [
        ("weight", datapath.weight_bits),
        ("activation", datapath.activation_bits),
    ] {
        if !(2..=32).contains(&bits) {
            return Err(PipelineError::InvalidDatapath(format!(
                "{what} word length must be in 2..=32 bits, got {bits}"
            )));
        }
    }
    if !(2..=65_536).contains(&datapath.pwl_segments) {
        return Err(PipelineError::InvalidDatapath(format!(
            "PWL segment count must be in 2..=65536, got {}",
            datapath.pwl_segments
        )));
    }
    Ok(())
}

/// One Phase-I training trial, as stored provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Cell type trained.
    pub cell: CellType,
    /// Block size of the recurrent matrices.
    pub block: usize,
    /// Block size of the input/output matrices.
    pub io_block: usize,
    /// Measured PER (%).
    pub per: f64,
    /// Whether the trial met the accuracy budget.
    pub accepted: bool,
}

/// Phase-I provenance: the accuracy numbers and the bounded trial log
/// that led to the deployed model choice.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase1Provenance {
    /// Uncompressed LSTM baseline PER (%).
    pub baseline_per: f64,
    /// PER (%) of the chosen model.
    pub chosen_per: f64,
    /// Every training trial in order.
    pub trials: Vec<TrialRecord>,
}

/// ADMM training provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmmProvenance {
    /// Final relative primal residual `‖W − Z‖/‖W‖`.
    pub final_residual: f32,
    /// Outer iterations run.
    pub iterations: usize,
    /// Whether the residual tolerance was met.
    pub converged: bool,
}

/// How a deployed model came to be: free-form source label plus the
/// structured traces of each lifecycle stage that ran.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Provenance {
    /// Free-form origin label (e.g. `"ernn_core::flow::run_flow"`).
    pub source: String,
    /// Phase-I trial log, when the design-optimization flow produced
    /// this model.
    pub phase1: Option<Phase1Provenance>,
    /// ADMM residual trace, when the compression stage trained with ADMM.
    pub admm: Option<AdmmProvenance>,
    /// Phase-II quantization scan: `(bits, PER %)` per candidate width.
    pub quant_trials: Vec<(u8, f64)>,
}

/// A versioned, deployable model: the output of the lifecycle pipeline
/// and the unit the serving registry loads without recompressing.
///
/// See the [module docs](self) for the determinism and round-trip
/// guarantees; `tests/pipeline_artifact.rs` pins them down.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// The declared model shape.
    pub spec: ModelSpec,
    /// The block-size policy the weights were compressed under.
    pub policy: BlockPolicy,
    /// The fixed-point/PWL datapath the weights are quantized for.
    pub datapath: DatapathConfig,
    /// Target platform (must be one of
    /// [`KNOWN_DEVICES`](crate::device::KNOWN_DEVICES)).
    pub device: Device,
    /// Statistics of the quantization pass that produced the weights.
    pub report: QuantizationReport,
    /// Design-flow provenance.
    pub provenance: Provenance,
    /// The quantized weights (private: mutating them would break the
    /// quantized-for-`datapath` invariant).
    net: RnnNetwork<WeightMatrix>,
}

/// Format version written by [`ModelArtifact::save_bytes`].
pub const ARTIFACT_VERSION: u32 = 1;
const MAGIC: &[u8; 8] = b"ERNN-ART";

impl ModelArtifact {
    /// Packages a quantized model into an artifact, validating every
    /// component (spec, policy, datapath, platform, and that the network
    /// actually has the declared shape).
    pub fn from_quantized(
        spec: ModelSpec,
        policy: BlockPolicy,
        datapath: DatapathConfig,
        device: Device,
        qnet: &QuantizedNetwork,
        provenance: Provenance,
    ) -> Result<Self, PipelineError> {
        validate_parts(&spec, &policy, &datapath, device, qnet.network())?;
        Ok(ModelArtifact {
            spec,
            policy,
            datapath,
            device,
            report: qnet.report,
            provenance,
            net: qnet.network().clone(),
        })
    }

    /// The quantized weights.
    pub fn network(&self) -> &RnnNetwork<WeightMatrix> {
        &self.net
    }

    /// Rebuilds the functional quantized datapath — no quantization pass
    /// runs; weight spectra are recomputed once from the stored defining
    /// vectors (this *is* the load event of the FFT'd-weight cache).
    pub fn to_quantized(&self) -> QuantizedNetwork {
        QuantizedNetwork::from_quantized(self.net.clone(), &self.datapath, self.report)
    }

    /// Serializes to the deterministic byte format. Encoding the same
    /// artifact always produces the same bytes, and
    /// [`Self::load_bytes`] followed by `save_bytes` is the identity on
    /// any bytes this function produced.
    pub fn save_bytes(&self) -> Vec<u8> {
        let mut e = Enc(Vec::with_capacity(256));
        e.0.extend_from_slice(MAGIC);
        e.u32(ARTIFACT_VERSION);
        e.str(self.device.name);
        e.u8(self.datapath.weight_bits);
        e.u8(self.datapath.activation_bits);
        e.u64(self.datapath.pwl_segments as u64);
        e.u64(self.policy.recurrent as u64);
        e.u64(self.policy.input as u64);
        e.u64(self.policy.output as u64);
        // Spec.
        e.u8(cell_tag(self.spec.cell));
        e.u64(self.spec.input_dim as u64);
        e.u64(self.spec.classes as u64);
        e.u64(self.spec.layer_dims.len() as u64);
        for &d in &self.spec.layer_dims {
            e.u64(d as u64);
        }
        e.u8(u8::from(self.spec.peephole));
        e.opt_u64(self.spec.projection.map(|p| p as u64));
        e.u8(act_tag(self.spec.cell_activation));
        // Quantization report.
        e.f32(self.report.max_weight_error);
        e.f32(self.report.max_saturation);
        // Provenance.
        e.str(&self.provenance.source);
        match &self.provenance.phase1 {
            None => e.u8(0),
            Some(p1) => {
                e.u8(1);
                e.f64(p1.baseline_per);
                e.f64(p1.chosen_per);
                e.u64(p1.trials.len() as u64);
                for t in &p1.trials {
                    e.u8(cell_tag(t.cell));
                    e.u64(t.block as u64);
                    e.u64(t.io_block as u64);
                    e.f64(t.per);
                    e.u8(u8::from(t.accepted));
                }
            }
        }
        match &self.provenance.admm {
            None => e.u8(0),
            Some(a) => {
                e.u8(1);
                e.f32(a.final_residual);
                e.u64(a.iterations as u64);
                e.u8(u8::from(a.converged));
            }
        }
        e.u64(self.provenance.quant_trials.len() as u64);
        for &(bits, per) in &self.provenance.quant_trials {
            e.u8(bits);
            e.f64(per);
        }
        // Network.
        e.u64(self.net.layers().len() as u64);
        for layer in self.net.layers() {
            match layer {
                RnnLayer::Lstm(l) => {
                    e.u8(0);
                    let cfg = l.config();
                    e.u64(cfg.input_dim as u64);
                    e.u64(cfg.hidden_dim as u64);
                    e.u64(cfg.output_dim as u64);
                    e.u8(u8::from(cfg.peephole));
                    e.u8(act_tag(cfg.cell_activation));
                    e.weight(&l.wx);
                    e.weight(&l.wr);
                    e.f32s(&l.bias);
                    match &l.peepholes {
                        None => e.u8(0),
                        Some(p) => {
                            e.u8(1);
                            for v in p.iter() {
                                e.f32s(v);
                            }
                        }
                    }
                    match &l.wym {
                        None => e.u8(0),
                        Some(w) => {
                            e.u8(1);
                            e.weight(w);
                        }
                    }
                }
                RnnLayer::Gru(g) => {
                    e.u8(1);
                    e.u64(g.input_dim() as u64);
                    e.u64(g.hidden_dim() as u64);
                    e.u8(act_tag(g.candidate_activation));
                    e.weight(&g.wzr_x);
                    e.weight(&g.wzr_c);
                    e.f32s(&g.bias_zr);
                    e.weight(&g.wcx);
                    e.weight(&g.wcc);
                    e.f32s(&g.bias_c);
                }
            }
        }
        e.dense(&self.net.classifier_w);
        e.f32s(&self.net.classifier_b);
        e.0
    }

    /// Decodes an artifact, validating structure, shapes and platform.
    /// Any defect in the bytes — truncation, corruption, an unknown
    /// version or platform — is a [`PipelineError`], never a panic.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, PipelineError> {
        let mut d = Dec { buf: bytes, pos: 0 };
        let magic = d.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(PipelineError::BadMagic);
        }
        let version = d.u32()?;
        if version != ARTIFACT_VERSION {
            return Err(PipelineError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_VERSION,
            });
        }
        let device_name = d.str()?;
        let device = Device::by_name(&device_name)
            .ok_or_else(|| PipelineError::UnknownDevice(device_name.clone()))?;
        let datapath = DatapathConfig {
            weight_bits: d.u8()?,
            activation_bits: d.u8()?,
            pwl_segments: d.usize()?,
        };
        let policy = BlockPolicy {
            recurrent: d.usize()?,
            input: d.usize()?,
            output: d.usize()?,
        };
        // Spec.
        let cell = cell_from_tag(d.u8()?)?;
        let input_dim = d.usize()?;
        let classes = d.usize()?;
        let n_dims = d.len(8)?;
        let mut layer_dims = Vec::with_capacity(n_dims);
        for _ in 0..n_dims {
            layer_dims.push(d.usize()?);
        }
        let peephole = d.bool()?;
        let projection = d.opt_u64()?.map(|p| p as usize);
        let cell_activation = act_from_tag(d.u8()?)?;
        let spec = ModelSpec {
            cell,
            input_dim,
            classes,
            layer_dims,
            peephole,
            projection,
            cell_activation,
        };
        // Quantization report.
        let report = QuantizationReport {
            max_weight_error: d.f32()?,
            max_saturation: d.f32()?,
        };
        // Provenance.
        let source = d.str()?;
        let phase1 = if d.bool()? {
            let baseline_per = d.f64()?;
            let chosen_per = d.f64()?;
            let n = d.len(1 + 8 + 8 + 8 + 1)?;
            let mut trials = Vec::with_capacity(n);
            for _ in 0..n {
                trials.push(TrialRecord {
                    cell: cell_from_tag(d.u8()?)?,
                    block: d.usize()?,
                    io_block: d.usize()?,
                    per: d.f64()?,
                    accepted: d.bool()?,
                });
            }
            Some(Phase1Provenance {
                baseline_per,
                chosen_per,
                trials,
            })
        } else {
            None
        };
        let admm = if d.bool()? {
            Some(AdmmProvenance {
                final_residual: d.f32()?,
                iterations: d.usize()?,
                converged: d.bool()?,
            })
        } else {
            None
        };
        let n_quant = d.len(1 + 8)?;
        let mut quant_trials = Vec::with_capacity(n_quant);
        for _ in 0..n_quant {
            quant_trials.push((d.u8()?, d.f64()?));
        }
        let provenance = Provenance {
            source,
            phase1,
            admm,
            quant_trials,
        };
        // Network.
        let n_layers = d.len(1)?;
        if n_layers == 0 {
            return Err(PipelineError::Corrupt("network has no layers".into()));
        }
        let mut layers = Vec::with_capacity(n_layers);
        for i in 0..n_layers {
            let layer = match d.u8()? {
                0 => {
                    let cfg = LstmConfig {
                        input_dim: d.usize()?,
                        hidden_dim: d.usize()?,
                        output_dim: d.usize()?,
                        peephole: d.bool()?,
                        cell_activation: act_from_tag(d.u8()?)?,
                    };
                    check_dim(cfg.input_dim, i)?;
                    check_dim(cfg.hidden_dim, i)?;
                    check_dim(cfg.output_dim, i)?;
                    let h = cfg.hidden_dim;
                    let wx = d.weight(4 * h, cfg.input_dim, &format!("layer {i} wx"))?;
                    let wr = d.weight(4 * h, cfg.output_dim, &format!("layer {i} wr"))?;
                    let bias = d.f32s_exact(4 * h, &format!("layer {i} bias"))?;
                    let peepholes = if d.bool()? {
                        let mut p: [Vec<f32>; 3] = Default::default();
                        for v in p.iter_mut() {
                            *v = d.f32s_exact(h, &format!("layer {i} peephole"))?;
                        }
                        Some(p)
                    } else {
                        None
                    };
                    let wym = if d.bool()? {
                        Some(d.weight(cfg.output_dim, h, &format!("layer {i} wym"))?)
                    } else {
                        None
                    };
                    if cfg.peephole != peepholes.is_some() {
                        return Err(PipelineError::Corrupt(format!(
                            "layer {i} peephole presence disagrees with its config"
                        )));
                    }
                    if cfg.has_projection() != wym.is_some() {
                        return Err(PipelineError::Corrupt(format!(
                            "layer {i} projection presence disagrees with its config"
                        )));
                    }
                    RnnLayer::Lstm(LstmLayer::from_parts(cfg, wx, wr, bias, peepholes, wym))
                }
                1 => {
                    let in_dim = d.usize()?;
                    let h = d.usize()?;
                    check_dim(in_dim, i)?;
                    check_dim(h, i)?;
                    let act = act_from_tag(d.u8()?)?;
                    let wzr_x = d.weight(2 * h, in_dim, &format!("layer {i} wzr_x"))?;
                    let wzr_c = d.weight(2 * h, h, &format!("layer {i} wzr_c"))?;
                    let bias_zr = d.f32s_exact(2 * h, &format!("layer {i} bias_zr"))?;
                    let wcx = d.weight(h, in_dim, &format!("layer {i} wcx"))?;
                    let wcc = d.weight(h, h, &format!("layer {i} wcc"))?;
                    let bias_c = d.f32s_exact(h, &format!("layer {i} bias_c"))?;
                    RnnLayer::Gru(GruLayer::from_parts(
                        in_dim, h, act, wzr_x, wzr_c, bias_zr, wcx, wcc, bias_c,
                    ))
                }
                t => {
                    return Err(PipelineError::Corrupt(format!(
                        "unknown layer tag {t} for layer {i}"
                    )))
                }
            };
            layers.push(layer);
        }
        let top_dim = layers.last().expect("checked non-empty").output_dim();
        let classifier_w = d.dense()?;
        let classifier_b = d.f32s_exact(classes, "classifier bias")?;
        if (classifier_w.rows(), classifier_w.cols()) != (classes, top_dim) {
            return Err(PipelineError::Corrupt(format!(
                "classifier shape {}×{} disagrees with {classes} classes × top dim {top_dim}",
                classifier_w.rows(),
                classifier_w.cols()
            )));
        }
        if d.pos != d.buf.len() {
            return Err(PipelineError::Corrupt(format!(
                "{} trailing bytes after the payload",
                d.buf.len() - d.pos
            )));
        }
        let net = RnnNetwork::from_parts(layers, classifier_w, classifier_b);
        // Cross-validate the declared metadata against the decoded
        // network — same checks as the constructor, without cloning the
        // freshly decoded weights through a throwaway QuantizedNetwork.
        validate_parts(&spec, &policy, &datapath, device, &net)?;
        Ok(ModelArtifact {
            spec,
            policy,
            datapath,
            device,
            report,
            provenance,
            net,
        })
    }
}

/// The shared validation behind [`ModelArtifact::from_quantized`] and
/// [`ModelArtifact::load_bytes`]: instantiable spec, power-of-two policy,
/// in-range datapath, known platform, and a network that actually has
/// the declared shape (including inter-layer dimension chaining — a
/// chained mismatch would otherwise only surface as a matvec panic at
/// first inference).
fn validate_parts(
    spec: &ModelSpec,
    policy: &BlockPolicy,
    datapath: &DatapathConfig,
    device: Device,
    net: &RnnNetwork<WeightMatrix>,
) -> Result<(), PipelineError> {
    validate_spec(spec)?;
    validate_policy(policy)?;
    validate_datapath(datapath)?;
    if Device::by_name(device.name) != Some(device) {
        return Err(PipelineError::UnknownDevice(device.name.to_string()));
    }
    spec.matches(net).map_err(PipelineError::ShapeMismatch)
}

/// Rejects decoded layer dimensions that are zero or so large that
/// derived sizes (`4·h`, block grids) could overflow — far beyond any
/// model this workspace can represent anyway.
fn check_dim(dim: usize, layer: usize) -> Result<(), PipelineError> {
    if dim == 0 || dim > 1 << 24 {
        return Err(PipelineError::Corrupt(format!(
            "layer {layer} dimension {dim} is outside the supported range"
        )));
    }
    Ok(())
}

fn cell_tag(cell: CellType) -> u8 {
    match cell {
        CellType::Lstm => 0,
        CellType::Gru => 1,
    }
}

fn cell_from_tag(tag: u8) -> Result<CellType, PipelineError> {
    match tag {
        0 => Ok(CellType::Lstm),
        1 => Ok(CellType::Gru),
        t => Err(PipelineError::Corrupt(format!("unknown cell tag {t}"))),
    }
}

fn act_tag(act: Act) -> u8 {
    match act {
        Act::Sigmoid => 0,
        Act::Tanh => 1,
    }
}

fn act_from_tag(tag: u8) -> Result<Act, PipelineError> {
    match tag {
        0 => Ok(Act::Sigmoid),
        1 => Ok(Act::Tanh),
        t => Err(PipelineError::Corrupt(format!(
            "unknown activation tag {t}"
        ))),
    }
}

/// Little-endian encoder.
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn f32s(&mut self, v: &[f32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f32(x);
        }
    }
    fn dense(&mut self, m: &Matrix) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        self.f32s(m.as_slice());
    }
    fn weight(&mut self, w: &WeightMatrix) {
        match w {
            WeightMatrix::Dense(m) => {
                self.u8(0);
                self.dense(m);
            }
            WeightMatrix::Circulant(c) => {
                self.u8(1);
                self.u64(c.rows() as u64);
                self.u64(c.cols() as u64);
                self.u64(c.block_size() as u64);
                self.f32s(c.blocks());
            }
        }
    }
}

/// Bounds-checked little-endian decoder.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PipelineError> {
        let remaining = self.buf.len() - self.pos;
        if n > remaining {
            return Err(PipelineError::Truncated {
                needed: n,
                remaining,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PipelineError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, PipelineError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(PipelineError::Corrupt(format!(
                "flag byte must be 0/1, got {t}"
            ))),
        }
    }
    fn u32(&mut self) -> Result<u32, PipelineError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, PipelineError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn usize(&mut self) -> Result<usize, PipelineError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PipelineError::Corrupt(format!("{v} overflows usize")))
    }
    /// Reads a collection length and sanity-checks it against the bytes
    /// remaining (`min_item_bytes` per element), so a corrupted length
    /// cannot trigger a huge allocation.
    fn len(&mut self, min_item_bytes: usize) -> Result<usize, PipelineError> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        let needed = n.saturating_mul(min_item_bytes.max(1));
        if needed > remaining {
            return Err(PipelineError::Truncated { needed, remaining });
        }
        Ok(n)
    }
    fn f32(&mut self) -> Result<f32, PipelineError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, PipelineError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, PipelineError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }
    fn str(&mut self) -> Result<String, PipelineError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PipelineError::Corrupt("string is not UTF-8".into()))
    }
    fn f32s(&mut self) -> Result<Vec<f32>, PipelineError> {
        let n = self.len(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f32()?);
        }
        Ok(v)
    }
    fn f32s_exact(&mut self, expect: usize, what: &str) -> Result<Vec<f32>, PipelineError> {
        let v = self.f32s()?;
        if v.len() != expect {
            return Err(PipelineError::Corrupt(format!(
                "{what}: expected {expect} values, got {}",
                v.len()
            )));
        }
        Ok(v)
    }
    fn dense(&mut self) -> Result<Matrix, PipelineError> {
        let rows = self.usize()?;
        let cols = self.usize()?;
        let data = self.f32s()?;
        if data.len() != rows.saturating_mul(cols) {
            return Err(PipelineError::Corrupt(format!(
                "dense matrix {rows}×{cols} carries {} values",
                data.len()
            )));
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
    /// Decodes a weight matrix and checks it against the expected shape
    /// *before* any constructor that would panic can run.
    fn weight(
        &mut self,
        rows: usize,
        cols: usize,
        what: &str,
    ) -> Result<WeightMatrix, PipelineError> {
        match self.u8()? {
            0 => {
                let m = self.dense()?;
                if (m.rows(), m.cols()) != (rows, cols) {
                    return Err(PipelineError::Corrupt(format!(
                        "{what}: dense shape {}×{} (expected {rows}×{cols})",
                        m.rows(),
                        m.cols()
                    )));
                }
                Ok(WeightMatrix::Dense(m))
            }
            1 => {
                let r = self.usize()?;
                let c = self.usize()?;
                let block = self.usize()?;
                let blocks = self.f32s()?;
                if (r, c) != (rows, cols) {
                    return Err(PipelineError::Corrupt(format!(
                        "{what}: circulant shape {r}×{c} (expected {rows}×{cols})"
                    )));
                }
                if block == 0 || !ernn_fft::is_power_of_two(block) {
                    return Err(PipelineError::Corrupt(format!(
                        "{what}: block size {block} is not a power of two"
                    )));
                }
                let expect = rows.div_ceil(block) * cols.div_ceil(block) * block;
                if blocks.len() != expect {
                    return Err(PipelineError::Corrupt(format!(
                        "{what}: {} block parameters (expected {expect})",
                        blocks.len()
                    )));
                }
                Ok(WeightMatrix::Circulant(BlockCirculantMatrix::from_blocks(
                    rows, cols, block, blocks,
                )))
            }
            t => Err(PipelineError::Corrupt(format!(
                "{what}: unknown weight tag {t}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::XCKU060;
    use ernn_model::{compress_network, NetworkBuilder};
    use rand::SeedableRng;

    fn artifact(cell: CellType) -> ModelArtifact {
        let spec = ModelSpec::new(cell, 8, 5)
            .layer_dims(&[16])
            .peephole(cell == CellType::Lstm);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let dense = spec.builder().build(&mut rng);
        let policy = BlockPolicy::uniform(4);
        let net = compress_network(&dense, policy);
        let datapath = DatapathConfig::paper_12bit();
        let qnet = QuantizedNetwork::new(&net, &datapath);
        ModelArtifact::from_quantized(
            spec,
            policy,
            datapath,
            XCKU060,
            &qnet,
            Provenance {
                source: "unit test".into(),
                phase1: Some(Phase1Provenance {
                    baseline_per: 20.0,
                    chosen_per: 20.2,
                    trials: vec![TrialRecord {
                        cell,
                        block: 4,
                        io_block: 4,
                        per: 20.2,
                        accepted: true,
                    }],
                }),
                admm: Some(AdmmProvenance {
                    final_residual: 1e-4,
                    iterations: 3,
                    converged: true,
                }),
                quant_trials: vec![(8, 21.0), (12, 20.2)],
            },
        )
        .expect("valid artifact")
    }

    #[test]
    fn save_load_round_trips_bit_identically() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let a = artifact(cell);
            let bytes = a.save_bytes();
            let b = ModelArtifact::load_bytes(&bytes).expect("decodes");
            // Deterministic: re-encoding reproduces the bytes exactly.
            assert_eq!(b.save_bytes(), bytes, "{cell}");
            assert_eq!(b.spec, a.spec);
            assert_eq!(b.policy, a.policy);
            assert_eq!(b.datapath, a.datapath);
            assert_eq!(b.device, a.device);
            assert_eq!(b.provenance, a.provenance);
            // Functional equivalence, bit for bit.
            let frames = vec![vec![0.25f32; 8]; 4];
            let x = a.to_quantized().forward_logits(&frames);
            let y = b.to_quantized().forward_logits(&frames);
            assert_eq!(x, y, "{cell}");
        }
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        let bytes = artifact(CellType::Gru).save_bytes();
        // Every strict prefix must fail cleanly. Step 7 keeps the test
        // fast while still covering field boundaries of every width.
        for cut in (0..bytes.len()).step_by(7) {
            let err = ModelArtifact::load_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn bad_magic_and_version_are_reported() {
        let bytes = artifact(CellType::Gru).save_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert_eq!(
            ModelArtifact::load_bytes(&wrong_magic).unwrap_err(),
            PipelineError::BadMagic
        );
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert_eq!(
            ModelArtifact::load_bytes(&wrong_version).unwrap_err(),
            PipelineError::UnsupportedVersion {
                found: 99,
                supported: ARTIFACT_VERSION
            }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = artifact(CellType::Gru).save_bytes();
        bytes.push(0);
        assert!(matches!(
            ModelArtifact::load_bytes(&bytes),
            Err(PipelineError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_device_is_rejected_at_construction() {
        let spec = ModelSpec::new(CellType::Gru, 8, 5).layer_dims(&[16]);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let dense = spec.builder().build(&mut rng);
        let net = compress_network(&dense, BlockPolicy::uniform(4));
        let datapath = DatapathConfig::paper_12bit();
        let qnet = QuantizedNetwork::new(&net, &datapath);
        let bogus = Device {
            name: "made-up-board",
            ..XCKU060
        };
        let err = ModelArtifact::from_quantized(
            spec,
            BlockPolicy::uniform(4),
            datapath,
            bogus,
            &qnet,
            Provenance::default(),
        )
        .unwrap_err();
        assert_eq!(err, PipelineError::UnknownDevice("made-up-board".into()));
    }

    #[test]
    fn shape_mismatch_is_rejected_at_construction() {
        let spec = ModelSpec::new(CellType::Gru, 8, 5).layer_dims(&[32]);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let dense = NetworkBuilder::new(CellType::Gru, 8, 5)
            .layer_dims(&[16])
            .build(&mut rng);
        let net = compress_network(&dense, BlockPolicy::uniform(4));
        let datapath = DatapathConfig::paper_12bit();
        let qnet = QuantizedNetwork::new(&net, &datapath);
        let err = ModelArtifact::from_quantized(
            spec,
            BlockPolicy::uniform(4),
            datapath,
            XCKU060,
            &qnet,
            Provenance::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::ShapeMismatch(_)), "{err}");
    }

    #[test]
    fn validators_reject_bad_inputs() {
        assert!(validate_policy(&BlockPolicy::uniform(8)).is_ok());
        assert!(validate_policy(&BlockPolicy::uniform(1)).is_ok());
        assert!(validate_policy(&BlockPolicy::uniform(6)).is_err());
        assert!(validate_policy(&BlockPolicy::uniform(0)).is_err());
        assert!(validate_datapath(&DatapathConfig::paper_12bit()).is_ok());
        assert!(validate_datapath(&DatapathConfig {
            weight_bits: 1,
            activation_bits: 12,
            pwl_segments: 64
        })
        .is_err());
        assert!(validate_datapath(&DatapathConfig {
            weight_bits: 12,
            activation_bits: 12,
            pwl_segments: 1
        })
        .is_err());
    }
}
