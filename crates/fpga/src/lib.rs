//! FPGA hardware modelling for the E-RNN reproduction.
//!
//! The paper's Phase II (Sec. VII) maps a block-circulant RNN onto an FPGA:
//! processing elements (PEs) built from FFT units and multipliers
//! (Fig. 10), compute units (CUs) with three coarse-grained pipeline
//! stages and double buffers (Figs. 11/12), fixed-point datapaths and
//! piecewise-linear activations. Physical boards are not available here,
//! so this crate reproduces the *arithmetic* that generated Table III:
//!
//! * [`Device`] — the two platforms of Table IV with their DSP/BRAM/LUT/FF
//!   budgets and process nodes.
//! * [`PeDesign`] — per-PE resource and throughput model; the number of
//!   PEs follows the paper's `#PE = min(⌊DSP/ΔDSP⌋, ⌊LUT/ΔLUT⌋)`.
//! * [`Accelerator`] — the CU-level model: per-CGPipe-stage cycle counts,
//!   frame latency, pipelined throughput (FPS), and resource utilization.
//! * [`sim`] — a cycle-level event simulation of the 3-stage pipeline with
//!   double buffering, cross-checked against the closed-form model.
//! * [`power`] — a resource-based power model calibrated against the
//!   paper's wall-power measurements (ESE 41 W, E-RNN 22–29 W).
//! * [`exec`] — functional fixed-point execution of a compressed network
//!   (quantized weights + PWL activations), the accuracy oracle Phase II
//!   uses for quantization decisions.
//! * [`artifact`] — the versioned [`ModelArtifact`]: a quantized model
//!   plus its datapath, platform and design provenance, byte-serialized
//!   deterministically so the serving tier can load it without
//!   retraining, and the pipeline-wide [`PipelineError`] type.
//! * [`baseline`] — hardware models of ESE (sparse, irregular) and C-LSTM
//!   (circulant without E-RNN's PE optimizations) for the Table III
//!   comparison.
//! * [`fault`] — deterministic, seeded device-fault schedules
//!   ([`FaultPlan`]) and their pre-compiled per-run query form
//!   ([`FaultTimeline`]), the data model behind the serving tier's
//!   chaos testing and failover.
//! * [`transfer`] — the inter-node transfer-latency model
//!   ([`TransferModel`]): the cluster tier's analogue of the BRAM
//!   weight-streaming charge, pricing request forwarding and artifact
//!   replication in virtual microseconds.
//!
//! Absolute watts and microseconds are calibrated approximations (the
//! authors measured real boards); the quantities the reproduction relies
//! on are the *ratios* between designs, which come from counted work and
//! resource budgets rather than calibration.

mod accelerator;
pub mod artifact;
pub mod baseline;
mod device;
pub mod exec;
pub mod fault;
mod pe;
pub mod power;
pub mod sim;
pub mod transfer;

pub use accelerator::{AccelReport, Accelerator, HwCell, RnnSpec, StageCycles, RESOURCE_BUDGET};
pub use artifact::{ModelArtifact, PipelineError};
pub use device::{Device, ADM_PCIE_7V3, KNOWN_DEVICES, XCKU060};
pub use fault::{DeviceFault, FaultEvent, FaultHit, FaultPlan, FaultTimeline};
pub use pe::PeDesign;
pub use transfer::TransferModel;
