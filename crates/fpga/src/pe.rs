//! Processing-element cost and throughput model (paper Fig. 10).
//!
//! A PE contains two FFT operators (forward and inverse, shared across the
//! block ops it executes under time-division multiplexing), a bank of
//! complex multipliers, a conjugation unit, `log2(N)` shift registers and
//! an `N`-input adder tree. The PE streams one spectrum bin per cycle:
//! a block-pair multiply–accumulate (`conj(FFT(w_ij)) ∘ FFT(x_j)` plus
//! accumulation) of block size `L_b` therefore occupies the PE for
//! `L_b/2 + 1` cycles (Hermitian symmetry halves the bins, Sec. V-A2).

use crate::device::Device;

/// Resource/throughput model of one processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeDesign {
    /// Circulant block size `L_b` (the FFT size of the PE).
    pub block_size: usize,
    /// Fixed-point word length of the datapath.
    pub weight_bits: u8,
}

impl PeDesign {
    /// Creates a PE design.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two or `weight_bits` is
    /// outside `8..=32`.
    pub fn new(block_size: usize, weight_bits: u8) -> Self {
        assert!(
            ernn_fft::is_power_of_two(block_size),
            "block size must be a power of two"
        );
        assert!(
            (8..=32).contains(&weight_bits),
            "weight bits must be 8..=32"
        );
        PeDesign {
            block_size,
            weight_bits,
        }
    }

    /// DSP slices per PE.
    ///
    /// One streaming element-wise complex multiplier plus one
    /// spectrum-untangling multiplier (3 DSP48s each with the Karatsuba
    /// trick at ≤18-bit operands), plus one multiplier per FFT butterfly
    /// level past the two trivial-twiddle levels; the forward and inverse
    /// networks share their level multipliers under TDM (they serve
    /// opposite phases of the same stream). Wider-than-18-bit datapaths
    /// double the DSP cost (DSP48 cascading).
    pub fn dsp_per_pe(&self) -> u32 {
        let levels = ernn_fft::log2(self.block_size).saturating_sub(2);
        let complex_mult = if self.weight_bits <= 18 { 3 } else { 6 };
        (2 + levels) * complex_mult
    }

    /// LUTs per PE: butterfly add/sub datapaths, the adder tree, shift
    /// registers and control. Scales with `L_b·bits` (datapath width) plus
    /// a `log2(L_b)` control term. The real-valued symmetry of Sec. V-A2
    /// halves the butterfly network relative to a full complex FFT.
    pub fn lut_per_pe(&self) -> u32 {
        let n = self.block_size as u32;
        let bits = self.weight_bits as u32;
        let stages = ernn_fft::log2(n.max(2) as usize);
        // Adder tree: (N − 1) adders of `bits` width ≈ bits LUTs each.
        let adder_tree = (n - 1) * bits;
        // Two streaming FFT networks (forward + inverse), N/2·log2 N
        // butterflies halved by Hermitian symmetry, one add/sub pair each.
        let fft = n / 2 * stages * bits * 2;
        let control = 24 * stages + 220;
        adder_tree + fft + control
    }

    /// Flip-flops per PE (pipeline registers ≈ 0.9× the LUT count for a
    /// heavily pipelined streaming datapath).
    pub fn ff_per_pe(&self) -> u32 {
        (self.lut_per_pe() as f64 * 0.9) as u32
    }

    /// Cycles a PE is busy per block-pair multiply–accumulate: one
    /// Hermitian-unique spectrum bin per cycle.
    pub fn cycles_per_block_op(&self) -> u64 {
        (self.block_size as u64 / 2 + 1).max(1)
    }

    /// The paper's PE-count rule (Sec. VII-B):
    /// `#PE = min(⌊DSP/ΔDSP⌋, ⌊LUT/ΔLUT⌋)`, applied to the fraction of the
    /// device the accelerator may claim (`budget`, e.g. 0.75 leaves room
    /// for the controller, PCIe and buffers).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is not in `(0, 1]`.
    pub fn num_pes(&self, device: &Device, budget: f64) -> u32 {
        assert!(budget > 0.0 && budget <= 1.0, "budget must be in (0, 1]");
        let by_dsp = (device.dsp as f64 * budget) as u32 / self.dsp_per_pe();
        let by_lut = (device.lut as f64 * budget) as u32 / self.lut_per_pe();
        by_dsp.min(by_lut).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{ADM_PCIE_7V3, XCKU060};

    #[test]
    fn dsp_cost_grows_with_block_size() {
        let small = PeDesign::new(8, 12).dsp_per_pe();
        let large = PeDesign::new(16, 12).dsp_per_pe();
        assert!(large > small);
    }

    #[test]
    fn wide_datapath_doubles_multiplier_cost() {
        let narrow = PeDesign::new(8, 12).dsp_per_pe();
        let wide = PeDesign::new(8, 24).dsp_per_pe();
        assert_eq!(wide, 2 * narrow);
    }

    #[test]
    fn cycles_per_block_op_uses_hermitian_half() {
        assert_eq!(PeDesign::new(8, 12).cycles_per_block_op(), 5);
        assert_eq!(PeDesign::new(16, 12).cycles_per_block_op(), 9);
    }

    #[test]
    fn pe_count_respects_both_constraints() {
        let pe = PeDesign::new(8, 12);
        let n = pe.num_pes(&XCKU060, 0.8);
        assert!(n * pe.dsp_per_pe() <= (XCKU060.dsp as f64 * 0.8) as u32 + pe.dsp_per_pe());
        assert!(n * pe.lut_per_pe() <= (XCKU060.lut as f64 * 0.8) as u32 + pe.lut_per_pe());
        assert!(n >= 1);
    }

    #[test]
    fn seven_v3_fits_more_pes_than_ku060() {
        // The 7V3 has 1.3× the DSPs and 2.6× the LUTs of the KU060.
        for lb in [8usize, 16] {
            let pe = PeDesign::new(lb, 12);
            let n_7v3 = pe.num_pes(&ADM_PCIE_7V3, 0.8);
            let n_ku = pe.num_pes(&XCKU060, 0.8);
            assert!(n_7v3 > n_ku, "lb={lb}: {n_7v3} vs {n_ku}");
        }
    }

    #[test]
    fn ku060_binds_on_dsp() {
        // The KU060 binds on DSPs at both FFT sizes — consistent with the
        // paper's ≥95% DSP utilization rows for the KU060 designs.
        for lb in [8usize, 16] {
            let pe = PeDesign::new(lb, 12);
            assert!(
                XCKU060.dsp / pe.dsp_per_pe() <= XCKU060.lut / pe.lut_per_pe(),
                "lb={lb}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_block() {
        let _ = PeDesign::new(12, 12);
    }
}
