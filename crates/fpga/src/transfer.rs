//! Inter-node transfer-latency model for the cluster tier.
//!
//! One FPGA instance charges BRAM weight streaming as virtual stall
//! time (`DeviceResidency::load_us` in the serving tier: bytes over a
//! fixed streaming bandwidth). The cluster tier needs the same kind of
//! deterministic charge one level up: moving bytes **between nodes** —
//! forwarding a request's feature frames from the router to a shard, or
//! replicating a serialized [`ModelArtifact`](crate::ModelArtifact) to
//! a replica shard — takes wire time that the virtual clock must see,
//! or the simulated cluster would enjoy free networking.
//!
//! [`TransferModel`] is that charge: a fixed per-message latency plus a
//! bandwidth term, `base_us + bytes / bytes_per_us`. It is deliberately
//! the same closed-form shape as the BRAM streaming charge so the two
//! compose into one latency story, and like every other timing model in
//! this crate it is pure arithmetic — deterministic, executor-independent
//! and platform-agnostic.

/// Deterministic inter-node transfer charge: `base_us + bytes /
/// bytes_per_us` virtual microseconds per message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Fixed per-message latency (µs): propagation, NIC and protocol
    /// overhead — paid even for an empty payload.
    pub base_us: f64,
    /// Wire bandwidth (bytes per virtual µs).
    pub bytes_per_us: f64,
}

impl TransferModel {
    /// A model with the given fixed latency (µs) and bandwidth
    /// (bytes/µs).
    ///
    /// # Panics
    ///
    /// Panics unless `base_us` is finite and non-negative and
    /// `bytes_per_us` is positive (`f64::INFINITY` is allowed — it
    /// makes the bandwidth term vanish).
    pub fn new(base_us: f64, bytes_per_us: f64) -> Self {
        assert!(
            base_us.is_finite() && base_us >= 0.0,
            "base_us must be finite and non-negative, got {base_us}"
        );
        assert!(
            bytes_per_us > 0.0,
            "bytes_per_us must be positive, got {bytes_per_us}"
        );
        TransferModel {
            base_us,
            bytes_per_us,
        }
    }

    /// Same-rack datacenter networking: ~5 µs fixed latency and
    /// 3125 bytes/µs (a 25 Gb/s link) — the default the cluster router
    /// charges for request forwarding and artifact replication.
    pub fn intra_rack() -> Self {
        TransferModel::new(5.0, 3125.0)
    }

    /// A free network: zero fixed latency, infinite bandwidth. Every
    /// transfer costs exactly 0 µs — the control knob that makes a
    /// one-shard cluster reduce to the bare scheduler for equivalence
    /// tests.
    pub fn zero() -> Self {
        TransferModel::new(0.0, f64::INFINITY)
    }

    /// Virtual microseconds to move `bytes` over this link.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        self.base_us + bytes as f64 / self.bytes_per_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_is_base_plus_bandwidth_term() {
        let m = TransferModel::new(5.0, 1000.0);
        assert_eq!(m.transfer_us(0), 5.0);
        assert_eq!(m.transfer_us(2000), 7.0);
    }

    #[test]
    fn zero_model_charges_nothing() {
        let m = TransferModel::zero();
        assert_eq!(m.transfer_us(0), 0.0);
        assert_eq!(m.transfer_us(u64::MAX), 0.0);
    }

    #[test]
    fn intra_rack_is_monotone_in_bytes() {
        let m = TransferModel::intra_rack();
        assert!(m.transfer_us(1 << 20) > m.transfer_us(1 << 10));
    }

    #[test]
    #[should_panic(expected = "bytes_per_us must be positive")]
    fn rejects_zero_bandwidth() {
        TransferModel::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "base_us must be finite")]
    fn rejects_negative_base() {
        TransferModel::new(-1.0, 1.0);
    }
}
