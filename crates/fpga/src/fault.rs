//! Deterministic, seeded fault injection for virtual device pools.
//!
//! A production pool cannot assume devices are immortal: boards crash
//! (power events wipe BRAM), brown out (thermal throttling stretches
//! every pipeline stage), and glitch (a transient upset kills one
//! in-flight batch). This module models those hazards as *data*: a
//! [`FaultPlan`] is a virtual-time schedule of [`DeviceFault`] events,
//! either written explicitly or generated from a seed, that a runtime
//! replays deterministically. Nothing here touches wall-clock time or
//! OS-level randomness — the same plan against the same workload yields
//! bit-identical traces, which is what makes chaos testing a regression
//! test rather than a flake generator.
//!
//! The plan itself is immutable. Runtimes compile it into a
//! [`FaultTimeline`] — a per-device, pre-sized query structure whose
//! lookups ([`FaultTimeline::is_down`],
//! [`FaultTimeline::cycle_multiplier`],
//! [`FaultTimeline::abort_between`]) never allocate, so the steady-state
//! serve path stays zero-alloc with fault injection enabled (proved in
//! `tests/kernel_alloc.rs`).

/// One kind of injected device fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceFault {
    /// Power loss: the device goes down at the fault instant for
    /// `down_us` of virtual time and its BRAM contents (weight and
    /// session-state images) are wiped. `f64::INFINITY` models a
    /// permanent loss — the device never rejoins the pool.
    Crash {
        /// How long the device stays down (µs); `INFINITY` = forever.
        down_us: f64,
    },
    /// Thermal/voltage degradation: for `duration_us` the device keeps
    /// serving, but every CGPipe stage is stretched by
    /// `cycle_multiplier` (≥ 1.0). No state is lost and no batch is
    /// aborted — work just takes longer.
    Brownout {
        /// Stage-cycle stretch factor, ≥ 1.0.
        cycle_multiplier: f64,
        /// How long the degradation lasts (µs).
        duration_us: f64,
    },
    /// A single-event upset at the fault instant: the batch in flight on
    /// the device (if any) is aborted and must be retried, but the
    /// device stays up and resident images survive. A transient that
    /// strikes an idle device is harmless.
    Transient,
}

/// One scheduled fault: `fault` strikes `device` at virtual time `t_us`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Virtual time of the fault (µs, ≥ 0).
    pub t_us: f64,
    /// Pool index of the device struck.
    pub device: usize,
    /// What happens.
    pub fault: DeviceFault,
}

/// A deterministic virtual-time schedule of device faults, sorted by
/// time. Install one via the serving runtime's configuration; an empty
/// plan (the default) means no faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// An explicit plan. Events are sorted by `(t_us, device)`; the
    /// schedule is validated eagerly so a bad plan fails at
    /// construction, not mid-run.
    ///
    /// # Panics
    ///
    /// Panics if any event has a non-finite or negative `t_us`, a crash
    /// with `down_us <= 0` (other than `INFINITY`), a brownout with
    /// `cycle_multiplier < 1.0` or non-positive/non-finite
    /// `duration_us`.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        for e in &events {
            assert!(
                e.t_us.is_finite() && e.t_us >= 0.0,
                "fault time must be finite and non-negative, got {}",
                e.t_us
            );
            match e.fault {
                DeviceFault::Crash { down_us } => assert!(
                    down_us > 0.0,
                    "crash down_us must be positive (INFINITY allowed), got {down_us}"
                ),
                DeviceFault::Brownout {
                    cycle_multiplier,
                    duration_us,
                } => {
                    assert!(
                        cycle_multiplier.is_finite() && cycle_multiplier >= 1.0,
                        "brownout cycle_multiplier must be finite and >= 1.0, got {cycle_multiplier}"
                    );
                    assert!(
                        duration_us.is_finite() && duration_us > 0.0,
                        "brownout duration_us must be finite and positive, got {duration_us}"
                    );
                }
                DeviceFault::Transient => {}
            }
        }
        events.sort_by(|a, b| {
            a.t_us
                .partial_cmp(&b.t_us)
                .expect("fault times are finite")
                .then(a.device.cmp(&b.device))
        });
        FaultPlan { events }
    }

    /// A seeded pseudo-random plan: `faults` events spread over
    /// `[0, horizon_us)` across `devices` devices, mixing crashes
    /// (recoverable), brownouts, and transients. Deterministic in
    /// `seed` — the same arguments always produce the same plan.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or `horizon_us` is not finite and
    /// positive.
    pub fn seeded(seed: u64, devices: usize, horizon_us: f64, faults: usize) -> Self {
        assert!(devices > 0, "need at least one device to fault");
        assert!(
            horizon_us.is_finite() && horizon_us > 0.0,
            "horizon_us must be finite and positive"
        );
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::with_capacity(faults);
        for i in 0..faults {
            // Stratify times across the horizon so faults don't clump
            // at one instant regardless of seed quality.
            let slot = horizon_us / faults.max(1) as f64;
            let t_us = slot * (i as f64 + rng.next_f64());
            let device = (rng.next_u64() % devices as u64) as usize;
            let fault = match rng.next_u64() % 3 {
                0 => DeviceFault::Crash {
                    down_us: slot * (0.5 + rng.next_f64()),
                },
                1 => DeviceFault::Brownout {
                    cycle_multiplier: 1.5 + 2.0 * rng.next_f64(),
                    duration_us: slot * (0.5 + rng.next_f64()),
                },
                _ => DeviceFault::Transient,
            };
            events.push(FaultEvent {
                t_us,
                device,
                fault,
            });
        }
        FaultPlan::new(events)
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The scheduled events, sorted by `(t_us, device)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The largest device index named by the plan, if any — runtimes
    /// validate this against their pool size before a run.
    pub fn max_device(&self) -> Option<usize> {
        self.events.iter().map(|e| e.device).max()
    }

    /// Compiles the plan into a per-run, per-device query structure.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a device `>= devices`.
    pub fn timeline(&self, devices: usize) -> FaultTimeline {
        FaultTimeline::new(self, devices)
    }
}

/// An abort hazard found by [`FaultTimeline::abort_between`]: the first
/// crash start or unconsumed transient inside a prospective batch
/// window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultHit {
    /// Virtual time the fault strikes (µs).
    pub t_us: f64,
    /// True for a crash (BRAM wiped, device down), false for a
    /// transient (batch lost, device survives).
    pub is_crash: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct CrashRec {
    start_us: f64,
    end_us: f64,
    /// The crash's effects (BRAM wipe, down transition) were applied.
    applied: bool,
    /// The recovery (up transition) was observed, for finite crashes.
    recovered: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct BrownoutRec {
    start_us: f64,
    end_us: f64,
    multiplier: f64,
    /// The onset was observed (for counters).
    noted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct TransientRec {
    t_us: f64,
    /// The upset already aborted a batch; each transient kills at most
    /// one.
    consumed: bool,
}

/// Per-run compiled view of a [`FaultPlan`]: per-device crash/brownout/
/// transient records, fully pre-sized at construction so every query is
/// allocation-free. The structure is mutable only in its bookkeeping
/// flags (which crash has been applied, which transient consumed) —
/// the schedule itself never changes mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTimeline {
    crashes: Vec<Vec<CrashRec>>,
    brownouts: Vec<Vec<BrownoutRec>>,
    transients: Vec<Vec<TransientRec>>,
}

impl FaultTimeline {
    /// Compiles `plan` for a pool of `devices` devices.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a device `>= devices`.
    pub fn new(plan: &FaultPlan, devices: usize) -> Self {
        if let Some(max) = plan.max_device() {
            assert!(
                max < devices,
                "fault plan names device {max} but the pool has {devices} devices"
            );
        }
        let mut tl = FaultTimeline {
            crashes: vec![Vec::new(); devices],
            brownouts: vec![Vec::new(); devices],
            transients: vec![Vec::new(); devices],
        };
        for e in plan.events() {
            match e.fault {
                DeviceFault::Crash { down_us } => tl.crashes[e.device].push(CrashRec {
                    start_us: e.t_us,
                    end_us: e.t_us + down_us,
                    applied: false,
                    recovered: false,
                }),
                DeviceFault::Brownout {
                    cycle_multiplier,
                    duration_us,
                } => tl.brownouts[e.device].push(BrownoutRec {
                    start_us: e.t_us,
                    end_us: e.t_us + duration_us,
                    multiplier: cycle_multiplier,
                    noted: false,
                }),
                DeviceFault::Transient => tl.transients[e.device].push(TransientRec {
                    t_us: e.t_us,
                    consumed: false,
                }),
            }
        }
        tl
    }

    /// Number of devices the timeline covers.
    pub fn devices(&self) -> usize {
        self.crashes.len()
    }

    /// Whether device `d` is inside a crash's down interval at time `t`
    /// (down intervals are half-open `[start, start + down_us)`).
    pub fn is_down(&self, d: usize, t: f64) -> bool {
        self.crashes[d]
            .iter()
            .any(|c| t >= c.start_us && t < c.end_us)
    }

    /// Whether device `d` is down at `t` and never recovers (an
    /// infinite crash).
    pub fn is_down_forever(&self, d: usize, t: f64) -> bool {
        self.crashes[d]
            .iter()
            .any(|c| t >= c.start_us && c.end_us == f64::INFINITY)
    }

    /// The earliest time `>= t` at which device `d` is up, pushing `t`
    /// past every covering down interval; `INFINITY` if the device is
    /// inside a permanent crash.
    pub fn next_up(&self, d: usize, t: f64) -> f64 {
        let mut t = t;
        // Down intervals may chain (a crash during another's recovery
        // window), so iterate to a fixed point; each pass either leaves
        // `t` unchanged or advances it past one interval's end.
        loop {
            let mut moved = false;
            for c in &self.crashes[d] {
                if t >= c.start_us && t < c.end_us {
                    t = c.end_us;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// The stage-cycle stretch factor in force on device `d` at time
    /// `t`: the multiplier of the first active brownout, or `1.0` when
    /// the device is healthy.
    pub fn cycle_multiplier(&self, d: usize, t: f64) -> f64 {
        self.brownouts[d]
            .iter()
            .find(|b| t >= b.start_us && t < b.end_us)
            .map_or(1.0, |b| b.multiplier)
    }

    /// The first abort hazard for device `d` inside the prospective
    /// occupancy window `[from, to)`: an unapplied crash start or an
    /// unconsumed transient. Returns `None` when the window is clear
    /// and the batch may commit.
    pub fn abort_between(&self, d: usize, from: f64, to: f64) -> Option<FaultHit> {
        let mut hit: Option<FaultHit> = None;
        for c in &self.crashes[d] {
            if !c.applied
                && c.start_us >= from
                && c.start_us < to
                && hit.is_none_or(|h| c.start_us < h.t_us)
            {
                hit = Some(FaultHit {
                    t_us: c.start_us,
                    is_crash: true,
                });
            }
        }
        for tr in &self.transients[d] {
            if !tr.consumed
                && tr.t_us >= from
                && tr.t_us < to
                && hit.is_none_or(|h| tr.t_us < h.t_us)
            {
                hit = Some(FaultHit {
                    t_us: tr.t_us,
                    is_crash: false,
                });
            }
        }
        hit
    }

    /// Marks the transient on device `d` at exactly `t` consumed (it
    /// aborted a batch). No-op if no such transient exists.
    pub fn consume_transient(&mut self, d: usize, t: f64) {
        if let Some(tr) = self.transients[d]
            .iter_mut()
            .find(|tr| !tr.consumed && tr.t_us == t)
        {
            tr.consumed = true;
        }
    }

    /// Marks the crash on device `d` starting at exactly `t` applied
    /// and returns its down interval. Used when a look-ahead abort
    /// applies a crash's effects at the abort instant, ahead of the
    /// lazy cursor.
    pub fn mark_crash_applied(&mut self, d: usize, t: f64) -> Option<(f64, f64)> {
        self.crashes[d]
            .iter_mut()
            .find(|c| !c.applied && c.start_us == t)
            .map(|c| {
                c.applied = true;
                (c.start_us, c.end_us)
            })
    }

    /// Pops the globally earliest unapplied crash with `start <= t`,
    /// marking it applied: `(device, start, end)`. Drives the runtime's
    /// lazy fault cursor as virtual time advances.
    pub fn pop_crash_through(&mut self, t: f64) -> Option<(usize, f64, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for (d, crashes) in self.crashes.iter().enumerate() {
            for (i, c) in crashes.iter().enumerate() {
                if !c.applied && c.start_us <= t && best.is_none_or(|(_, _, bt)| c.start_us < bt) {
                    best = Some((d, i, c.start_us));
                }
            }
        }
        best.map(|(d, i, _)| {
            let c = &mut self.crashes[d][i];
            c.applied = true;
            (d, c.start_us, c.end_us)
        })
    }

    /// Pops the globally earliest unobserved recovery of an *applied*,
    /// finite crash with `end <= t`: `(device, end)`.
    pub fn pop_recovery_through(&mut self, t: f64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for (d, crashes) in self.crashes.iter().enumerate() {
            for (i, c) in crashes.iter().enumerate() {
                if c.applied
                    && !c.recovered
                    && c.end_us <= t
                    && best.is_none_or(|(_, _, bt)| c.end_us < bt)
                {
                    best = Some((d, i, c.end_us));
                }
            }
        }
        best.map(|(d, i, _)| {
            let c = &mut self.crashes[d][i];
            c.recovered = true;
            (d, c.end_us)
        })
    }

    /// Pops the globally earliest unnoted brownout onset with
    /// `start <= t`: `(device, start, multiplier)`. Used for fault
    /// counters — brownouts need no other runtime reaction, their
    /// stretch is picked up by [`Self::cycle_multiplier`].
    pub fn pop_brownout_through(&mut self, t: f64) -> Option<(usize, f64, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for (d, brownouts) in self.brownouts.iter().enumerate() {
            for (i, b) in brownouts.iter().enumerate() {
                if !b.noted && b.start_us <= t && best.is_none_or(|(_, _, bt)| b.start_us < bt) {
                    best = Some((d, i, b.start_us));
                }
            }
        }
        best.map(|(d, i, _)| {
            let b = &mut self.brownouts[d][i];
            b.noted = true;
            (d, b.start_us, b.multiplier)
        })
    }

    /// Number of devices that are *up* at time `t` (not inside any down
    /// interval). Admission predictors divide backlog by this instead
    /// of the nominal pool size, tightening estimates under capacity
    /// loss.
    pub fn devices_up(&self, t: f64) -> usize {
        (0..self.devices()).filter(|&d| !self.is_down(d, t)).count()
    }
}

/// SplitMix64 — the classic 64-bit mixing PRNG (Steele et al., "Fast
/// splittable pseudorandom number generators"). Tiny, allocation-free,
/// and deterministic; used only to expand a fault-plan seed.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(t: f64, device: usize, down: f64) -> FaultEvent {
        FaultEvent {
            t_us: t,
            device,
            fault: DeviceFault::Crash { down_us: down },
        }
    }

    #[test]
    fn plans_sort_events_by_time() {
        let plan = FaultPlan::new(vec![crash(50.0, 1, 10.0), crash(10.0, 0, 5.0)]);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].t_us, 10.0);
        assert_eq!(plan.max_device(), Some(1));
        assert!(FaultPlan::empty().is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::seeded(42, 3, 10_000.0, 16);
        let b = FaultPlan::seeded(42, 3, 10_000.0, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        for e in a.events() {
            assert!(e.t_us >= 0.0 && e.t_us < 10_000.0);
            assert!(e.device < 3);
        }
        let c = FaultPlan::seeded(43, 3, 10_000.0, 16);
        assert_ne!(a, c);
    }

    #[test]
    fn down_intervals_and_next_up() {
        let tl = FaultPlan::new(vec![crash(100.0, 0, 50.0)]).timeline(2);
        assert!(!tl.is_down(0, 99.9));
        assert!(tl.is_down(0, 100.0));
        assert!(tl.is_down(0, 149.9));
        assert!(!tl.is_down(0, 150.0));
        assert!(!tl.is_down(1, 120.0));
        assert_eq!(tl.next_up(0, 120.0), 150.0);
        assert_eq!(tl.next_up(0, 99.0), 99.0);
        assert_eq!(tl.devices_up(120.0), 1);
        assert_eq!(tl.devices_up(200.0), 2);
    }

    #[test]
    fn permanent_crashes_never_recover() {
        let mut tl = FaultPlan::new(vec![crash(10.0, 0, f64::INFINITY)]).timeline(1);
        assert!(tl.is_down_forever(0, 10.0));
        assert_eq!(tl.next_up(0, 10.0), f64::INFINITY);
        assert_eq!(tl.pop_crash_through(20.0), Some((0, 10.0, f64::INFINITY)));
        // An infinite crash's recovery never arrives.
        assert_eq!(tl.pop_recovery_through(f64::MAX), None);
    }

    #[test]
    fn brownout_multiplier_is_windowed() {
        let plan = FaultPlan::new(vec![FaultEvent {
            t_us: 100.0,
            device: 0,
            fault: DeviceFault::Brownout {
                cycle_multiplier: 2.0,
                duration_us: 50.0,
            },
        }]);
        let mut tl = plan.timeline(1);
        assert_eq!(tl.cycle_multiplier(0, 99.0), 1.0);
        assert_eq!(tl.cycle_multiplier(0, 100.0), 2.0);
        assert_eq!(tl.cycle_multiplier(0, 149.9), 2.0);
        assert_eq!(tl.cycle_multiplier(0, 150.0), 1.0);
        assert_eq!(tl.pop_brownout_through(100.0), Some((0, 100.0, 2.0)));
        assert_eq!(tl.pop_brownout_through(1e9), None);
    }

    #[test]
    fn abort_between_finds_first_hazard_and_consumes_transients() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                t_us: 120.0,
                device: 0,
                fault: DeviceFault::Transient,
            },
            crash(140.0, 0, 30.0),
        ]);
        let mut tl = plan.timeline(1);
        let hit = tl.abort_between(0, 100.0, 200.0).unwrap();
        assert_eq!(hit.t_us, 120.0);
        assert!(!hit.is_crash);
        tl.consume_transient(0, 120.0);
        // Transient spent: the crash is next.
        let hit = tl.abort_between(0, 100.0, 200.0).unwrap();
        assert_eq!(hit.t_us, 140.0);
        assert!(hit.is_crash);
        assert_eq!(tl.mark_crash_applied(0, 140.0), Some((140.0, 170.0)));
        // Applied crash no longer aborts.
        assert_eq!(tl.abort_between(0, 100.0, 200.0), None);
    }

    #[test]
    fn lazy_cursor_pops_in_time_order_exactly_once() {
        let plan = FaultPlan::new(vec![crash(30.0, 1, 10.0), crash(10.0, 0, 5.0)]);
        let mut tl = plan.timeline(2);
        assert_eq!(tl.pop_crash_through(100.0), Some((0, 10.0, 15.0)));
        assert_eq!(tl.pop_crash_through(100.0), Some((1, 30.0, 40.0)));
        assert_eq!(tl.pop_crash_through(100.0), None);
        assert_eq!(tl.pop_recovery_through(100.0), Some((0, 15.0)));
        assert_eq!(tl.pop_recovery_through(100.0), Some((1, 40.0)));
        assert_eq!(tl.pop_recovery_through(100.0), None);
    }

    #[test]
    #[should_panic(expected = "names device 3")]
    fn timelines_reject_out_of_range_devices() {
        let _ = FaultPlan::new(vec![crash(1.0, 3, 1.0)]).timeline(2);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn plans_reject_negative_times() {
        let _ = FaultPlan::new(vec![crash(-1.0, 0, 1.0)]);
    }
}
