//! Compute-unit level performance model (paper Figs. 11/12, Table III).
//!
//! A CU executes one RNN layer per frame through three coarse-grained
//! pipeline stages (CGPipe) separated by double buffers:
//!
//! * **LSTM** — stage 1: the fused gate matvec `W_(ifgo)(xr)·[x, y₋₁]`;
//!   stage 2: peepholes, cell update, activations (point-wise); stage 3:
//!   the projection matvec `W_ym·m`.
//! * **GRU** — stage 1: the fused gate matvec `W_(zr)(xc)·[x, c₋₁]`;
//!   stage 2: the candidate matvecs `W_c̃x·x` and `W_c̃c·(r ⊙ c₋₁)`;
//!   stage 3: point-wise interpolation and activations.
//!
//! With double buffering, a new frame enters every `II = max(stage)`
//! cycles and the end-to-end latency is `3·II` — which is exactly the
//! relationship visible in the paper's Table III (FPS ≈ 3 / latency for
//! every pipelined design). All cycle counts are *counted work* divided by
//! the PE count from the resource rule; there are no calibration fudge
//! factors in the performance path.

use crate::device::Device;
use crate::pe::PeDesign;

/// Fraction of device resources available to the accelerator datapath
/// (the rest holds the controller, PCIe interface and I/O buffers).
pub const RESOURCE_BUDGET: f64 = 0.8;

/// The cell type of a hardware RNN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwCell {
    /// LSTM with optional recurrent projection dimension.
    Lstm {
        /// Projection dimension `R` (None → `R = hidden`).
        projection: Option<usize>,
    },
    /// The paper's GRU variant.
    Gru,
}

/// Hardware-level description of the RNN workload (the paper's Table III
/// benchmarks the top layer of the ESE acoustic model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RnnSpec {
    /// Cell type.
    pub cell: HwCell,
    /// Input feature dimension per frame.
    pub input_dim: usize,
    /// Hidden ("layer size") dimension.
    pub hidden_dim: usize,
    /// Circulant block size for recurrent matrices.
    pub block_size: usize,
    /// Circulant block size for input/output matrices (Phase I step 3 may
    /// choose a larger one; equal to `block_size` by default).
    pub io_block_size: usize,
    /// Fixed-point word length.
    pub weight_bits: u8,
    /// Number of stacked layers stored on chip (performance is quoted per
    /// top layer like the paper; storage accounts for all of them).
    pub layers: usize,
}

impl RnnSpec {
    /// The paper's LSTM benchmark: LSTM-1024 with projection 512 and the
    /// ESE input dimension (153), two stacked layers.
    pub fn lstm_1024(block_size: usize, weight_bits: u8) -> Self {
        RnnSpec {
            cell: HwCell::Lstm {
                projection: Some(512),
            },
            input_dim: 153,
            hidden_dim: 1024,
            block_size,
            io_block_size: block_size,
            weight_bits,
            layers: 2,
        }
    }

    /// The paper's GRU benchmark: GRU-1024, two stacked layers.
    pub fn gru_1024(block_size: usize, weight_bits: u8) -> Self {
        RnnSpec {
            cell: HwCell::Gru,
            input_dim: 153,
            hidden_dim: 1024,
            block_size,
            io_block_size: block_size,
            weight_bits,
            layers: 2,
        }
    }

    /// The recurrent output dimension (projection or hidden).
    pub fn output_dim(&self) -> usize {
        match self.cell {
            HwCell::Lstm { projection } => projection.unwrap_or(self.hidden_dim),
            HwCell::Gru => self.hidden_dim,
        }
    }

    /// Dense (uncompressed) parameter count of one layer's weight
    /// matrices.
    pub fn dense_params(&self) -> u64 {
        let (i, h, r) = (
            self.input_dim as u64,
            self.hidden_dim as u64,
            self.output_dim() as u64,
        );
        match self.cell {
            HwCell::Lstm { projection } => {
                let gates = 4 * h * (i + r);
                let proj = if projection.is_some() { r * h } else { 0 };
                gates + proj
            }
            HwCell::Gru => 2 * h * (i + h) + h * i + h * h,
        }
    }

    /// Compressed parameter count of one layer (block-circulant storage
    /// with edge padding).
    pub fn compressed_params(&self) -> u64 {
        self.matvecs()
            .iter()
            .map(|m| {
                let p = m.rows.div_ceil(m.block) as u64;
                let q = m.cols.div_ceil(m.block) as u64;
                p * q * m.block as u64
            })
            .sum()
    }

    /// Weight-matrix compression ratio (the paper's "Matrix Compression
    /// Ratio" row).
    pub fn compression_ratio(&self) -> f64 {
        self.dense_params() as f64 / self.compressed_params() as f64
    }

    /// On-chip weight bytes for all layers: spectra of the defining
    /// vectors (`L_b/2 + 1` complex values per block) at `weight_bits`.
    pub fn weight_bytes(&self) -> u64 {
        let bits: u64 = self
            .matvecs()
            .iter()
            .map(|m| {
                let p = m.rows.div_ceil(m.block) as u64;
                let q = m.cols.div_ceil(m.block) as u64;
                let reals_per_block = (m.block as u64 / 2 + 1) * 2;
                p * q * reals_per_block * self.weight_bits as u64
            })
            .sum();
        bits * self.layers as u64 / 8
    }

    /// Phase-I step-1 sanity check: does the whole model (plus an I/O
    /// reserve) fit in on-chip BRAM? (Fig. 2, "Fit into FPGA?")
    pub fn fits_in_bram(&self, device: &Device) -> bool {
        // Keep 20% of BRAM for input/output and double buffers, matching
        // the paper's "a block size 8 will be safer in order to allocate
        // certain portion of BRAM for inputs/outputs".
        self.weight_bytes() as f64 <= device.bram_bytes() as f64 * 0.8
    }

    /// The weight matvecs of one layer with their pipeline stage
    /// assignment (1-based CGPipe stage).
    fn matvecs(&self) -> Vec<MatvecWork> {
        let (i, h, r) = (self.input_dim, self.hidden_dim, self.output_dim());
        match self.cell {
            HwCell::Lstm { projection } => {
                let mut v = vec![
                    MatvecWork {
                        rows: 4 * h,
                        cols: i,
                        block: self.io_block_size,
                        stage: 1,
                    },
                    MatvecWork {
                        rows: 4 * h,
                        cols: r,
                        block: self.block_size,
                        stage: 1,
                    },
                ];
                if projection.is_some() {
                    v.push(MatvecWork {
                        rows: r,
                        cols: h,
                        block: self.io_block_size,
                        stage: 3,
                    });
                }
                v
            }
            HwCell::Gru => vec![
                MatvecWork {
                    rows: 2 * h,
                    cols: i + h,
                    block: self.block_size,
                    stage: 1,
                },
                MatvecWork {
                    rows: h,
                    cols: i,
                    block: self.io_block_size,
                    stage: 2,
                },
                MatvecWork {
                    rows: h,
                    cols: h,
                    block: self.block_size,
                    stage: 2,
                },
            ],
        }
    }

    /// Point-wise multiply count and activation count, with their stage.
    fn pointwise(&self) -> (u64, u64, usize) {
        let h = self.hidden_dim as u64;
        match self.cell {
            // Peepholes (3H), cell update (2H), output gate product (1H);
            // activations: 3 sigmoids + cell tanh + output tanh.
            HwCell::Lstm { .. } => (6 * h, 5 * h, 2),
            // r⊙c, (1−z)⊙c, z⊙c̃; activations: z, r sigmoids + c̃ tanh.
            HwCell::Gru => (3 * h, 3 * h, 3),
        }
    }
}

/// One weight matvec's dimensions, block size and pipeline stage.
#[derive(Debug, Clone, Copy)]
struct MatvecWork {
    rows: usize,
    cols: usize,
    block: usize,
    stage: usize,
}

/// Cycle counts of the three CGPipe stages for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCycles {
    /// Stage-1 cycles.
    pub stage1: u64,
    /// Stage-2 cycles.
    pub stage2: u64,
    /// Stage-3 cycles.
    pub stage3: u64,
}

impl StageCycles {
    /// Initiation interval: the longest stage (a new frame enters every
    /// `II` cycles thanks to the double buffers).
    pub fn ii(&self) -> u64 {
        self.stage1.max(self.stage2).max(self.stage3)
    }

    /// End-to-end frame latency in cycles (`pipeline depth × II`).
    pub fn latency_cycles(&self) -> u64 {
        3 * self.ii()
    }

    /// Cycles as an array.
    pub fn as_array(&self) -> [u64; 3] {
        [self.stage1, self.stage2, self.stage3]
    }

    /// Sum of the three stage durations: the pipeline fill, and the exact
    /// latency of the first frame through an idle CGPipe.
    pub fn fill_cycles(&self) -> u64 {
        self.stage1 + self.stage2 + self.stage3
    }

    /// Closed-form completion cycle of the `frame`-th frame (1-indexed)
    /// in a back-to-back stream through an initially idle pipeline:
    /// `fill + (frame − 1) · II`. This is *exact* against the
    /// event-driven [`crate::sim::simulate_batch`] (property-tested
    /// there), which is what lets the serving scheduler's cost model
    /// predict batch makespans without running the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `frame == 0` (frames are 1-indexed).
    pub fn stream_completion_cycles(&self, frame: u64) -> u64 {
        assert!(frame > 0, "frames are 1-indexed");
        self.fill_cycles() + (frame - 1) * self.ii()
    }

    /// The same pipeline with every stage stretched by `factor` —
    /// the timing of a device in brownout (thermal or voltage
    /// degradation slows the whole fabric uniformly). Stage cycles are
    /// rounded up and never drop below one cycle, so `scaled(1.0)` is
    /// the identity and the result stays a valid pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or is `< 1.0` — brownouts only
    /// ever slow a device down.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "stage scale factor must be finite and >= 1.0, got {factor}"
        );
        let stretch = |c: u64| ((c as f64 * factor).ceil() as u64).max(1);
        StageCycles {
            stage1: stretch(self.stage1),
            stage2: stretch(self.stage2),
            stage3: stretch(self.stage3),
        }
    }

    /// Per-frame CGPipe timing of the paper's FFT8 LSTM-1024 design on
    /// the Kintex UltraScale KU060 (Table III's "E-RNN FFT8" column) —
    /// a named preset for building heterogeneous device pools.
    pub fn xcku060() -> Self {
        Accelerator::new(RnnSpec::lstm_1024(8, 12), crate::device::XCKU060).stage_cycles()
    }

    /// Per-frame CGPipe timing of the same design on the Virtex-7 690t
    /// (ADM-PCIE-7V3). More DSPs than the KU060, hence the faster II —
    /// the per-platform `StageCycles` gap that makes placement in a mixed
    /// pool a cost-model decision rather than earliest-free.
    pub fn virtex7_690t() -> Self {
        Accelerator::new(RnnSpec::lstm_1024(8, 12), crate::device::ADM_PCIE_7V3).stage_cycles()
    }
}

/// A fully configured accelerator on a device.
#[derive(Debug, Clone)]
pub struct Accelerator {
    spec: RnnSpec,
    device: Device,
    pe: PeDesign,
    num_pes: u32,
}

/// Performance/resource summary of one accelerator configuration — one
/// column of the paper's Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelReport {
    /// Design label.
    pub name: String,
    /// Platform name.
    pub platform: &'static str,
    /// Compressed parameters of the top layer, in millions.
    pub params_millions: f64,
    /// Weight-matrix compression ratio.
    pub compression_ratio: f64,
    /// Fixed-point word length.
    pub quant_bits: u8,
    /// Number of processing elements instantiated.
    pub num_pes: u32,
    /// Per-stage cycles.
    pub stages: StageCycles,
    /// End-to-end frame latency (µs).
    pub latency_us: f64,
    /// Pipelined throughput in frames per second.
    pub fps: f64,
    /// DSP slices used / percentage.
    pub dsp_used: u32,
    /// DSP utilization (%).
    pub dsp_pct: f64,
    /// BRAM blocks used.
    pub bram_used: u32,
    /// BRAM utilization (%).
    pub bram_pct: f64,
    /// LUTs used.
    pub lut_used: u32,
    /// LUT utilization (%).
    pub lut_pct: f64,
    /// Flip-flops used.
    pub ff_used: u32,
    /// FF utilization (%).
    pub ff_pct: f64,
}

impl Accelerator {
    /// Configures an accelerator for the workload on the device, sizing
    /// the PE array with the paper's resource rule.
    pub fn new(spec: RnnSpec, device: Device) -> Self {
        let pe = PeDesign::new(spec.block_size, spec.weight_bits);
        let num_pes = pe.num_pes(&device, RESOURCE_BUDGET);
        Accelerator {
            spec,
            device,
            pe,
            num_pes,
        }
    }

    /// The workload spec.
    pub fn spec(&self) -> &RnnSpec {
        &self.spec
    }

    /// The number of PEs instantiated.
    pub fn num_pes(&self) -> u32 {
        self.num_pes
    }

    /// Counted cycles per CGPipe stage for one frame.
    pub fn stage_cycles(&self) -> StageCycles {
        let mut stage_pe_cycles = [0u64; 3];
        for m in self.spec.matvecs() {
            let p = m.rows.div_ceil(m.block) as u64;
            let q = m.cols.div_ceil(m.block) as u64;
            let op_cycles = (m.block as u64 / 2 + 1).max(1);
            // Decoupled transforms: q forward FFTs + p inverse FFTs, each
            // streaming one bin per cycle like the MAC datapath.
            let work = (p * q + p + q) * op_cycles;
            stage_pe_cycles[m.stage - 1] += work;
        }
        let pes = self.num_pes as u64;
        let mut cycles = [0u64; 3];
        for s in 0..3 {
            cycles[s] = stage_pe_cycles[s].div_ceil(pes);
        }

        // Point-wise stage: a bank of multipliers (one per two PEs, they
        // are idle-time shared per the paper's TDM note) and PWL
        // activation units.
        let (mults, acts, pw_stage) = self.spec.pointwise();
        let mult_bank = (self.num_pes as u64).max(32);
        let act_bank = (self.num_pes as u64 / 2).max(16);
        let pw_cycles = mults.div_ceil(mult_bank) + acts.div_ceil(act_bank) + 16;
        cycles[pw_stage - 1] += pw_cycles;

        StageCycles {
            stage1: cycles[0].max(1),
            stage2: cycles[1].max(1),
            stage3: cycles[2].max(1),
        }
    }

    /// BRAM blocks consumed: banked weights plus stream buffers.
    fn bram_blocks_used(&self) -> u32 {
        let block_bytes = 36 * 1024 / 8;
        // Weight banking for multi-PE read bandwidth.
        let banking = (self.num_pes / 96).clamp(1, 4) as u64;
        let weights = (self.spec.weight_bytes() * banking).div_ceil(block_bytes);
        // Double buffers between stages + input/output staging.
        let buffers = 6 * (self.spec.hidden_dim as u64 * 4).div_ceil(block_bytes) + 24;
        ((weights + buffers) as u32).min(self.device.bram_blocks)
    }

    /// Full report — one Table III column.
    pub fn report(&self, name: impl Into<String>) -> AccelReport {
        let stages = self.stage_cycles();
        let ii = stages.ii();
        let period_us = Device::clock_period_us();
        let latency_us = stages.latency_cycles() as f64 * period_us;
        let fps = Device::CLOCK_HZ / ii as f64;

        let h = self.spec.hidden_dim as u32;
        let dsp_used = (self.num_pes * self.pe.dsp_per_pe() + h / 8 + 32).min(self.device.dsp);
        let pwl_lut = 64 * 150; // activation bank
        let controller_lut = (self.device.lut as f64 * 0.06) as u32;
        let lut_used =
            (self.num_pes * self.pe.lut_per_pe() + pwl_lut + controller_lut).min(self.device.lut);
        let ff_used = (self.num_pes * self.pe.ff_per_pe() + (controller_lut as f64 * 0.7) as u32)
            .min(self.device.ff);
        let bram_used = self.bram_blocks_used();

        AccelReport {
            name: name.into(),
            platform: self.device.name,
            params_millions: self.spec.compressed_params() as f64 / 1e6,
            compression_ratio: self.spec.compression_ratio(),
            quant_bits: self.spec.weight_bits,
            num_pes: self.num_pes,
            stages,
            latency_us,
            fps,
            dsp_used,
            dsp_pct: dsp_used as f64 / self.device.dsp as f64 * 100.0,
            bram_used,
            bram_pct: bram_used as f64 / self.device.bram_blocks as f64 * 100.0,
            lut_used,
            lut_pct: lut_used as f64 / self.device.lut as f64 * 100.0,
            ff_used,
            ff_pct: ff_used as f64 / self.device.ff as f64 * 100.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{ADM_PCIE_7V3, XCKU060};

    #[test]
    fn lstm_param_counts_match_table_iii() {
        // Paper Table III: 0.41M at block 8, 0.20M at block 16,
        // compression 7.9:1 and 15.9:1.
        let s8 = RnnSpec::lstm_1024(8, 12);
        assert!((s8.compressed_params() as f64 / 1e6 - 0.41).abs() < 0.02);
        assert!((s8.compression_ratio() - 7.9).abs() < 0.2);
        let s16 = RnnSpec::lstm_1024(16, 12);
        assert!((s16.compressed_params() as f64 / 1e6 - 0.20).abs() < 0.02);
        assert!((s16.compression_ratio() - 15.9).abs() < 0.3);
    }

    #[test]
    fn gru_param_counts_match_table_iii() {
        // Paper: GRU 0.45M at block 8, 0.23M at block 16, ratios 8.0/15.9.
        let s8 = RnnSpec::gru_1024(8, 12);
        assert!(
            (s8.compressed_params() as f64 / 1e6 - 0.45).abs() < 0.02,
            "{}",
            s8.compressed_params()
        );
        let s16 = RnnSpec::gru_1024(16, 12);
        assert!((s16.compressed_params() as f64 / 1e6 - 0.23).abs() < 0.02);
    }

    #[test]
    fn latencies_reproduce_table_iii_shape() {
        // Paper: E-RNN FFT8 LSTM 13.7 µs (KU060) / 12.9 µs (7V3);
        // FFT16 7.4/8.3 µs; GRU FFT8 10.5 µs; GRU FFT16 6.7/6.5 µs.
        // The model must land within ±35% and preserve every ordering.
        let lat = |spec: RnnSpec, dev| Accelerator::new(spec, dev).report("x").latency_us;
        let l8_ku = lat(RnnSpec::lstm_1024(8, 12), XCKU060);
        let l8_7v = lat(RnnSpec::lstm_1024(8, 12), ADM_PCIE_7V3);
        let l16_ku = lat(RnnSpec::lstm_1024(16, 12), XCKU060);
        let l16_7v = lat(RnnSpec::lstm_1024(16, 12), ADM_PCIE_7V3);
        let g8_ku = lat(RnnSpec::gru_1024(8, 12), XCKU060);
        let g16_ku = lat(RnnSpec::gru_1024(16, 12), XCKU060);

        let close = |ours: f64, paper: f64| (ours - paper).abs() / paper < 0.35;
        assert!(close(l8_ku, 13.7), "FFT8 KU060: {l8_ku}");
        assert!(close(l8_7v, 12.9), "FFT8 7V3: {l8_7v}");
        assert!(close(l16_ku, 7.4), "FFT16 KU060: {l16_ku}");
        assert!(close(l16_7v, 8.3), "FFT16 7V3: {l16_7v}");
        assert!(close(g8_ku, 10.5), "GRU8 KU060: {g8_ku}");
        assert!(close(g16_ku, 6.7), "GRU16 KU060: {g16_ku}");

        // Orderings: FFT16 beats FFT8; GRU beats LSTM at equal block size.
        assert!(l16_ku < l8_ku);
        assert!(l16_7v < l8_7v);
        assert!(g8_ku < l8_ku);
        assert!(g16_ku < l16_ku);
    }

    #[test]
    fn fps_is_three_over_latency() {
        // The pipelined FPS/latency relationship visible throughout the
        // paper's Table III.
        let acc = Accelerator::new(RnnSpec::gru_1024(8, 12), XCKU060);
        let r = acc.report("gru8");
        let expected = 3.0 / (r.latency_us * 1e-6);
        assert!((r.fps - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn fps_lands_near_paper_values() {
        // Paper: E-RNN FFT8 LSTM 231,514 FPS (KU060); GRU FFT8 284,540.
        let lstm = Accelerator::new(RnnSpec::lstm_1024(8, 12), XCKU060)
            .report("l8")
            .fps;
        let gru = Accelerator::new(RnnSpec::gru_1024(8, 12), XCKU060)
            .report("g8")
            .fps;
        assert!((lstm - 231_514.0).abs() / 231_514.0 < 0.35, "{lstm}");
        assert!((gru - 284_540.0).abs() / 284_540.0 < 0.35, "{gru}");
    }

    #[test]
    fn block_8_model_fits_bram_on_both_devices() {
        // Phase I step 1 (Sec. VI-B): "a block size of 4 or 8 will fit the
        // whole RNN model into BRAM".
        for dev in [ADM_PCIE_7V3, XCKU060] {
            assert!(RnnSpec::lstm_1024(8, 12).fits_in_bram(&dev), "{}", dev.name);
            assert!(RnnSpec::gru_1024(8, 12).fits_in_bram(&dev), "{}", dev.name);
        }
        // The uncompressed model does not fit (which is the whole point).
        assert!(!RnnSpec::lstm_1024(1, 12).fits_in_bram(&XCKU060));
    }

    #[test]
    fn utilization_is_bounded_and_substantial() {
        for spec in [RnnSpec::lstm_1024(8, 12), RnnSpec::gru_1024(16, 12)] {
            for dev in [ADM_PCIE_7V3, XCKU060] {
                let r = Accelerator::new(spec, dev).report("d");
                for pct in [r.dsp_pct, r.bram_pct, r.lut_pct, r.ff_pct] {
                    assert!((0.0..=100.0).contains(&pct));
                }
                assert!(r.dsp_pct > 40.0, "{}: dsp {}", dev.name, r.dsp_pct);
            }
        }
    }

    #[test]
    fn platform_presets_reflect_table_iii_speed_gap() {
        // The 7V3 carries more DSPs than the KU060, so the same FFT8
        // LSTM-1024 design runs at a shorter II there — the heterogeneity
        // the serving scheduler's cost model exploits.
        let ku = StageCycles::xcku060();
        let v7 = StageCycles::virtex7_690t();
        assert!(ku.ii() > 0 && v7.ii() > 0);
        assert!(v7.ii() < ku.ii(), "7V3 {} vs KU060 {}", v7.ii(), ku.ii());
        assert_eq!(
            ku,
            Accelerator::new(RnnSpec::lstm_1024(8, 12), XCKU060).stage_cycles()
        );
        assert_eq!(
            v7,
            Accelerator::new(RnnSpec::lstm_1024(8, 12), ADM_PCIE_7V3).stage_cycles()
        );
    }

    #[test]
    fn stream_completion_closed_form_basics() {
        let s = StageCycles {
            stage1: 5,
            stage2: 3,
            stage3: 2,
        };
        assert_eq!(s.fill_cycles(), 10);
        // Frame 1 = pipeline fill; each further frame adds one II.
        assert_eq!(s.stream_completion_cycles(1), 10);
        assert_eq!(s.stream_completion_cycles(4), 10 + 3 * 5);
    }

    #[test]
    fn io_block_tuning_reduces_work() {
        let base = RnnSpec::lstm_1024(8, 12);
        let tuned = RnnSpec {
            io_block_size: 16,
            ..base
        };
        let b = Accelerator::new(base, XCKU060);
        let t = Accelerator::new(tuned, XCKU060);
        assert!(t.stage_cycles().ii() < b.stage_cycles().ii());
        assert!(tuned.compressed_params() < base.compressed_params());
    }
}
