//! Hardware models of the two prior designs E-RNN compares against.
//!
//! * **ESE** (Han et al., FPGA'17): pruned sparse LSTM on the KU060. The
//!   weights are irregularly sparse, so parallelism is bounded by the PE
//!   channel structure (32 channels in the published design) rather than
//!   by dense streaming; activations live in off-chip lookup tables.
//!   The paper's Table III quotes ESE's *theoretical* computation time
//!   (footnote b), which corresponds to perfectly load-balanced channels
//!   — we model both that and the imbalanced reality.
//! * **C-LSTM** (Wang et al., FPGA'18): the same block-circulant framework
//!   as E-RNN but trained without ADMM and implemented without E-RNN's
//!   PE-level optimization. Per the paper's Sec. VIII-B2, the efficiency
//!   gap is mostly systematic design (PE/CU structure), with quantization
//!   (16b vs 12b) worth <10%.

use crate::accelerator::{AccelReport, Accelerator, RnnSpec, StageCycles};
use crate::device::Device;

/// ESE's published design parameters on the KU060.
#[derive(Debug, Clone, Copy)]
pub struct EseModel {
    /// Dense parameter count of the benchmarked layer.
    pub dense_params: u64,
    /// Pruning compression (9× weight reduction in ESE's LSTM).
    pub weight_compression: f64,
    /// Parallel MAC channels (ESE instantiates 32 PEs per channel group).
    pub mac_channels: u32,
    /// Bits per weight (12-bit fixed in ESE).
    pub weight_bits: u8,
    /// Bits per sparse index (at least one index per surviving weight).
    /// Table III footnote a is a pessimistic estimate that prices indices
    /// at the weight width, which is what reproduces its 4.5:1 figure.
    pub index_bits: u8,
    /// Load-imbalance factor across channels (1.0 = the theoretical
    /// number the paper quotes; ESE reports ~1.2× in practice).
    pub load_imbalance: f64,
}

impl EseModel {
    /// ESE benchmarking the same LSTM-1024/proj-512 layer as Table III.
    pub fn table_iii() -> Self {
        EseModel {
            dense_params: RnnSpec::lstm_1024(1, 12).dense_params(),
            weight_compression: 9.0,
            mac_channels: 32,
            weight_bits: 12,
            index_bits: 12,
            load_imbalance: 1.0,
        }
    }

    /// Surviving (non-zero) weights after pruning.
    pub fn nnz(&self) -> u64 {
        (self.dense_params as f64 / self.weight_compression) as u64
    }

    /// Effective compression ratio including index storage — the paper's
    /// 4.5:1 row ("there is at least one index per weight after
    /// compression in ESE").
    pub fn effective_compression(&self) -> f64 {
        let dense_bits = self.dense_params * self.weight_bits as u64;
        let sparse_bits = self.nnz() * (self.weight_bits + self.index_bits) as u64;
        dense_bits as f64 / sparse_bits as f64
    }

    /// Per-frame computation cycles: every non-zero weight is one MAC,
    /// spread over the channels, inflated by load imbalance (irregular
    /// rows cannot be balanced perfectly).
    pub fn cycles_per_frame(&self) -> u64 {
        (self.nnz() as f64 / self.mac_channels as f64 * self.load_imbalance) as u64
    }

    /// Frame latency in µs. ESE does not overlap its phases the way
    /// E-RNN's CGPipe does, so latency ≈ 1/FPS (Table III: 57 µs ↔
    /// 17,544 FPS).
    pub fn latency_us(&self) -> f64 {
        self.cycles_per_frame() as f64 * Device::clock_period_us()
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        Device::CLOCK_HZ / self.cycles_per_frame() as f64
    }

    /// Published resource utilization on the KU060 (Table III column 1) —
    /// ESE's bitstream is not ours to re-synthesize, so the utilization
    /// row is quoted from the paper.
    pub fn published_utilization() -> (f64, f64, f64, f64) {
        (54.5, 87.7, 88.6, 68.3)
    }

    /// Published board power (W) — dominated by the DDR3 subsystem the
    /// activation tables and batching buffers live in.
    pub fn published_power_w() -> f64 {
        41.0
    }
}

/// C-LSTM modelled as the same circulant accelerator with 16-bit
/// quantization and without E-RNN's PE-level optimization.
///
/// The de-optimization multiplier covers the scheduling/PE structure gap
/// the paper attributes to its "systematic architecture including PE and
/// CU" (Sec. VIII-B2); it is calibrated once against C-LSTM's published
/// 16.7 µs and reused for every C-LSTM configuration.
pub const CLSTM_DEOPT_FACTOR: f64 = 1.30;

/// Builds the C-LSTM comparison design for a given block size on a device.
pub fn clstm_report(block_size: usize, device: Device) -> AccelReport {
    let spec = RnnSpec::lstm_1024(block_size, 16);
    let acc = Accelerator::new(spec, device);
    let mut report = acc.report(format!("C-LSTM FFT{block_size}"));
    let stages = StageCycles {
        stage1: (report.stages.stage1 as f64 * CLSTM_DEOPT_FACTOR) as u64,
        stage2: (report.stages.stage2 as f64 * CLSTM_DEOPT_FACTOR) as u64,
        stage3: (report.stages.stage3 as f64 * CLSTM_DEOPT_FACTOR) as u64,
    };
    report.stages = stages;
    report.latency_us = stages.latency_cycles() as f64 * Device::clock_period_us();
    report.fps = Device::CLOCK_HZ / stages.ii() as f64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ADM_PCIE_7V3;

    #[test]
    fn ese_effective_compression_matches_table_iii() {
        // Paper: 4.5:1 including indices.
        let ese = EseModel::table_iii();
        assert!(
            (ese.effective_compression() - 4.5).abs() < 0.3,
            "{}",
            ese.effective_compression()
        );
    }

    #[test]
    fn ese_latency_and_fps_match_table_iii() {
        // Paper: 57.0 µs theoretical, 17,544 FPS.
        let ese = EseModel::table_iii();
        assert!(
            (ese.latency_us() - 57.0).abs() / 57.0 < 0.05,
            "{}",
            ese.latency_us()
        );
        assert!(
            (ese.fps() - 17_544.0).abs() / 17_544.0 < 0.05,
            "{}",
            ese.fps()
        );
    }

    #[test]
    fn load_imbalance_degrades_ese() {
        let ideal = EseModel::table_iii();
        let real = EseModel {
            load_imbalance: 1.2,
            ..ideal
        };
        assert!(real.fps() < ideal.fps());
    }

    #[test]
    fn clstm_sits_between_ese_and_ernn() {
        // Paper Table III on the 7V3: C-LSTM 16.7 µs vs E-RNN 12.9 µs at
        // block 8; both orders of magnitude faster than ESE's 57 µs.
        let clstm = clstm_report(8, ADM_PCIE_7V3);
        let ernn = Accelerator::new(RnnSpec::lstm_1024(8, 12), ADM_PCIE_7V3).report("e");
        let ese = EseModel::table_iii();
        assert!(clstm.latency_us > ernn.latency_us);
        assert!(clstm.latency_us < ese.latency_us());
        // The published ratio E-RNN:C-LSTM is 1.29×; ours within ±15%.
        let ratio = clstm.latency_us / ernn.latency_us;
        assert!((ratio - 1.29).abs() < 0.20, "ratio {ratio}");
        assert!(
            (clstm.latency_us - 16.7).abs() / 16.7 < 0.35,
            "{}",
            clstm.latency_us
        );
    }
}
