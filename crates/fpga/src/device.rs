//! FPGA platform descriptions (paper Table IV).

/// An FPGA device/board with its resource budget.
///
/// The two constants [`ADM_PCIE_7V3`] and [`XCKU060`] carry the exact
/// numbers of the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Board/platform name.
    pub name: &'static str,
    /// DSP slices.
    pub dsp: u32,
    /// 36 Kb BRAM blocks.
    pub bram_blocks: u32,
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// Process node in nanometres (affects static power).
    pub process_nm: u32,
}

/// Alpha Data ADM-PCIE-7V3 (Xilinx Virtex-7 690t), 28 nm.
pub const ADM_PCIE_7V3: Device = Device {
    name: "ADM-PCIE-7V3",
    dsp: 3_600,
    bram_blocks: 1_470,
    lut: 859_200,
    ff: 429_600,
    process_nm: 28,
};

/// Xilinx Kintex UltraScale KU060, 20 nm.
pub const XCKU060: Device = Device {
    name: "XCKU060",
    dsp: 2_760,
    bram_blocks: 1_080,
    lut: 331_680,
    ff: 663_360,
    process_nm: 20,
};

/// The platforms the reproduction knows by name — the set a serialized
/// [`ModelArtifact`](crate::artifact::ModelArtifact) can target, since
/// artifacts store the platform as its Table-IV name.
pub const KNOWN_DEVICES: &[Device] = &[ADM_PCIE_7V3, XCKU060];

impl Device {
    /// Looks a platform up by its Table-IV name (see [`KNOWN_DEVICES`]).
    pub fn by_name(name: &str) -> Option<Device> {
        KNOWN_DEVICES.iter().copied().find(|d| d.name == name)
    }

    /// Total on-chip BRAM capacity in bytes (36 Kb per block).
    pub fn bram_bytes(&self) -> u64 {
        self.bram_blocks as u64 * 36 * 1024 / 8
    }

    /// The deployment clock used throughout the paper (Sec. VIII-A1).
    pub const CLOCK_HZ: f64 = 200e6;

    /// Clock period in microseconds.
    pub fn clock_period_us() -> f64 {
        1e6 / Self::CLOCK_HZ
    }

    /// Device clock cycles covering a `us`-microsecond interval, rounded
    /// up to whole cycles. This is how virtual-time stalls that originate
    /// off-chip — e.g. weight-image residency loads charged in µs — are
    /// expressed on the accelerator's own clock (the serve-layer trace
    /// reports residency stalls in cycles through this hook).
    pub fn cycles_for_us(us: f64) -> u64 {
        assert!(us >= 0.0 && us.is_finite(), "stall must be finite: {us}");
        (us / Self::clock_period_us()).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_numbers() {
        assert_eq!(ADM_PCIE_7V3.dsp, 3600);
        assert_eq!(ADM_PCIE_7V3.bram_blocks, 1470);
        assert_eq!(ADM_PCIE_7V3.lut, 859_200);
        assert_eq!(ADM_PCIE_7V3.ff, 429_600);
        assert_eq!(ADM_PCIE_7V3.process_nm, 28);
        assert_eq!(XCKU060.dsp, 2760);
        assert_eq!(XCKU060.bram_blocks, 1080);
        assert_eq!(XCKU060.lut, 331_680);
        assert_eq!(XCKU060.ff, 663_360);
        assert_eq!(XCKU060.process_nm, 20);
    }

    #[test]
    fn bram_capacity_covers_paper_claim() {
        // Sec. VI-B: "the FPGAs we test on ... have 4-8MB BRAM".
        let mb_7v3 = ADM_PCIE_7V3.bram_bytes() as f64 / (1024.0 * 1024.0);
        let mb_ku = XCKU060.bram_bytes() as f64 / (1024.0 * 1024.0);
        assert!((4.0..=8.5).contains(&mb_7v3), "{mb_7v3} MB");
        assert!((4.0..=8.5).contains(&mb_ku), "{mb_ku} MB");
    }

    #[test]
    fn clock_period_is_5ns() {
        assert!((Device::clock_period_us() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn stall_cycles_round_up_to_whole_cycles() {
        assert_eq!(Device::cycles_for_us(0.0), 0);
        // One period is exactly one cycle at 200 MHz.
        assert_eq!(Device::cycles_for_us(0.005), 1);
        // A fractional extra period still occupies a full cycle.
        assert_eq!(Device::cycles_for_us(0.0051), 2);
        // A 4 MB image at 8 GB/s ≈ 512 µs ≈ 102 400 cycles.
        assert_eq!(Device::cycles_for_us(512.0), 102_400);
    }
}
