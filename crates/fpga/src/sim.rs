//! Cycle-level simulation of the 3-stage CGPipe with double buffers.
//!
//! The analytical model in [`crate::Accelerator`] assumes ideal double
//! buffering (`II = max stage`, latency = `3·II`). This module *simulates*
//! the pipeline event by event — each frame must wait for both its
//! predecessor stage and the stage's previous occupant — and is
//! property-tested against the closed form. It also reports per-stage
//! occupancy, which the Phase II report uses to show pipeline balance.

use crate::accelerator::StageCycles;

/// Advances one frame through the double-buffered 3-stage pipeline:
/// stage `s` starts when the frame leaves stage `s−1` *and* stage `s`'s
/// previous occupant has vacated its buffer. Updates per-stage finish
/// times and busy counters, returning when the frame exits stage 3.
/// Shared by [`simulate_pipeline`] and [`simulate_batch`] so the timing
/// model exists in exactly one place.
#[inline]
fn advance_frame(durations: &[u64; 3], finish: &mut [u64; 3], busy: &mut [u64; 3]) -> u64 {
    let mut t = finish[0];
    for s in 0..3 {
        let start = t.max(finish[s]);
        let end = start + durations[s];
        finish[s] = end;
        busy[s] += durations[s];
        t = end;
    }
    t
}

/// Result of simulating `frames` frames through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total cycles from first input to last output.
    pub makespan_cycles: u64,
    /// Mean per-frame end-to-end latency in cycles.
    pub mean_latency_cycles: f64,
    /// Worst per-frame latency in cycles.
    pub max_latency_cycles: u64,
    /// Steady-state throughput in frames per cycle.
    pub throughput_fpc: f64,
    /// Fraction of the makespan each stage was busy.
    pub occupancy: [f64; 3],
}

/// Simulates `frames` frames through a double-buffered 3-stage pipeline.
///
/// Stage `s` of frame `f` starts when both stage `s−1` of frame `f` has
/// finished *and* stage `s` of frame `f−1` has vacated its buffer — the
/// exact behaviour of the CGPipe double buffers in Fig. 11.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn simulate_pipeline(stages: StageCycles, frames: u64) -> SimResult {
    assert!(frames > 0, "need at least one frame");
    let durations = stages.as_array();
    // finish[s] = when stage s finished its latest frame.
    let mut finish = [0u64; 3];
    let mut busy = [0u64; 3];
    let mut total_latency = 0u64;
    let mut max_latency = 0u64;
    let mut first_output = 0u64;

    for f in 0..frames {
        let enter = finish[0];
        let t = advance_frame(&durations, &mut finish, &mut busy);
        let latency = t - enter;
        total_latency += latency;
        max_latency = max_latency.max(latency);
        if f == 0 {
            first_output = t;
        }
    }
    let makespan = finish[2];
    let steady_frames = frames.saturating_sub(1);
    let throughput = if steady_frames > 0 {
        steady_frames as f64 / (makespan - first_output) as f64
    } else {
        1.0 / makespan as f64
    };
    SimResult {
        makespan_cycles: makespan,
        mean_latency_cycles: total_latency as f64 / frames as f64,
        max_latency_cycles: max_latency,
        throughput_fpc: throughput,
        occupancy: [
            busy[0] as f64 / makespan as f64,
            busy[1] as f64 / makespan as f64,
            busy[2] as f64 / makespan as f64,
        ],
    }
}

/// Result of simulating a *batch* of utterances whose frames stream
/// back-to-back through the pipeline (the serving runtime's device model:
/// a dispatched batch owns the CGPipe until its last frame drains).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchTrace {
    /// Cycles from batch start to the last frame leaving stage 3.
    pub makespan_cycles: u64,
    /// Per-utterance completion (cycles from batch start until the
    /// utterance's final frame exits stage 3), in submission order.
    pub completion_cycles: Vec<u64>,
    /// Fraction of the makespan each stage was busy.
    pub occupancy: [f64; 3],
}

/// Simulates a batch of utterances with `frame_counts[i]` frames each
/// through the double-buffered 3-stage pipeline, frames back-to-back in
/// submission order, and records when each utterance finishes.
///
/// Feeding one utterance reproduces [`simulate_pipeline`]'s makespan
/// exactly (property-tested below); batching amortizes the pipeline fill
/// across utterances, which is precisely the win the serving runtime's
/// dynamic batcher is after.
///
/// # Panics
///
/// Panics if `frame_counts` is empty or any count is zero.
pub fn simulate_batch(stages: StageCycles, frame_counts: &[u64]) -> BatchTrace {
    let mut trace = BatchTrace::default();
    simulate_batch_into(stages, frame_counts, &mut trace);
    trace
}

/// [`simulate_batch`] writing into a caller-owned trace, reusing its
/// `completion_cycles` allocation. The serving runtime's device pool keeps
/// one scratch trace per virtual device so the per-dispatch hot path stays
/// allocation-free; results are identical to [`simulate_batch`].
///
/// # Panics
///
/// Panics if `frame_counts` is empty or any count is zero.
pub fn simulate_batch_into(stages: StageCycles, frame_counts: &[u64], trace: &mut BatchTrace) {
    assert!(!frame_counts.is_empty(), "need at least one utterance");
    let durations = stages.as_array();
    let mut finish = [0u64; 3];
    let mut busy = [0u64; 3];
    trace.completion_cycles.clear();
    trace.completion_cycles.reserve(frame_counts.len());
    for &frames in frame_counts {
        assert!(frames > 0, "every utterance needs at least one frame");
        let mut last_exit = 0u64;
        for _ in 0..frames {
            last_exit = advance_frame(&durations, &mut finish, &mut busy);
        }
        trace.completion_cycles.push(last_exit);
    }
    let makespan = finish[2];
    trace.makespan_cycles = makespan;
    trace.occupancy = [
        busy[0] as f64 / makespan as f64,
        busy[1] as f64 / makespan as f64,
        busy[2] as f64 / makespan as f64,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stages(a: u64, b: u64, c: u64) -> StageCycles {
        StageCycles {
            stage1: a,
            stage2: b,
            stage3: c,
        }
    }

    #[test]
    fn single_frame_latency_is_stage_sum() {
        let r = simulate_pipeline(stages(100, 50, 80), 1);
        assert_eq!(r.makespan_cycles, 230);
        assert_eq!(r.max_latency_cycles, 230);
    }

    #[test]
    fn steady_state_matches_ii() {
        let s = stages(100, 50, 80);
        let r = simulate_pipeline(s, 1000);
        let ii = s.ii() as f64;
        assert!(
            (r.throughput_fpc - 1.0 / ii).abs() < 1e-4,
            "throughput {} vs 1/II {}",
            r.throughput_fpc,
            1.0 / ii
        );
    }

    #[test]
    fn makespan_closed_form() {
        // makespan = fill (sum of stages) + (frames − 1) · II for a
        // bottleneck-first pipeline.
        let s = stages(100, 50, 80);
        let r = simulate_pipeline(s, 10);
        assert_eq!(r.makespan_cycles, 230 + 9 * 100);
    }

    #[test]
    fn bottleneck_stage_is_fully_occupied() {
        let s = stages(100, 40, 60);
        let r = simulate_pipeline(s, 500);
        assert!(r.occupancy[0] > 0.99);
        assert!(r.occupancy[1] < r.occupancy[0]);
    }

    #[test]
    fn balanced_pipeline_latency_is_three_ii() {
        // The paper's latency convention: with balanced stages, per-frame
        // latency settles at 3·II.
        let s = stages(90, 90, 90);
        let r = simulate_pipeline(s, 100);
        assert!((r.mean_latency_cycles - 270.0).abs() < 1.0);
        assert_eq!(s.latency_cycles(), 270);
    }

    #[test]
    fn batch_of_one_matches_pipeline_sim() {
        let s = stages(100, 50, 80);
        for frames in [1u64, 2, 7, 64] {
            let pipe = simulate_pipeline(s, frames);
            let batch = simulate_batch(s, &[frames]);
            assert_eq!(batch.makespan_cycles, pipe.makespan_cycles);
            assert_eq!(batch.completion_cycles, vec![pipe.makespan_cycles]);
        }
    }

    #[test]
    fn batch_completions_are_monotone_and_end_at_makespan() {
        let s = stages(90, 110, 70);
        let trace = simulate_batch(s, &[3, 1, 5, 2]);
        for w in trace.completion_cycles.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(
            *trace.completion_cycles.last().unwrap(),
            trace.makespan_cycles
        );
        // Occupancy semantics match the streaming sim exactly (same
        // frames, same timing kernel): bottleneck stage saturates.
        let stream = simulate_pipeline(s, 11);
        for (a, b) in trace.occupancy.iter().zip(stream.occupancy.iter()) {
            assert!(
                (a - b).abs() < 1e-12,
                "{:?} vs {:?}",
                trace.occupancy,
                stream.occupancy
            );
        }
        assert!(trace.occupancy[1] > trace.occupancy[0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn stream_closed_form_is_exact_against_the_event_sim(
            s1 in 1u64..200,
            s2 in 1u64..200,
            s3 in 1u64..200,
            counts in proptest::collection::vec(1u64..20, 1..6),
        ) {
            // The scheduler's cost model relies on the closed form
            // `fill + (j − 1)·II` for the j-th streamed frame being exact,
            // whatever the stage imbalance — per-utterance completions and
            // the batch makespan must match the event-driven sim cycle for
            // cycle.
            let s = stages(s1, s2, s3);
            let trace = simulate_batch(s, &counts);
            let mut streamed = 0u64;
            for (utt, &frames) in counts.iter().enumerate() {
                streamed += frames;
                prop_assert_eq!(
                    trace.completion_cycles[utt],
                    s.stream_completion_cycles(streamed)
                );
            }
            prop_assert_eq!(
                trace.makespan_cycles,
                s.stream_completion_cycles(streamed)
            );
        }
    }

    #[test]
    fn simulate_batch_into_reuses_scratch_and_matches() {
        let s = stages(100, 50, 80);
        let mut scratch = BatchTrace {
            makespan_cycles: 999,
            completion_cycles: vec![1, 2, 3, 4, 5, 6, 7, 8],
            occupancy: [0.5; 3],
        };
        // Stale scratch contents must be fully overwritten.
        simulate_batch_into(s, &[4, 2], &mut scratch);
        assert_eq!(scratch, simulate_batch(s, &[4, 2]));
        // And a second reuse with a different batch shape works too.
        simulate_batch_into(s, &[1, 1, 1], &mut scratch);
        assert_eq!(scratch, simulate_batch(s, &[1, 1, 1]));
    }

    #[test]
    fn batching_amortizes_pipeline_fill() {
        // Running utterances back-to-back must beat draining the pipe
        // between them: batched makespan < sum of solo makespans.
        let s = stages(100, 60, 90);
        let counts = [4u64, 6, 3];
        let batched = simulate_batch(s, &counts).makespan_cycles;
        let solo: u64 = counts
            .iter()
            .map(|&f| simulate_pipeline(s, f).makespan_cycles)
            .sum();
        assert!(batched < solo, "batched {batched} vs solo {solo}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn batch_concat_equals_single_stream(
            a in 1u64..40,
            b in 1u64..40,
            s1 in 1u64..200,
            s2 in 1u64..200,
            s3 in 1u64..200,
        ) {
            // Splitting a stream of frames into utterances must not change
            // the pipeline timing — only add completion markers.
            let s = stages(s1, s2, s3);
            let batch = simulate_batch(s, &[a, b]);
            let stream = simulate_pipeline(s, a + b);
            prop_assert_eq!(batch.makespan_cycles, stream.makespan_cycles);
        }
    }

    proptest! {
        #[test]
        fn makespan_is_fill_plus_ii_per_frame(
            a in 1u64..500,
            b in 1u64..500,
            c in 1u64..500,
            frames in 1u64..200,
        ) {
            let s = stages(a, b, c);
            let r = simulate_pipeline(s, frames);
            // With a single bottleneck stage, makespan = sum + (n−1)·II.
            // When the first stage is the bottleneck this is exact; in
            // general it is an upper bound within one fill.
            let ii = s.ii();
            let sum = a + b + c;
            prop_assert!(r.makespan_cycles >= sum + (frames - 1) * ii - sum);
            prop_assert!(r.makespan_cycles <= sum + (frames - 1) * ii);
            // Latency of any frame is at least the raw stage sum.
            prop_assert!(r.mean_latency_cycles >= sum as f64 - 1e-9);
        }

        #[test]
        fn throughput_never_exceeds_bottleneck(
            a in 1u64..300, b in 1u64..300, c in 1u64..300,
        ) {
            let s = stages(a, b, c);
            let r = simulate_pipeline(s, 300);
            prop_assert!(r.throughput_fpc <= 1.0 / s.ii() as f64 + 1e-9);
        }
    }
}
