//! Cycle-level simulation of the 3-stage CGPipe with double buffers.
//!
//! The analytical model in [`crate::Accelerator`] assumes ideal double
//! buffering (`II = max stage`, latency = `3·II`). This module *simulates*
//! the pipeline event by event — each frame must wait for both its
//! predecessor stage and the stage's previous occupant — and is
//! property-tested against the closed form. It also reports per-stage
//! occupancy, which the Phase II report uses to show pipeline balance.

use crate::accelerator::StageCycles;

/// Result of simulating `frames` frames through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total cycles from first input to last output.
    pub makespan_cycles: u64,
    /// Mean per-frame end-to-end latency in cycles.
    pub mean_latency_cycles: f64,
    /// Worst per-frame latency in cycles.
    pub max_latency_cycles: u64,
    /// Steady-state throughput in frames per cycle.
    pub throughput_fpc: f64,
    /// Fraction of the makespan each stage was busy.
    pub occupancy: [f64; 3],
}

/// Simulates `frames` frames through a double-buffered 3-stage pipeline.
///
/// Stage `s` of frame `f` starts when both stage `s−1` of frame `f` has
/// finished *and* stage `s` of frame `f−1` has vacated its buffer — the
/// exact behaviour of the CGPipe double buffers in Fig. 11.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn simulate_pipeline(stages: StageCycles, frames: u64) -> SimResult {
    assert!(frames > 0, "need at least one frame");
    let durations = stages.as_array();
    // finish[s] = when stage s finished its latest frame.
    let mut finish = [0u64; 3];
    let mut busy = [0u64; 3];
    let mut total_latency = 0u64;
    let mut max_latency = 0u64;
    let mut first_output = 0u64;

    for f in 0..frames {
        let enter = finish[0];
        let mut t = enter;
        for s in 0..3 {
            let start = t.max(finish[s]);
            let end = start + durations[s];
            finish[s] = end;
            busy[s] += durations[s];
            t = end;
        }
        let latency = t - enter;
        total_latency += latency;
        max_latency = max_latency.max(latency);
        if f == 0 {
            first_output = t;
        }
    }
    let makespan = finish[2];
    let steady_frames = frames.saturating_sub(1);
    let throughput = if steady_frames > 0 {
        steady_frames as f64 / (makespan - first_output) as f64
    } else {
        1.0 / makespan as f64
    };
    SimResult {
        makespan_cycles: makespan,
        mean_latency_cycles: total_latency as f64 / frames as f64,
        max_latency_cycles: max_latency,
        throughput_fpc: throughput,
        occupancy: [
            busy[0] as f64 / makespan as f64,
            busy[1] as f64 / makespan as f64,
            busy[2] as f64 / makespan as f64,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stages(a: u64, b: u64, c: u64) -> StageCycles {
        StageCycles {
            stage1: a,
            stage2: b,
            stage3: c,
        }
    }

    #[test]
    fn single_frame_latency_is_stage_sum() {
        let r = simulate_pipeline(stages(100, 50, 80), 1);
        assert_eq!(r.makespan_cycles, 230);
        assert_eq!(r.max_latency_cycles, 230);
    }

    #[test]
    fn steady_state_matches_ii() {
        let s = stages(100, 50, 80);
        let r = simulate_pipeline(s, 1000);
        let ii = s.ii() as f64;
        assert!(
            (r.throughput_fpc - 1.0 / ii).abs() < 1e-4,
            "throughput {} vs 1/II {}",
            r.throughput_fpc,
            1.0 / ii
        );
    }

    #[test]
    fn makespan_closed_form() {
        // makespan = fill (sum of stages) + (frames − 1) · II for a
        // bottleneck-first pipeline.
        let s = stages(100, 50, 80);
        let r = simulate_pipeline(s, 10);
        assert_eq!(r.makespan_cycles, 230 + 9 * 100);
    }

    #[test]
    fn bottleneck_stage_is_fully_occupied() {
        let s = stages(100, 40, 60);
        let r = simulate_pipeline(s, 500);
        assert!(r.occupancy[0] > 0.99);
        assert!(r.occupancy[1] < r.occupancy[0]);
    }

    #[test]
    fn balanced_pipeline_latency_is_three_ii() {
        // The paper's latency convention: with balanced stages, per-frame
        // latency settles at 3·II.
        let s = stages(90, 90, 90);
        let r = simulate_pipeline(s, 100);
        assert!((r.mean_latency_cycles - 270.0).abs() < 1.0);
        assert_eq!(s.latency_cycles(), 270);
    }

    proptest! {
        #[test]
        fn makespan_is_fill_plus_ii_per_frame(
            a in 1u64..500,
            b in 1u64..500,
            c in 1u64..500,
            frames in 1u64..200,
        ) {
            let s = stages(a, b, c);
            let r = simulate_pipeline(s, frames);
            // With a single bottleneck stage, makespan = sum + (n−1)·II.
            // When the first stage is the bottleneck this is exact; in
            // general it is an upper bound within one fill.
            let ii = s.ii();
            let sum = a + b + c;
            prop_assert!(r.makespan_cycles >= sum + (frames - 1) * ii - sum);
            prop_assert!(r.makespan_cycles <= sum + (frames - 1) * ii);
            // Latency of any frame is at least the raw stage sum.
            prop_assert!(r.mean_latency_cycles >= sum as f64 - 1e-9);
        }

        #[test]
        fn throughput_never_exceeds_bottleneck(
            a in 1u64..300, b in 1u64..300, c in 1u64..300,
        ) {
            let s = stages(a, b, c);
            let r = simulate_pipeline(s, 300);
            prop_assert!(r.throughput_fpc <= 1.0 / s.ii() as f64 + 1e-9);
        }
    }
}
