//! Functional fixed-point execution of a compressed network.
//!
//! Phase II needs an *accuracy oracle* for quantization decisions: the
//! paper states 12-bit fixed point costs <0.1% accuracy (Sec. VII-D).
//! This module runs a trained network the way the hardware would —
//! quantized weights, quantized activations after every operator, and
//! piecewise-linear sigmoid/tanh — by materializing a quantized copy of
//! the network and evaluating it with PWL activations injected.

use ernn_linalg::{MatVec, MatVecScratch, Matrix, WeightMatrix};
use ernn_model::{GruLayer, LstmLayer, RnnLayer, RnnNetwork};
use ernn_quant::{FixedFormat, PiecewiseLinear, Quantizer};

/// Reusable workspace for the quantized datapath
/// ([`QuantizedNetwork::forward_logits_batch_into`] and friends).
///
/// Holds the ping-pong inter-layer activation buffers, the per-timestep
/// gather/scatter buffers for lockstep batching, and the shared
/// [`MatVecScratch`] that threads down into the FFT kernels. Every buffer
/// grows to the largest shape seen and is then reused, so post-warmup
/// inference performs zero heap allocations in the FFT/matvec kernels —
/// and, when paired with [`QuantizedNetwork::forward_logits_batch_into`]
/// on a steady shape, zero allocations altogether. Serving executors keep
/// one `ExecScratch` per worker for its whole lifetime.
#[derive(Debug, Clone, Default)]
pub struct ExecScratch {
    /// Ping-pong activation buffers (all sequences' frames, flattened).
    a: Vec<f32>,
    b: Vec<f32>,
    /// Per-sequence starting frame offset into the activation buffers.
    off: Vec<usize>,
    /// Sequence indices still active at the current timestep.
    active: Vec<usize>,
    /// Gathered inputs / states for the active lanes.
    xb: Vec<f32>,
    cb: Vec<f32>,
    yb: Vec<f32>,
    /// Next states for the active lanes.
    cn: Vec<f32>,
    yn: Vec<f32>,
    /// Cell intermediates (`batch × …`).
    pre: Vec<f32>,
    rec: Vec<f32>,
    m: Vec<f32>,
    z: Vec<f32>,
    rc: Vec<f32>,
    pre_c: Vec<f32>,
    rec_c: Vec<f32>,
    /// Persistent per-sequence recurrent state for the current layer.
    c_state: Vec<f32>,
    y_state: Vec<f32>,
    /// Matvec workspace shared by every weight matrix in the model.
    mv: MatVecScratch,
}

impl ExecScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        ExecScratch::default()
    }
}

/// Hardware datapath configuration for functional simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatapathConfig {
    /// Weight word length in bits.
    pub weight_bits: u8,
    /// Activation word length in bits.
    pub activation_bits: u8,
    /// Segments in the PWL sigmoid/tanh units.
    pub pwl_segments: usize,
}

impl DatapathConfig {
    /// The paper's final configuration: 12-bit weights and activations.
    pub fn paper_12bit() -> Self {
        DatapathConfig {
            weight_bits: 12,
            activation_bits: 12,
            pwl_segments: 64,
        }
    }

    /// The 16-bit configuration C-LSTM used.
    pub fn clstm_16bit() -> Self {
        DatapathConfig {
            weight_bits: 16,
            activation_bits: 16,
            pwl_segments: 64,
        }
    }
}

/// Persistent recurrent state of one streaming session.
///
/// Holds, per stacked layer, the cell state `c` and — for LSTM layers
/// with an output/projection dimension — the output state `y` (empty for
/// GRU layers, whose cell state doubles as the output). A fresh state is
/// all zeros, so running a sequence through
/// [`QuantizedNetwork::forward_logits_batch_states_into`] with a fresh
/// state is bit-identical to the stateless entry points; carrying the
/// state across chunk boundaries continues the recurrence exactly where
/// the previous chunk left off.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkState {
    layers: Vec<LayerState>,
}

/// Recurrent state of a single stacked layer.
#[derive(Debug, Clone, PartialEq)]
struct LayerState {
    c: Vec<f32>,
    y: Vec<f32>,
}

impl NetworkState {
    /// Number of `f32` state elements across all layers.
    pub fn num_elements(&self) -> usize {
        self.layers.iter().map(|l| l.c.len() + l.y.len()).sum()
    }
}

/// Statistics of the weight quantization pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantizationReport {
    /// Worst per-matrix max quantization error.
    pub max_weight_error: f32,
    /// Worst saturation rate across matrices.
    pub max_saturation: f32,
}

fn quantize_weight(m: &WeightMatrix, bits: u8, report: &mut QuantizationReport) -> WeightMatrix {
    match m {
        WeightMatrix::Dense(d) => {
            let fmt = FixedFormat::for_range(bits, d.max_abs().max(1e-6));
            let mut data = d.clone();
            let stats = Quantizer::new(fmt).apply(data.as_mut_slice());
            report.max_weight_error = report.max_weight_error.max(stats.max_abs_error);
            report.max_saturation = report.max_saturation.max(stats.saturation_rate);
            WeightMatrix::Dense(data)
        }
        WeightMatrix::Circulant(c) => {
            let max_abs = c
                .blocks()
                .iter()
                .fold(0.0f32, |m, v| m.max(v.abs()))
                .max(1e-6);
            let fmt = FixedFormat::for_range(bits, max_abs);
            let mut blocks = c.blocks().to_vec();
            let stats = Quantizer::new(fmt).apply(&mut blocks);
            report.max_weight_error = report.max_weight_error.max(stats.max_abs_error);
            report.max_saturation = report.max_saturation.max(stats.saturation_rate);
            let mut q = c.clone();
            q.set_blocks(&blocks);
            WeightMatrix::Circulant(q)
        }
    }
}

fn quantize_vec(v: &[f32], bits: u8) -> Vec<f32> {
    let max_abs = v.iter().fold(0.0f32, |m, x| m.max(x.abs())).max(1e-6);
    let fmt = FixedFormat::for_range(bits, max_abs);
    v.iter().map(|&x| fmt.quantize_f32(x)).collect()
}

/// A network whose weights are quantized and whose activations run through
/// PWL units — the functional twin of the FPGA datapath.
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    net: RnnNetwork<WeightMatrix>,
    activation_format: FixedFormat,
    sigmoid: PiecewiseLinear,
    tanh: PiecewiseLinear,
    /// Quantization statistics gathered while building.
    pub report: QuantizationReport,
}

impl QuantizedNetwork {
    /// Quantizes a compressed network for the given datapath.
    pub fn new(net: &RnnNetwork<WeightMatrix>, config: &DatapathConfig) -> Self {
        let mut report = QuantizationReport::default();
        let bits = config.weight_bits;
        let sigmoid = PiecewiseLinear::sigmoid(config.pwl_segments);
        let tanh = PiecewiseLinear::tanh(config.pwl_segments);

        let layers = net
            .layers()
            .iter()
            .map(|layer| match layer {
                RnnLayer::Lstm(l) => RnnLayer::Lstm(LstmLayer::from_parts(
                    *l.config(),
                    quantize_weight(&l.wx, bits, &mut report),
                    quantize_weight(&l.wr, bits, &mut report),
                    quantize_vec(&l.bias, bits),
                    l.peepholes.as_ref().map(|p| {
                        [
                            quantize_vec(&p[0], bits),
                            quantize_vec(&p[1], bits),
                            quantize_vec(&p[2], bits),
                        ]
                    }),
                    l.wym
                        .as_ref()
                        .map(|w| quantize_weight(w, bits, &mut report)),
                )),
                RnnLayer::Gru(g) => RnnLayer::Gru(GruLayer::from_parts(
                    g.input_dim(),
                    g.hidden_dim(),
                    g.candidate_activation,
                    quantize_weight(&g.wzr_x, bits, &mut report),
                    quantize_weight(&g.wzr_c, bits, &mut report),
                    quantize_vec(&g.bias_zr, bits),
                    quantize_weight(&g.wcx, bits, &mut report),
                    quantize_weight(&g.wcc, bits, &mut report),
                    quantize_vec(&g.bias_c, bits),
                )),
            })
            .collect();

        let mut classifier_w_data = net.classifier_w.clone();
        let fmt = FixedFormat::for_range(bits, classifier_w_data.max_abs().max(1e-6));
        Quantizer::new(fmt).apply(classifier_w_data.as_mut_slice());
        let classifier_w: Matrix = classifier_w_data;
        let classifier_b = quantize_vec(&net.classifier_b, bits);

        // Activations in RNNs live in (−8, 8) comfortably; Q(int=3) covers
        // the pre-activation range seen in practice.
        let activation_format = FixedFormat::for_range(config.activation_bits, 8.0);

        QuantizedNetwork {
            net: RnnNetwork::from_parts(layers, classifier_w, classifier_b),
            activation_format,
            sigmoid,
            tanh,
            report,
        }
    }

    /// Rebuilds the functional twin around weights that are **already
    /// quantized** for `config` — the artifact-loading path
    /// ([`crate::artifact::ModelArtifact`]): no quantization pass runs,
    /// the PWL units and activation format are re-derived from `config`
    /// exactly as [`Self::new`] derives them, and `report` restores the
    /// statistics recorded when the weights were first quantized. Feeding
    /// weights quantized for a *different* datapath silently produces a
    /// network that disagrees with the hardware; callers own that
    /// invariant.
    pub fn from_quantized(
        net: RnnNetwork<WeightMatrix>,
        config: &DatapathConfig,
        report: QuantizationReport,
    ) -> Self {
        QuantizedNetwork {
            net,
            activation_format: FixedFormat::for_range(config.activation_bits, 8.0),
            sigmoid: PiecewiseLinear::sigmoid(config.pwl_segments),
            tanh: PiecewiseLinear::tanh(config.pwl_segments),
            report,
        }
    }

    /// The quantized network (weights only; activation handling lives in
    /// [`Self::forward_logits`]).
    pub fn network(&self) -> &RnnNetwork<WeightMatrix> {
        &self.net
    }

    /// Mutable access to the quantized network, for callers that need to
    /// refresh cached weight-spectrum state (e.g. the serving registry
    /// reloading a model's device image). Functional values must not
    /// change — the datapath assumes the weights are already quantized.
    pub fn network_mut(&mut self) -> &mut RnnNetwork<WeightMatrix> {
        &mut self.net
    }

    #[inline]
    fn q(&self, x: f32) -> f32 {
        self.activation_format.quantize_f32(x)
    }

    /// A zero-initialized [`NetworkState`] sized for this network — the
    /// state of a streaming session before its first chunk.
    pub fn fresh_state(&self) -> NetworkState {
        let layers = self
            .net
            .layers()
            .iter()
            .map(|layer| match layer {
                RnnLayer::Lstm(l) => LayerState {
                    c: vec![0.0; l.config().hidden_dim],
                    y: vec![0.0; l.config().output_dim],
                },
                RnnLayer::Gru(g) => LayerState {
                    c: vec![0.0; g.hidden_dim()],
                    y: Vec::new(),
                },
            })
            .collect();
        NetworkState { layers }
    }

    /// On-device footprint of one session's [`NetworkState`] in bytes, at
    /// the datapath's activation word length (each state element is one
    /// activation word, rounded up to whole bytes).
    pub fn state_bytes(&self) -> u64 {
        let word = self.activation_format.word_bits().div_ceil(8) as u64;
        let elems: u64 = self
            .net
            .layers()
            .iter()
            .map(|layer| match layer {
                RnnLayer::Lstm(l) => (l.config().hidden_dim + l.config().output_dim) as u64,
                RnnLayer::Gru(g) => g.hidden_dim() as u64,
            })
            .sum();
        elems * word
    }

    /// Forward pass the way the hardware computes it: quantized inputs,
    /// quantized intermediate vectors after every matvec/point-wise
    /// operator, and piecewise-linear sigmoid/tanh units.
    ///
    /// Thin wrapper over the batched, scratch-threaded kernel
    /// ([`Self::forward_logits_batch_into`]) with a batch of one and a
    /// throwaway scratch; results are bit-identical to every other entry
    /// point by construction.
    pub fn forward_logits(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.forward_logits_with(frames, &mut ExecScratch::new())
    }

    /// [`Self::forward_logits`] reusing a caller-owned scratch — the
    /// per-worker serving form: post-warmup, the FFT/matvec kernels
    /// allocate nothing and only the returned logits are fresh.
    pub fn forward_logits_with(
        &self,
        frames: &[Vec<f32>],
        scratch: &mut ExecScratch,
    ) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        self.forward_logits_batch_into(&[frames], &mut out, scratch);
        out.pop().expect("one sequence in, one sequence out")
    }

    /// Batched forward pass over several utterances at once; allocating
    /// wrapper over [`Self::forward_logits_batch_into`].
    pub fn forward_logits_batch(&self, utterances: &[&[Vec<f32>]]) -> Vec<Vec<Vec<f32>>> {
        let mut out = Vec::new();
        self.forward_logits_batch_into(utterances, &mut out, &mut ExecScratch::new());
        out
    }

    /// The quantized-datapath kernel: runs `utterances` in lockstep so
    /// every cell matvec fuses across the batch (block-circulant weights
    /// stream their cached spectra once per batch), writing framewise
    /// logits per utterance into `out` (shape-reusing: steady-state calls
    /// with unchanged shapes allocate nothing at all). Sequences may have
    /// unequal lengths. Per-utterance results are bit-identical to
    /// single-utterance execution — batching changes *when* work happens,
    /// never *what* is computed.
    ///
    /// # Panics
    ///
    /// Panics if any frame's dimension disagrees with the model.
    pub fn forward_logits_batch_into(
        &self,
        utterances: &[&[Vec<f32>]],
        out: &mut Vec<Vec<Vec<f32>>>,
        scratch: &mut ExecScratch,
    ) {
        self.forward_batch_core(utterances, None, out, scratch);
    }

    /// [`Self::forward_logits_batch_into`] with per-lane recurrent state:
    /// lane `s` starts from `states[s]` (a fresh state behaves exactly
    /// like the stateless kernel) and, on return, `states[s]` holds the
    /// state after the lane's final frame, ready for the session's next
    /// chunk. `None` lanes run stateless (zero initial state, nothing
    /// written back), so mixed batches of streaming chunks and whole
    /// utterances fuse into one lockstep pass.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != utterances.len()`, if a state's shape
    /// disagrees with the network, or on a frame-dimension mismatch.
    pub fn forward_logits_batch_states_into(
        &self,
        utterances: &[&[Vec<f32>]],
        states: &mut [Option<NetworkState>],
        out: &mut Vec<Vec<Vec<f32>>>,
        scratch: &mut ExecScratch,
    ) {
        assert_eq!(
            states.len(),
            utterances.len(),
            "one state slot per utterance"
        );
        self.forward_batch_core(utterances, Some(states), out, scratch);
    }

    fn forward_batch_core(
        &self,
        utterances: &[&[Vec<f32>]],
        mut states: Option<&mut [Option<NetworkState>]>,
        out: &mut Vec<Vec<Vec<f32>>>,
        scratch: &mut ExecScratch,
    ) {
        let n = utterances.len();
        let in_dim = self.net.input_dim();

        // Quantized input frames into ping-pong buffer `a`. `off` holds
        // n+1 frame offsets (total as the sentinel), so per-sequence
        // lengths are derivable without a separate buffer.
        scratch.off.clear();
        let mut total = 0usize;
        for u in utterances {
            scratch.off.push(total);
            total += u.len();
        }
        scratch.off.push(total);
        scratch.a.resize(total * in_dim, 0.0);
        for (s, u) in utterances.iter().enumerate() {
            for (t, f) in u.iter().enumerate() {
                assert_eq!(f.len(), in_dim, "input length must equal the feature dim");
                let dst = &mut scratch.a[(scratch.off[s] + t) * in_dim..][..in_dim];
                for (d, &v) in dst.iter_mut().zip(f.iter()) {
                    *d = self.q(v);
                }
            }
        }

        // Through the stack: each layer consumes `a`, produces `b`, swap.
        for (li, layer) in self.net.layers().iter().enumerate() {
            let st = states.as_deref_mut();
            match layer {
                RnnLayer::Lstm(l) => self.lstm_seq_batch(l, li, n, st, scratch),
                RnnLayer::Gru(g) => self.gru_seq_batch(g, li, n, st, scratch),
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }

        // Classifier head, reusing `out`'s allocations when shapes match.
        let top_dim = self
            .net
            .layers()
            .last()
            .expect("network has at least one layer")
            .output_dim();
        let classes = self.net.classifier_b.len();
        out.resize(n, Vec::new());
        for (s, seq) in out.iter_mut().enumerate() {
            seq.resize(utterances[s].len(), Vec::new());
            for (t, row) in seq.iter_mut().enumerate() {
                let h = &scratch.a[(scratch.off[s] + t) * top_dim..][..top_dim];
                row.resize(classes, 0.0);
                self.net.classifier_w.matvec_into(h, row);
                for (v, b) in row.iter_mut().zip(self.net.classifier_b.iter()) {
                    *v = self.q(*v + b);
                }
            }
        }
    }

    /// Batched LSTM lockstep with the hardware datapath (mirrors
    /// `ernn_model::LstmLayer::step` with quantization and PWL injected —
    /// kept in sync by the agreement tests below). Reads activations from
    /// `scratch.a`, writes to `scratch.b`. Lane `s` starts from layer
    /// `li` of `states[s]` when present (zeros otherwise) and writes its
    /// final recurrent state back there.
    fn lstm_seq_batch(
        &self,
        l: &LstmLayer<WeightMatrix>,
        li: usize,
        n: usize,
        states: Option<&mut [Option<NetworkState>]>,
        scratch: &mut ExecScratch,
    ) {
        let cfg = l.config();
        let h = cfg.hidden_dim;
        let r = cfg.output_dim;
        let in_dim = cfg.input_dim;
        let ExecScratch {
            a,
            b,
            off,
            active,
            xb,
            cb,
            yb,
            cn,
            yn,
            pre,
            rec,
            m,
            c_state,
            y_state,
            mv,
            ..
        } = scratch;
        let len_of = |s: usize| off[s + 1] - off[s];
        let max_t = (0..n).map(len_of).max().unwrap_or(0);
        b.resize(off[n] * r, 0.0);
        c_state.resize(n * h, 0.0);
        y_state.resize(n * r, 0.0);
        for s in 0..n {
            let cs = &mut c_state[s * h..(s + 1) * h];
            let ys = &mut y_state[s * r..(s + 1) * r];
            match states.as_ref().and_then(|st| st[s].as_ref()) {
                Some(ns) => {
                    cs.copy_from_slice(&ns.layers[li].c);
                    ys.copy_from_slice(&ns.layers[li].y);
                }
                None => {
                    cs.iter_mut().for_each(|v| *v = 0.0);
                    ys.iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }

        for t in 0..max_t {
            active.clear();
            active.extend((0..n).filter(|&s| t < len_of(s)));
            let bsz = active.len();
            xb.clear();
            cb.clear();
            yb.clear();
            for &s in active.iter() {
                xb.extend_from_slice(&a[(off[s] + t) * in_dim..][..in_dim]);
                cb.extend_from_slice(&c_state[s * h..(s + 1) * h]);
                yb.extend_from_slice(&y_state[s * r..(s + 1) * r]);
            }
            pre.resize(bsz * 4 * h, 0.0);
            rec.resize(bsz * 4 * h, 0.0);
            cn.resize(bsz * h, 0.0);
            m.resize(bsz * h, 0.0);
            l.wx.matvec_batch_into(xb, pre, bsz, mv);
            l.wr.matvec_batch_into(yb, rec, bsz, mv);
            for bi in 0..bsz {
                let pre = &mut pre[bi * 4 * h..(bi + 1) * 4 * h];
                let rec = &rec[bi * 4 * h..(bi + 1) * 4 * h];
                let c = &cb[bi * h..(bi + 1) * h];
                let c_new = &mut cn[bi * h..(bi + 1) * h];
                let m = &mut m[bi * h..(bi + 1) * h];
                for ((p, rv), bias) in pre.iter_mut().zip(rec.iter()).zip(l.bias.iter()) {
                    *p = self.q(*p + rv + bias);
                }
                if let Some([pi, pf, _]) = &l.peepholes {
                    for k in 0..h {
                        pre[k] = self.q(pre[k] + pi[k] * c[k]);
                        pre[h + k] = self.q(pre[h + k] + pf[k] * c[k]);
                    }
                }
                for k in 0..h {
                    let i_gate = self.sigmoid.eval(pre[k]);
                    let f_gate = self.sigmoid.eval(pre[h + k]);
                    let g_cell = match cfg.cell_activation {
                        ernn_model::Act::Sigmoid => self.sigmoid.eval(pre[2 * h + k]),
                        ernn_model::Act::Tanh => self.tanh.eval(pre[2 * h + k]),
                    };
                    c_new[k] = self.q(f_gate * c[k] + g_cell * i_gate);
                }
                for k in 0..h {
                    let mut po = pre[3 * h + k];
                    if let Some([_, _, p_o]) = &l.peepholes {
                        po = self.q(po + p_o[k] * c_new[k]);
                    }
                    let o_gate = self.sigmoid.eval(po);
                    m[k] = self.q(o_gate * self.tanh.eval(c_new[k]));
                }
            }
            match &l.wym {
                Some(w) => {
                    yn.resize(bsz * r, 0.0);
                    w.matvec_batch_into(m, yn, bsz, mv);
                    yn.iter_mut().for_each(|v| *v = self.q(*v));
                }
                None => {
                    yn.clear();
                    yn.extend_from_slice(m);
                }
            }
            for (bi, &s) in active.iter().enumerate() {
                c_state[s * h..(s + 1) * h].copy_from_slice(&cn[bi * h..(bi + 1) * h]);
                y_state[s * r..(s + 1) * r].copy_from_slice(&yn[bi * r..(bi + 1) * r]);
                b[(off[s] + t) * r..][..r].copy_from_slice(&yn[bi * r..(bi + 1) * r]);
            }
        }
        if let Some(st) = states {
            for s in 0..n {
                if let Some(ns) = st[s].as_mut() {
                    ns.layers[li]
                        .c
                        .copy_from_slice(&c_state[s * h..(s + 1) * h]);
                    ns.layers[li]
                        .y
                        .copy_from_slice(&y_state[s * r..(s + 1) * r]);
                }
            }
        }
    }

    /// Batched GRU lockstep with the hardware datapath (mirrors
    /// `ernn_model::GruLayer::step`). Reads activations from `scratch.a`,
    /// writes to `scratch.b`. Lane `s` starts from layer `li` of
    /// `states[s]` when present (zeros otherwise) and writes its final
    /// cell state back there.
    fn gru_seq_batch(
        &self,
        g: &GruLayer<WeightMatrix>,
        li: usize,
        n: usize,
        states: Option<&mut [Option<NetworkState>]>,
        scratch: &mut ExecScratch,
    ) {
        let h = g.hidden_dim();
        let in_dim = g.input_dim();
        let ExecScratch {
            a,
            b,
            off,
            active,
            xb,
            cb,
            cn,
            pre,
            rec,
            z,
            rc,
            pre_c,
            rec_c,
            c_state,
            mv,
            ..
        } = scratch;
        let len_of = |s: usize| off[s + 1] - off[s];
        let max_t = (0..n).map(len_of).max().unwrap_or(0);
        b.resize(off[n] * h, 0.0);
        c_state.resize(n * h, 0.0);
        for s in 0..n {
            let cs = &mut c_state[s * h..(s + 1) * h];
            match states.as_ref().and_then(|st| st[s].as_ref()) {
                Some(ns) => cs.copy_from_slice(&ns.layers[li].c),
                None => cs.iter_mut().for_each(|v| *v = 0.0),
            }
        }

        for t in 0..max_t {
            active.clear();
            active.extend((0..n).filter(|&s| t < len_of(s)));
            let bsz = active.len();
            xb.clear();
            cb.clear();
            for &s in active.iter() {
                xb.extend_from_slice(&a[(off[s] + t) * in_dim..][..in_dim]);
                cb.extend_from_slice(&c_state[s * h..(s + 1) * h]);
            }
            pre.resize(bsz * 2 * h, 0.0);
            rec.resize(bsz * 2 * h, 0.0);
            z.resize(bsz * h, 0.0);
            rc.resize(bsz * h, 0.0);
            pre_c.resize(bsz * h, 0.0);
            rec_c.resize(bsz * h, 0.0);
            cn.resize(bsz * h, 0.0);
            g.wzr_x.matvec_batch_into(xb, pre, bsz, mv);
            g.wzr_c.matvec_batch_into(cb, rec, bsz, mv);
            for bi in 0..bsz {
                let pre = &mut pre[bi * 2 * h..(bi + 1) * 2 * h];
                let rec = &rec[bi * 2 * h..(bi + 1) * 2 * h];
                let c = &cb[bi * h..(bi + 1) * h];
                for ((p, rv), bias) in pre.iter_mut().zip(rec.iter()).zip(g.bias_zr.iter()) {
                    *p = self.q(*p + rv + bias);
                }
                for k in 0..h {
                    z[bi * h + k] = self.sigmoid.eval(pre[k]);
                    rc[bi * h + k] = self.q(self.sigmoid.eval(pre[h + k]) * c[k]);
                }
            }
            g.wcx.matvec_batch_into(xb, pre_c, bsz, mv);
            g.wcc.matvec_batch_into(rc, rec_c, bsz, mv);
            for bi in 0..bsz {
                let pre_c = &mut pre_c[bi * h..(bi + 1) * h];
                let rec_c = &rec_c[bi * h..(bi + 1) * h];
                let c = &cb[bi * h..(bi + 1) * h];
                let c_new = &mut cn[bi * h..(bi + 1) * h];
                for ((p, rv), bias) in pre_c.iter_mut().zip(rec_c.iter()).zip(g.bias_c.iter()) {
                    *p = self.q(*p + rv + bias);
                }
                for k in 0..h {
                    let c_tilde = match g.candidate_activation {
                        ernn_model::Act::Sigmoid => self.sigmoid.eval(pre_c[k]),
                        ernn_model::Act::Tanh => self.tanh.eval(pre_c[k]),
                    };
                    c_new[k] = self.q((1.0 - z[bi * h + k]) * c[k] + z[bi * h + k] * c_tilde);
                }
            }
            for (bi, &s) in active.iter().enumerate() {
                c_state[s * h..(s + 1) * h].copy_from_slice(&cn[bi * h..(bi + 1) * h]);
                b[(off[s] + t) * h..][..h].copy_from_slice(&cn[bi * h..(bi + 1) * h]);
            }
        }
        if let Some(st) = states {
            for s in 0..n {
                if let Some(ns) = st[s].as_mut() {
                    ns.layers[li]
                        .c
                        .copy_from_slice(&c_state[s * h..(s + 1) * h]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ernn_model::{compress_network, BlockPolicy, CellType, NetworkBuilder};
    use rand::SeedableRng;

    fn compressed_net(cell: CellType) -> RnnNetwork<WeightMatrix> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let dense = NetworkBuilder::new(cell, 8, 5)
            .layer_dims(&[16])
            .peephole(true)
            .build(&mut rng);
        compress_network(&dense, BlockPolicy::uniform(4))
    }

    #[test]
    fn twelve_bit_outputs_stay_close_to_float() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let net = compressed_net(cell);
            let q = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());
            let frames = vec![vec![0.25f32; 8]; 6];
            let float_logits = net.forward_logits(&frames);
            let fixed_logits = q.forward_logits(&frames);
            for (a, b) in float_logits
                .iter()
                .flatten()
                .zip(fixed_logits.iter().flatten())
            {
                assert!((a - b).abs() < 0.05, "{cell}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn argmax_decisions_survive_quantization() {
        // The paper's claim: 12-bit quantization costs <0.1% accuracy. On
        // a random network, the framewise argmax should rarely flip.
        let net = compressed_net(CellType::Gru);
        let q = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        use rand::Rng;
        let mut flips = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let frames: Vec<Vec<f32>> = (0..10)
                .map(|_| (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect();
            let a = net.forward_logits(&frames);
            let b = q.forward_logits(&frames);
            for (x, y) in a.iter().zip(b.iter()) {
                total += 1;
                if ernn_linalg::ops::argmax(x) != ernn_linalg::ops::argmax(y) {
                    flips += 1;
                }
            }
        }
        // Untrained random networks have near-tied logits, the hardest
        // case for argmax stability; trained networks separate classes
        // far more. Allow 5% here; the corpus-level check lives in the
        // Phase-II quantization scan.
        assert!(
            (flips as f64) < 0.05 * total as f64,
            "{flips}/{total} argmax flips at 12 bits"
        );
    }

    #[test]
    fn fewer_bits_means_more_error() {
        let net = compressed_net(CellType::Lstm);
        let frames = vec![vec![0.3f32; 8]; 5];
        let float_logits = net.forward_logits(&frames);
        let err_at = |bits: u8| {
            let cfg = DatapathConfig {
                weight_bits: bits,
                activation_bits: bits,
                pwl_segments: 64,
            };
            let q = QuantizedNetwork::new(&net, &cfg);
            let logits = q.forward_logits(&frames);
            logits
                .iter()
                .flatten()
                .zip(float_logits.iter().flatten())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err_at(8) > err_at(12));
        assert!(err_at(12) >= err_at(16) - 1e-6);
    }

    #[test]
    fn batched_forward_is_bit_identical_to_sequential() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let net = compressed_net(cell);
            let q = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
            use rand::Rng;
            // Ragged utterance lengths exercise the shrinking active set.
            let utts: Vec<Vec<Vec<f32>>> = (0..5)
                .map(|s| {
                    (0..2 + s * 3)
                        .map(|_| (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                        .collect()
                })
                .collect();
            let refs: Vec<&[Vec<f32>]> = utts.iter().map(Vec::as_slice).collect();
            let batched = q.forward_logits_batch(&refs);
            let mut scratch = ExecScratch::new();
            for (s, utt) in utts.iter().enumerate() {
                assert_eq!(batched[s], q.forward_logits(utt), "{cell} utterance {s}");
                // Scratch reuse across calls changes nothing either.
                assert_eq!(
                    batched[s],
                    q.forward_logits_with(utt, &mut scratch),
                    "{cell} scratch reuse, utterance {s}"
                );
            }
        }
    }

    #[test]
    fn chunked_stateful_forward_matches_whole_utterance() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let net = compressed_net(cell);
            let q = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(19);
            use rand::Rng;
            let utt: Vec<Vec<f32>> = (0..13)
                .map(|_| (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect();
            let whole = q.forward_logits(&utt);
            // Uneven chunk sizes, state carried across every boundary.
            let mut scratch = ExecScratch::new();
            let mut states = vec![Some(q.fresh_state())];
            let mut got: Vec<Vec<f32>> = Vec::new();
            for chunk in [&utt[..4], &utt[4..5], &utt[5..11], &utt[11..]] {
                let mut out = Vec::new();
                q.forward_logits_batch_states_into(&[chunk], &mut states, &mut out, &mut scratch);
                got.extend(out.pop().expect("one lane out"));
            }
            assert_eq!(got, whole, "{cell}: chunked != whole");
        }
    }

    #[test]
    fn fresh_state_lane_matches_stateless_lane_in_a_mixed_batch() {
        let net = compressed_net(CellType::Lstm);
        let q = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        use rand::Rng;
        let utts: Vec<Vec<Vec<f32>>> = (0..3)
            .map(|s| {
                (0..4 + s)
                    .map(|_| (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                    .collect()
            })
            .collect();
        let refs: Vec<&[Vec<f32>]> = utts.iter().map(Vec::as_slice).collect();
        let stateless = q.forward_logits_batch(&refs);
        // Middle lane stateful, outer lanes stateless: identical logits,
        // and only the stateful lane's state is written back.
        let mut states = vec![None, Some(q.fresh_state()), None];
        let mut out = Vec::new();
        q.forward_logits_batch_states_into(&refs, &mut states, &mut out, &mut ExecScratch::new());
        assert_eq!(out, stateless);
        assert!(states[0].is_none() && states[2].is_none());
        let advanced = states[1].take().expect("state written back");
        assert_ne!(advanced, q.fresh_state(), "state should have advanced");
    }

    #[test]
    fn state_bytes_counts_activation_words() {
        let net = compressed_net(CellType::Gru);
        let q = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());
        // One GRU layer of hidden 16 at 12-bit activations → 16 × 2 bytes.
        assert_eq!(q.state_bytes(), 32);
        assert_eq!(q.fresh_state().num_elements(), 16);
    }

    #[test]
    fn quantization_report_is_populated() {
        let net = compressed_net(CellType::Lstm);
        let q = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());
        assert!(q.report.max_weight_error > 0.0);
        assert!(q.report.max_weight_error < 0.01);
    }
}
