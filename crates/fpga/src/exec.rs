//! Functional fixed-point execution of a compressed network.
//!
//! Phase II needs an *accuracy oracle* for quantization decisions: the
//! paper states 12-bit fixed point costs <0.1% accuracy (Sec. VII-D).
//! This module runs a trained network the way the hardware would —
//! quantized weights, quantized activations after every operator, and
//! piecewise-linear sigmoid/tanh — by materializing a quantized copy of
//! the network and evaluating it with PWL activations injected.

use ernn_linalg::{Matrix, WeightMatrix};
use ernn_model::{GruLayer, LstmLayer, RnnLayer, RnnNetwork};
use ernn_quant::{FixedFormat, PiecewiseLinear, Quantizer};

/// Hardware datapath configuration for functional simulation.
#[derive(Debug, Clone)]
pub struct DatapathConfig {
    /// Weight word length in bits.
    pub weight_bits: u8,
    /// Activation word length in bits.
    pub activation_bits: u8,
    /// Segments in the PWL sigmoid/tanh units.
    pub pwl_segments: usize,
}

impl DatapathConfig {
    /// The paper's final configuration: 12-bit weights and activations.
    pub fn paper_12bit() -> Self {
        DatapathConfig {
            weight_bits: 12,
            activation_bits: 12,
            pwl_segments: 64,
        }
    }

    /// The 16-bit configuration C-LSTM used.
    pub fn clstm_16bit() -> Self {
        DatapathConfig {
            weight_bits: 16,
            activation_bits: 16,
            pwl_segments: 64,
        }
    }
}

/// Statistics of the weight quantization pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantizationReport {
    /// Worst per-matrix max quantization error.
    pub max_weight_error: f32,
    /// Worst saturation rate across matrices.
    pub max_saturation: f32,
}

fn quantize_weight(m: &WeightMatrix, bits: u8, report: &mut QuantizationReport) -> WeightMatrix {
    match m {
        WeightMatrix::Dense(d) => {
            let fmt = FixedFormat::for_range(bits, d.max_abs().max(1e-6));
            let mut data = d.clone();
            let stats = Quantizer::new(fmt).apply(data.as_mut_slice());
            report.max_weight_error = report.max_weight_error.max(stats.max_abs_error);
            report.max_saturation = report.max_saturation.max(stats.saturation_rate);
            WeightMatrix::Dense(data)
        }
        WeightMatrix::Circulant(c) => {
            let max_abs = c
                .blocks()
                .iter()
                .fold(0.0f32, |m, v| m.max(v.abs()))
                .max(1e-6);
            let fmt = FixedFormat::for_range(bits, max_abs);
            let mut blocks = c.blocks().to_vec();
            let stats = Quantizer::new(fmt).apply(&mut blocks);
            report.max_weight_error = report.max_weight_error.max(stats.max_abs_error);
            report.max_saturation = report.max_saturation.max(stats.saturation_rate);
            let mut q = c.clone();
            q.set_blocks(&blocks);
            WeightMatrix::Circulant(q)
        }
    }
}

fn quantize_vec(v: &[f32], bits: u8) -> Vec<f32> {
    let max_abs = v.iter().fold(0.0f32, |m, x| m.max(x.abs())).max(1e-6);
    let fmt = FixedFormat::for_range(bits, max_abs);
    v.iter().map(|&x| fmt.quantize_f32(x)).collect()
}

/// A network whose weights are quantized and whose activations run through
/// PWL units — the functional twin of the FPGA datapath.
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    net: RnnNetwork<WeightMatrix>,
    activation_format: FixedFormat,
    sigmoid: PiecewiseLinear,
    tanh: PiecewiseLinear,
    /// Quantization statistics gathered while building.
    pub report: QuantizationReport,
}

impl QuantizedNetwork {
    /// Quantizes a compressed network for the given datapath.
    pub fn new(net: &RnnNetwork<WeightMatrix>, config: &DatapathConfig) -> Self {
        let mut report = QuantizationReport::default();
        let bits = config.weight_bits;
        let sigmoid = PiecewiseLinear::sigmoid(config.pwl_segments);
        let tanh = PiecewiseLinear::tanh(config.pwl_segments);

        let layers = net
            .layers()
            .iter()
            .map(|layer| match layer {
                RnnLayer::Lstm(l) => RnnLayer::Lstm(LstmLayer::from_parts(
                    *l.config(),
                    quantize_weight(&l.wx, bits, &mut report),
                    quantize_weight(&l.wr, bits, &mut report),
                    quantize_vec(&l.bias, bits),
                    l.peepholes.as_ref().map(|p| {
                        [
                            quantize_vec(&p[0], bits),
                            quantize_vec(&p[1], bits),
                            quantize_vec(&p[2], bits),
                        ]
                    }),
                    l.wym
                        .as_ref()
                        .map(|w| quantize_weight(w, bits, &mut report)),
                )),
                RnnLayer::Gru(g) => RnnLayer::Gru(GruLayer::from_parts(
                    g.input_dim(),
                    g.hidden_dim(),
                    g.candidate_activation,
                    quantize_weight(&g.wzr_x, bits, &mut report),
                    quantize_weight(&g.wzr_c, bits, &mut report),
                    quantize_vec(&g.bias_zr, bits),
                    quantize_weight(&g.wcx, bits, &mut report),
                    quantize_weight(&g.wcc, bits, &mut report),
                    quantize_vec(&g.bias_c, bits),
                )),
            })
            .collect();

        let mut classifier_w_data = net.classifier_w.clone();
        let fmt = FixedFormat::for_range(bits, classifier_w_data.max_abs().max(1e-6));
        Quantizer::new(fmt).apply(classifier_w_data.as_mut_slice());
        let classifier_w: Matrix = classifier_w_data;
        let classifier_b = quantize_vec(&net.classifier_b, bits);

        // Activations in RNNs live in (−8, 8) comfortably; Q(int=3) covers
        // the pre-activation range seen in practice.
        let activation_format = FixedFormat::for_range(config.activation_bits, 8.0);

        QuantizedNetwork {
            net: RnnNetwork::from_parts(layers, classifier_w, classifier_b),
            activation_format,
            sigmoid,
            tanh,
            report,
        }
    }

    /// The quantized network (weights only; activation handling lives in
    /// [`Self::forward_logits`]).
    pub fn network(&self) -> &RnnNetwork<WeightMatrix> {
        &self.net
    }

    #[inline]
    fn q(&self, x: f32) -> f32 {
        self.activation_format.quantize_f32(x)
    }

    /// Forward pass the way the hardware computes it: quantized inputs,
    /// quantized intermediate vectors after every matvec/point-wise
    /// operator, and piecewise-linear sigmoid/tanh units.
    pub fn forward_logits(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut seq: Vec<Vec<f32>> = frames
            .iter()
            .map(|f| f.iter().map(|&v| self.q(v)).collect())
            .collect();
        for layer in self.net.layers() {
            seq = match layer {
                RnnLayer::Lstm(l) => self.lstm_seq(l, &seq),
                RnnLayer::Gru(g) => self.gru_seq(g, &seq),
            };
        }
        seq.iter()
            .map(|h| {
                let mut logits = self.net.classifier_w.matvec(h);
                for (v, b) in logits.iter_mut().zip(self.net.classifier_b.iter()) {
                    *v = self.q(*v + b);
                }
                logits
            })
            .collect()
    }

    /// LSTM sequence with the hardware datapath (mirrors
    /// `ernn_model::LstmLayer::step` with quantization and PWL injected —
    /// kept in sync by the agreement tests below).
    fn lstm_seq(&self, l: &LstmLayer<WeightMatrix>, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        use ernn_linalg::MatVec;
        let cfg = l.config();
        let h = cfg.hidden_dim;
        let mut c = vec![0.0f32; h];
        let mut y = vec![0.0f32; cfg.output_dim];
        let mut outputs = Vec::with_capacity(inputs.len());
        for x in inputs {
            let mut pre = l.wx.matvec(x);
            let rec = l.wr.matvec(&y);
            for ((p, r), b) in pre.iter_mut().zip(rec.iter()).zip(l.bias.iter()) {
                *p = self.q(*p + r + b);
            }
            if let Some([pi, pf, _]) = &l.peepholes {
                for k in 0..h {
                    pre[k] = self.q(pre[k] + pi[k] * c[k]);
                    pre[h + k] = self.q(pre[h + k] + pf[k] * c[k]);
                }
            }
            let mut c_new = vec![0.0f32; h];
            let mut g_vec = vec![0.0f32; h];
            for k in 0..h {
                let i_gate = self.sigmoid.eval(pre[k]);
                let f_gate = self.sigmoid.eval(pre[h + k]);
                let g_cell = match cfg.cell_activation {
                    ernn_model::Act::Sigmoid => self.sigmoid.eval(pre[2 * h + k]),
                    ernn_model::Act::Tanh => self.tanh.eval(pre[2 * h + k]),
                };
                g_vec[k] = g_cell;
                c_new[k] = self.q(f_gate * c[k] + g_cell * i_gate);
            }
            let mut m = vec![0.0f32; h];
            for k in 0..h {
                let mut po = pre[3 * h + k];
                if let Some([_, _, p_o]) = &l.peepholes {
                    po = self.q(po + p_o[k] * c_new[k]);
                }
                let o_gate = self.sigmoid.eval(po);
                m[k] = self.q(o_gate * self.tanh.eval(c_new[k]));
            }
            y = match &l.wym {
                Some(w) => {
                    let mut out = w.matvec(&m);
                    out.iter_mut().for_each(|v| *v = self.q(*v));
                    out
                }
                None => m,
            };
            c = c_new;
            outputs.push(y.clone());
        }
        outputs
    }

    /// GRU sequence with the hardware datapath (mirrors
    /// `ernn_model::GruLayer::step`).
    fn gru_seq(&self, g: &GruLayer<WeightMatrix>, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        use ernn_linalg::MatVec;
        let h = g.hidden_dim();
        let mut c = vec![0.0f32; h];
        let mut outputs = Vec::with_capacity(inputs.len());
        for x in inputs {
            let mut pre = g.wzr_x.matvec(x);
            let rec = g.wzr_c.matvec(&c);
            for ((p, r), b) in pre.iter_mut().zip(rec.iter()).zip(g.bias_zr.iter()) {
                *p = self.q(*p + r + b);
            }
            let z: Vec<f32> = pre[..h].iter().map(|&v| self.sigmoid.eval(v)).collect();
            let r: Vec<f32> = pre[h..].iter().map(|&v| self.sigmoid.eval(v)).collect();
            let rc: Vec<f32> = r.iter().zip(c.iter()).map(|(a, b)| self.q(a * b)).collect();
            let mut pre_c = g.wcx.matvec(x);
            let rec_c = g.wcc.matvec(&rc);
            for ((p, rr), b) in pre_c.iter_mut().zip(rec_c.iter()).zip(g.bias_c.iter()) {
                *p = self.q(*p + rr + b);
            }
            let c_tilde: Vec<f32> = pre_c
                .iter()
                .map(|&v| match g.candidate_activation {
                    ernn_model::Act::Sigmoid => self.sigmoid.eval(v),
                    ernn_model::Act::Tanh => self.tanh.eval(v),
                })
                .collect();
            c = (0..h)
                .map(|k| self.q((1.0 - z[k]) * c[k] + z[k] * c_tilde[k]))
                .collect();
            outputs.push(c.clone());
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ernn_model::{compress_network, BlockPolicy, CellType, NetworkBuilder};
    use rand::SeedableRng;

    fn compressed_net(cell: CellType) -> RnnNetwork<WeightMatrix> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let dense = NetworkBuilder::new(cell, 8, 5)
            .layer_dims(&[16])
            .peephole(true)
            .build(&mut rng);
        compress_network(&dense, BlockPolicy::uniform(4))
    }

    #[test]
    fn twelve_bit_outputs_stay_close_to_float() {
        for cell in [CellType::Lstm, CellType::Gru] {
            let net = compressed_net(cell);
            let q = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());
            let frames = vec![vec![0.25f32; 8]; 6];
            let float_logits = net.forward_logits(&frames);
            let fixed_logits = q.forward_logits(&frames);
            for (a, b) in float_logits
                .iter()
                .flatten()
                .zip(fixed_logits.iter().flatten())
            {
                assert!((a - b).abs() < 0.05, "{cell}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn argmax_decisions_survive_quantization() {
        // The paper's claim: 12-bit quantization costs <0.1% accuracy. On
        // a random network, the framewise argmax should rarely flip.
        let net = compressed_net(CellType::Gru);
        let q = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        use rand::Rng;
        let mut flips = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let frames: Vec<Vec<f32>> = (0..10)
                .map(|_| (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect();
            let a = net.forward_logits(&frames);
            let b = q.forward_logits(&frames);
            for (x, y) in a.iter().zip(b.iter()) {
                total += 1;
                if ernn_linalg::ops::argmax(x) != ernn_linalg::ops::argmax(y) {
                    flips += 1;
                }
            }
        }
        // Untrained random networks have near-tied logits, the hardest
        // case for argmax stability; trained networks separate classes
        // far more. Allow 5% here; the corpus-level check lives in the
        // Phase-II quantization scan.
        assert!(
            (flips as f64) < 0.05 * total as f64,
            "{flips}/{total} argmax flips at 12 bits"
        );
    }

    #[test]
    fn fewer_bits_means_more_error() {
        let net = compressed_net(CellType::Lstm);
        let frames = vec![vec![0.3f32; 8]; 5];
        let float_logits = net.forward_logits(&frames);
        let err_at = |bits: u8| {
            let cfg = DatapathConfig {
                weight_bits: bits,
                activation_bits: bits,
                pwl_segments: 64,
            };
            let q = QuantizedNetwork::new(&net, &cfg);
            let logits = q.forward_logits(&frames);
            logits
                .iter()
                .flatten()
                .zip(float_logits.iter().flatten())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err_at(8) > err_at(12));
        assert!(err_at(12) >= err_at(16) - 1e-6);
    }

    #[test]
    fn quantization_report_is_populated() {
        let net = compressed_net(CellType::Lstm);
        let q = QuantizedNetwork::new(&net, &DatapathConfig::paper_12bit());
        assert!(q.report.max_weight_error > 0.0);
        assert!(q.report.max_weight_error < 0.01);
    }
}
