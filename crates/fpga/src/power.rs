//! Board power and energy-efficiency model.
//!
//! The paper reports wall-power measurements (Table III: ESE 41 W, C-LSTM
//! 22 W, E-RNN 22–29 W) — physical boards we cannot plug in. This model
//! decomposes power into static leakage plus per-resource dynamic terms at
//! the 200 MHz deployment clock. The per-resource coefficients are
//! calibrated once against the paper's E-RNN/7V3 measurement and then
//! applied uniformly, so *relative* numbers between designs follow from
//! resource usage, not per-design tuning. Off-chip DDR traffic (which only
//! ESE needs, for its activation lookup tables and batching buffers) is a
//! separate, clearly-labelled term.

use crate::accelerator::AccelReport;
use crate::device::Device;

/// Dynamic power per active DSP slice at 200 MHz (W).
pub const DSP_W: f64 = 4.0e-3;
/// Dynamic power per active LUT at 200 MHz (W).
pub const LUT_W: f64 = 16.0e-6;
/// Dynamic power per active 36 Kb BRAM block at 200 MHz (W).
pub const BRAM_W: f64 = 2.6e-3;
/// Clock tree, PLLs, PCIe PHY and board overhead (W).
pub const BOARD_OVERHEAD_W: f64 = 3.0;
/// DDR3 interface + DRAM device power when off-chip traffic is sustained
/// (W) — the ESE design streams activation tables and batched frames.
pub const DDR_SUBSYSTEM_W: f64 = 18.0;

/// Static leakage by process node (W): large 28 nm parts leak more than
/// the 20 nm UltraScale generation.
pub fn static_power(device: &Device) -> f64 {
    match device.process_nm {
        28 => 3.5,
        20 => 2.0,
        nm => 2.0 + 1.5 * (nm as f64 / 20.0 - 1.0).max(0.0),
    }
}

/// Estimated board power for an accelerator report.
pub fn board_power(report: &AccelReport, device: &Device, uses_ddr: bool) -> f64 {
    let dynamic = report.dsp_used as f64 * DSP_W
        + report.lut_used as f64 * LUT_W
        + report.bram_used as f64 * BRAM_W;
    let ddr = if uses_ddr { DDR_SUBSYSTEM_W } else { 0.0 };
    static_power(device) + dynamic + BOARD_OVERHEAD_W + ddr
}

/// Energy efficiency in frames per second per watt — the paper's bottom
/// line metric.
pub fn energy_efficiency(fps: f64, power_w: f64) -> f64 {
    fps / power_w.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::{Accelerator, RnnSpec};
    use crate::device::{ADM_PCIE_7V3, XCKU060};

    #[test]
    fn ernn_power_lands_in_paper_band() {
        // Paper Table III: E-RNN designs on the 7V3 measure 22–29 W.
        for spec in [
            RnnSpec::lstm_1024(8, 12),
            RnnSpec::lstm_1024(16, 12),
            RnnSpec::gru_1024(8, 12),
            RnnSpec::gru_1024(16, 12),
        ] {
            let r = Accelerator::new(spec, ADM_PCIE_7V3).report("d");
            let p = board_power(&r, &ADM_PCIE_7V3, false);
            assert!((15.0..=32.0).contains(&p), "{}: {p} W", r.name);
        }
    }

    #[test]
    fn ddr_subsystem_dominates_ese_style_designs() {
        let r = Accelerator::new(RnnSpec::lstm_1024(8, 12), XCKU060).report("d");
        let without = board_power(&r, &XCKU060, false);
        let with = board_power(&r, &XCKU060, true);
        assert!((with - without - DDR_SUBSYSTEM_W).abs() < 1e-9);
    }

    #[test]
    fn newer_process_leaks_less() {
        assert!(static_power(&XCKU060) < static_power(&ADM_PCIE_7V3));
    }

    #[test]
    fn efficiency_is_fps_per_watt() {
        assert!((energy_efficiency(10_000.0, 25.0) - 400.0).abs() < 1e-9);
    }
}
