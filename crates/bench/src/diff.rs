//! Bench-artifact regression diffing.
//!
//! `BENCH_*.json` artifacts are deterministic snapshots of virtual-time
//! serving behavior (only wall-clock `host_us` fields vary run to run),
//! so comparing a fresh artifact against a committed baseline is a real
//! regression gate, not a statistical one: any delta is a behavior
//! change. This module gives the `bench_diff` binary its pieces — a
//! minimal recursive-descent JSON parser (the build is offline, no
//! serde), a flattener from nested documents to dotted-path numeric
//! leaves, per-metric direction heuristics (is higher worse?), and the
//! threshold comparison itself.
//!
//! Keys named `host_us` (wall clock) and per-request audit arrays
//! (`admission_shed`) are excluded from gating; everything else numeric
//! is compared. Documents whose `schema_version` fields disagree are
//! declared incomparable rather than diffed field by field.

use std::collections::BTreeMap;

/// A parsed JSON value — just enough structure for bench artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers the artifacts'
    /// counters and micro-second timings exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a top-level object field.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let slice = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number slice");
    slice
        .parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number '{slice}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Artifacts never emit surrogate pairs; map
                        // unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 passes through untouched.
                let len = utf8_len(b);
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| format!("truncated UTF-8 at byte {pos}"))?;
                out.push_str(
                    std::str::from_utf8(chunk)
                        .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?,
                );
                *pos += len;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Keys whose subtrees are never gated: wall clock and per-request
/// audit slices (useful for inspection, too granular for a pass/fail
/// gate).
const SKIP_KEYS: [&str; 2] = ["host_us", "admission_shed"];

/// Identity fields tried, in order, to label array elements by content
/// instead of position — so inserting a row doesn't shift every
/// later row's path.
const IDENTITY_KEYS: [&str; 5] = ["config", "label", "name", "bench", "model"];

/// Flattens a document to its numeric leaves keyed by dotted path
/// (array elements labeled by an identity field when they carry one,
/// by index otherwise). Skips the audit subtrees (`host_us`,
/// `admission_shed`) excluded from gating.
pub fn flatten(value: &JsonValue) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(value, String::new(), &mut out);
    out
}

fn walk(value: &JsonValue, path: String, out: &mut BTreeMap<String, f64>) {
    match value {
        JsonValue::Num(n) => {
            out.insert(path, *n);
        }
        JsonValue::Obj(fields) => {
            for (key, v) in fields {
                if SKIP_KEYS.contains(&key.as_str()) {
                    continue;
                }
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                walk(v, child, out);
            }
        }
        JsonValue::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = element_label(item).unwrap_or_else(|| i.to_string());
                walk(item, format!("{path}[{label}]"), out);
            }
        }
        JsonValue::Null | JsonValue::Bool(_) | JsonValue::Str(_) => {}
    }
}

/// A content-derived label for an array element, when it has one.
fn element_label(item: &JsonValue) -> Option<String> {
    // Attribution rows are identified by the (device, model) pair —
    // checked before the single-field keys so `model` alone doesn't
    // claim them first.
    if let (Some(d), Some(m)) = (
        item.get("device").and_then(JsonValue::as_num),
        item.get("model").and_then(JsonValue::as_num),
    ) {
        return Some(format!("device={d},model={m}"));
    }
    for key in IDENTITY_KEYS {
        match item.get(key) {
            Some(JsonValue::Str(s)) => return Some(s.clone()),
            Some(JsonValue::Num(n)) => return Some(format!("{key}={n}")),
            _ => {}
        }
    }
    None
}

/// Which direction of change regresses a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// An increase is a regression (latency, misses, sheds, stalls…).
    HigherWorse,
    /// A decrease is a regression (throughput, completions…).
    LowerWorse,
    /// Reported, never gated (ids, versions, configuration echoes).
    Neutral,
}

/// Infers the regression direction of a metric from the last segment of
/// its dotted path.
pub fn direction(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    const NEUTRAL: [&str; 9] = [
        "schema_version",
        "requests",
        "devices",
        "device",
        "model",
        "id",
        "batches",
        "weight_budget_bytes",
        "interval_us",
    ];
    if NEUTRAL.contains(&leaf) || leaf.ends_with("_slo_us") {
        return Direction::Neutral;
    }
    const LOWER_WORSE: [&str; 7] = [
        "throughput",
        "rps",
        "fps",
        "speedup",
        "completed",
        "admitted",
        "util",
    ];
    if LOWER_WORSE.iter().any(|t| leaf.contains(t)) {
        return Direction::LowerWorse;
    }
    const HIGHER_WORSE: [&str; 11] = [
        "miss", "shed", "dropped", "evict", "load", "stall", "abort", "exhaust", "retry", "_us",
        "queue",
    ];
    if HIGHER_WORSE.iter().any(|t| leaf.contains(t)) {
        return Direction::HigherWorse;
    }
    Direction::Neutral
}

/// One metric's comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted path of the metric.
    pub path: String,
    /// Baseline value.
    pub old: f64,
    /// Current value.
    pub new: f64,
    /// Relative change `(new - old) / max(|old|, ε)`.
    pub rel: f64,
    /// The inferred gating direction.
    pub direction: Direction,
    /// Whether this delta regresses past the threshold.
    pub regressed: bool,
}

/// The full comparison of two artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Shared metrics whose values changed, worst regression first.
    pub changed: Vec<MetricDelta>,
    /// Metrics only in the baseline.
    pub removed: Vec<String>,
    /// Metrics only in the current artifact.
    pub added: Vec<String>,
    /// Shared metrics compared in total.
    pub compared: usize,
    /// Set when the documents' `schema_version`s disagree — the diff is
    /// then vacuous and must not gate.
    pub incomparable: Option<String>,
}

impl DiffReport {
    /// Whether any gated metric regressed past its threshold.
    pub fn regressed(&self) -> bool {
        self.changed.iter().any(|d| d.regressed)
    }
}

/// Compares two parsed artifacts under a relative regression
/// `threshold` (e.g. `0.25` = a worse-direction move beyond 25% fails).
///
/// Baseline-vs-current runs of the same code produce bit-identical
/// artifacts (virtual clock), so every reported delta is a real
/// behavior change; the threshold only decides which are big enough to
/// fail CI.
pub fn compare(baseline: &JsonValue, current: &JsonValue, threshold: f64) -> DiffReport {
    let schema = |v: &JsonValue| v.get("schema_version").and_then(JsonValue::as_num);
    let (sb, sc) = (schema(baseline), schema(current));
    if sb != sc {
        return DiffReport {
            incomparable: Some(format!(
                "schema_version {:?} (baseline) vs {:?} (current)",
                sb, sc
            )),
            ..DiffReport::default()
        };
    }
    let old = flatten(baseline);
    let new = flatten(current);
    let mut report = DiffReport::default();
    for (path, &old_v) in &old {
        let Some(&new_v) = new.get(path) else {
            report.removed.push(path.clone());
            continue;
        };
        report.compared += 1;
        if old_v == new_v {
            continue;
        }
        let dir = direction(path);
        let rel = (new_v - old_v) / old_v.abs().max(1e-12);
        let regressed = match dir {
            Direction::HigherWorse => rel > threshold,
            Direction::LowerWorse => rel < -threshold,
            Direction::Neutral => false,
        };
        report.changed.push(MetricDelta {
            path: path.clone(),
            old: old_v,
            new: new_v,
            rel,
            direction: dir,
            regressed,
        });
    }
    for path in new.keys() {
        if !old.contains_key(path) {
            report.added.push(path.clone());
        }
    }
    // Worst first: regressions, then by relative magnitude.
    report.changed.sort_by(|a, b| {
        b.regressed
            .cmp(&a.regressed)
            .then(b.rel.abs().total_cmp(&a.rel.abs()))
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonObject;

    #[test]
    fn parser_round_trips_bench_artifacts() {
        let doc = JsonObject::new()
            .bench_header("sched_sweep")
            .num("miss_rate", 0.125)
            .str("label", "a\"b\\c\nd")
            .raw(
                "rows",
                crate::json::array([JsonObject::new()
                    .str("config", "edf")
                    .int("shed", 3)
                    .render()]),
            )
            .render();
        let parsed = parse(&doc).expect("parses");
        assert_eq!(
            parsed.get("schema_version").and_then(JsonValue::as_num),
            Some(crate::json::BENCH_SCHEMA_VERSION as f64)
        );
        assert_eq!(
            parsed.get("label").and_then(JsonValue::as_str),
            Some("a\"b\\c\nd")
        );
        let rows = parsed.get("rows").expect("rows");
        assert_eq!(
            rows,
            &JsonValue::Arr(vec![JsonValue::Obj(vec![
                ("config".into(), JsonValue::Str("edf".into())),
                ("shed".into(), JsonValue::Num(3.0)),
            ])])
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
        assert_eq!(parse(" null ").unwrap(), JsonValue::Null);
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Num(-1500.0));
    }

    #[test]
    fn flatten_labels_rows_by_identity_and_skips_audit_keys() {
        let doc = parse(
            r#"{"schema_version":2,"host_us":9.0,
                "rows":[
                  {"config":"fifo","p99_us":10.0,"admission_shed":[{"id":1,"predicted_us":5.0}]},
                  {"config":"edf","p99_us":7.0}
                ],
                "attribution":[{"device":0,"model":1,"queue_us":3.0}]}"#,
        )
        .unwrap();
        let flat = flatten(&doc);
        assert_eq!(flat.get("rows[fifo].p99_us"), Some(&10.0));
        assert_eq!(flat.get("rows[edf].p99_us"), Some(&7.0));
        assert_eq!(
            flat.get("attribution[device=0,model=1].queue_us"),
            Some(&3.0)
        );
        assert!(flat.keys().all(|k| !k.contains("host_us")));
        assert!(flat.keys().all(|k| !k.contains("admission_shed")));
    }

    #[test]
    fn directions_follow_the_metric_vocabulary() {
        assert_eq!(direction("rows[edf].miss_rate"), Direction::HigherWorse);
        assert_eq!(direction("rows[edf].p99_us"), Direction::HigherWorse);
        assert_eq!(direction("rows[edf].model_loads"), Direction::HigherWorse);
        assert_eq!(direction("rows[edf].throughput_rps"), Direction::LowerWorse);
        assert_eq!(direction("rows[edf].completed"), Direction::LowerWorse);
        assert_eq!(direction("schema_version"), Direction::Neutral);
        assert_eq!(direction("interactive_slo_us"), Direction::Neutral);
        assert_eq!(direction("requests"), Direction::Neutral);
    }

    #[test]
    fn compare_flags_only_worse_direction_moves_past_threshold() {
        let base = parse(
            r#"{"schema_version":2,"rows":[{"config":"edf","p99_us":100.0,
                "throughput_rps":50.0,"completed":40,"miss_rate":0.0}]}"#,
        )
        .unwrap();
        let better = parse(
            r#"{"schema_version":2,"rows":[{"config":"edf","p99_us":60.0,
                "throughput_rps":80.0,"completed":40,"miss_rate":0.0}]}"#,
        )
        .unwrap();
        let report = compare(&base, &better, 0.25);
        assert!(!report.regressed(), "{:?}", report.changed);
        assert_eq!(report.changed.len(), 2);

        let worse = parse(
            r#"{"schema_version":2,"rows":[{"config":"edf","p99_us":140.0,
                "throughput_rps":50.0,"completed":40,"miss_rate":0.05}]}"#,
        )
        .unwrap();
        let report = compare(&base, &worse, 0.25);
        assert!(report.regressed());
        // Worst first: the zero-to-nonzero miss rate dominates.
        assert_eq!(report.changed[0].path, "rows[edf].miss_rate");
        assert!(report.changed.iter().all(|d| !d.regressed
            || matches!(d.direction, Direction::HigherWorse | Direction::LowerWorse)));
        // Within threshold passes: +10% p99 under a 25% gate.
        let mild = parse(
            r#"{"schema_version":2,"rows":[{"config":"edf","p99_us":110.0,
                "throughput_rps":50.0,"completed":40,"miss_rate":0.0}]}"#,
        )
        .unwrap();
        assert!(!compare(&base, &mild, 0.25).regressed());
    }

    #[test]
    fn schema_mismatch_is_incomparable_and_added_removed_never_gate() {
        let v2 = parse(r#"{"schema_version":2,"x_us":1.0}"#).unwrap();
        let v3 = parse(r#"{"schema_version":3,"x_us":9.0}"#).unwrap();
        let report = compare(&v2, &v3, 0.25);
        assert!(report.incomparable.is_some());
        assert!(!report.regressed());

        let grown = parse(r#"{"schema_version":2,"x_us":1.0,"brand_new_miss_rate":1.0}"#).unwrap();
        let report = compare(&v2, &grown, 0.25);
        assert_eq!(report.added, vec!["brand_new_miss_rate".to_string()]);
        assert!(!report.regressed());
    }
}
