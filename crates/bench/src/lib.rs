//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the experiment index):
//!
//! | binary          | artifact  |
//! |-----------------|-----------|
//! | `table1`        | Table I   (LSTM PER vs layer/block size) |
//! | `table2`        | Table II  (GRU PER vs layer/block size)  |
//! | `table3`        | Table III (hardware comparison)          |
//! | `table4`        | Table IV  (platform resources)           |
//! | `fig5`          | Fig. 5    (Euclidean mapping example)    |
//! | `fig8`          | Fig. 8    (multiplication-count curves)  |
//! | `phase1_trials` | Sec. VI   (Phase-I trial-count claim)    |

pub mod alloc;
pub mod diff;
pub mod json;

use ernn_admm::{AdmmConfig, AdmmTrainer};
use ernn_asr::{evaluate_per, SynthCorpus};
use ernn_model::trainer::{train, TrainOptions};
use ernn_model::{
    compress_network_layers, BlockPolicy, CellType, Matrix, NetworkBuilder, RnnNetwork, Sgd,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Training recipe for one table row.
#[derive(Debug, Clone, Copy)]
pub struct RowRecipe {
    /// Dense pre-training epochs (for the shared baseline).
    pub pretrain_epochs: usize,
    /// ADMM outer iterations.
    pub admm_iterations: usize,
    /// Epochs per ADMM iteration.
    pub admm_epochs: usize,
    /// Constrained retraining epochs after projection.
    pub retrain_epochs: usize,
    /// Pre-training learning rate.
    pub pretrain_lr: f32,
    /// ADMM/retraining learning rate.
    pub admm_lr: f32,
}

impl RowRecipe {
    /// The recipe used for the recorded experiment runs.
    pub fn full() -> Self {
        RowRecipe {
            pretrain_epochs: 24,
            admm_iterations: 8,
            admm_epochs: 2,
            retrain_epochs: 6,
            pretrain_lr: 0.08,
            admm_lr: 0.02,
        }
    }

    /// A reduced recipe for smoke runs (`--quick`).
    pub fn quick() -> Self {
        RowRecipe {
            pretrain_epochs: 8,
            admm_iterations: 3,
            admm_epochs: 1,
            retrain_epochs: 2,
            pretrain_lr: 0.08,
            admm_lr: 0.02,
        }
    }
}

/// One row of a Table I/II-style model grid.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Row id, matching the paper's table.
    pub id: usize,
    /// Hidden dims per layer (the paper's "Layer Size", scaled ÷8).
    pub layer_dims: Vec<usize>,
    /// Per-layer block sizes; `None` marks the uncompressed baseline row.
    pub blocks: Option<Vec<usize>>,
    /// LSTM peephole connections.
    pub peephole: bool,
    /// LSTM projection dim.
    pub projection: Option<usize>,
}

/// Result of evaluating one row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// The row definition.
    pub row: ModelRow,
    /// Measured test PER (%).
    pub per: f64,
    /// Degradation versus this row's baseline (PER percentage points);
    /// zero (by definition) for baseline rows.
    pub degradation: f64,
}

/// Builds and pre-trains the dense baseline for a layer-size group.
pub fn train_baseline(
    cell: CellType,
    row: &ModelRow,
    corpus: &SynthCorpus,
    recipe: &RowRecipe,
    seed: u64,
) -> (RnnNetwork<Matrix>, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = NetworkBuilder::new(cell, corpus.feature_dim, corpus.num_classes())
        .layer_dims(&row.layer_dims)
        .peephole(row.peephole);
    if let Some(p) = row.projection {
        builder = builder.projection(p);
    }
    let mut net = builder.build(&mut rng);
    let data = corpus.train_sequences();
    let mut opt = Sgd::new(recipe.pretrain_lr).momentum(0.9).clip_norm(2.0);
    train(
        &mut net,
        &data,
        TrainOptions {
            epochs: recipe.pretrain_epochs,
            lr_decay: 0.92,
            shuffle: true,
        },
        &mut opt,
        &mut rng,
    );
    let per = evaluate_per(&net, &corpus.test);
    (net, per)
}

/// Runs the ADMM pipeline for one compressed row starting from a
/// pre-trained baseline and returns the compressed-model PER (%).
pub fn evaluate_compressed_row(
    baseline: &RnnNetwork<Matrix>,
    blocks: &[usize],
    corpus: &SynthCorpus,
    recipe: &RowRecipe,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = baseline.clone();
    let policies: Vec<BlockPolicy> = blocks.iter().map(|&b| BlockPolicy::uniform(b)).collect();
    let cfg = AdmmConfig {
        rho: 0.05,
        rho_growth: 1.5,
        iterations: recipe.admm_iterations,
        epochs_per_iter: recipe.admm_epochs,
        retrain_epochs: recipe.retrain_epochs,
        residual_tol: 1e-4,
    };
    let mut trainer = AdmmTrainer::with_layer_policies(&net, &policies, cfg);
    let data = corpus.train_sequences();
    let mut opt = Sgd::new(recipe.admm_lr).momentum(0.9).clip_norm(2.0);
    trainer.run(&mut net, &data, &mut opt, &mut rng);
    trainer.finalize(&mut net);
    let mut opt2 = Sgd::new(recipe.admm_lr * 0.75).momentum(0.9).clip_norm(2.0);
    trainer.retrain_constrained(&mut net, &data, recipe.retrain_epochs, &mut opt2, &mut rng);
    let compressed = compress_network_layers(&net, &policies);
    evaluate_per(&compressed, &corpus.test)
}

/// Formats a block-size list like the paper ("4-8", "-" for baselines).
pub fn blocks_label(blocks: &Option<Vec<usize>>) -> String {
    match blocks {
        None => "-".to_string(),
        Some(bs) => bs
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join("-"),
    }
}

/// Formats a layer-dims list like the paper ("64-64").
pub fn dims_label(dims: &[usize]) -> String {
    dims.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("-")
}

/// The Table I (LSTM) grid, scaled ÷8 from the paper's layer sizes.
pub fn table1_grid() -> Vec<ModelRow> {
    let mut rows = Vec::new();
    let mut id = 1;
    // 256-256-256 group -> 32-32-32 (no peephole, no projection).
    for blocks in [None, Some(vec![2, 2, 2]), Some(vec![4, 4, 4])] {
        rows.push(ModelRow {
            id,
            layer_dims: vec![32, 32, 32],
            blocks,
            peephole: false,
            projection: None,
        });
        id += 1;
    }
    // 512-512 group -> 64-64 (peephole).
    for blocks in [
        None,
        Some(vec![4, 4]),
        Some(vec![4, 8]),
        Some(vec![8, 4]),
        Some(vec![8, 8]),
    ] {
        rows.push(ModelRow {
            id,
            layer_dims: vec![64, 64],
            blocks,
            peephole: true,
            projection: None,
        });
        id += 1;
    }
    // 1024-1024 group -> 128-128 with projection 64 (peephole+projection).
    for blocks in [
        None,
        Some(vec![4, 4]),
        Some(vec![4, 8]),
        Some(vec![8, 4]),
        Some(vec![8, 8]),
        Some(vec![8, 16]),
        Some(vec![16, 8]),
        Some(vec![16, 16]),
    ] {
        rows.push(ModelRow {
            id,
            layer_dims: vec![128, 128],
            blocks,
            peephole: true,
            projection: Some(64),
        });
        id += 1;
    }
    rows
}

/// The Table II (GRU) grid — same structure, no peephole/projection
/// options (GRUs have neither).
pub fn table2_grid() -> Vec<ModelRow> {
    let mut rows = Vec::new();
    let mut id = 1;
    for blocks in [None, Some(vec![4, 4, 4]), Some(vec![8, 8, 8])] {
        rows.push(ModelRow {
            id,
            layer_dims: vec![32, 32, 32],
            blocks,
            peephole: false,
            projection: None,
        });
        id += 1;
    }
    for blocks in [
        None,
        Some(vec![4, 4]),
        Some(vec![4, 8]),
        Some(vec![8, 4]),
        Some(vec![8, 8]),
    ] {
        rows.push(ModelRow {
            id,
            layer_dims: vec![64, 64],
            blocks,
            peephole: false,
            projection: None,
        });
        id += 1;
    }
    for blocks in [
        None,
        Some(vec![4, 4]),
        Some(vec![4, 8]),
        Some(vec![8, 4]),
        Some(vec![8, 8]),
        Some(vec![8, 16]),
        Some(vec![16, 8]),
        Some(vec![16, 16]),
    ] {
        rows.push(ModelRow {
            id,
            layer_dims: vec![128, 128],
            blocks,
            peephole: false,
            projection: None,
        });
        id += 1;
    }
    rows
}

/// Runs a whole grid: baselines are trained once per layer-size group and
/// shared by that group's compressed rows; rows run on two worker threads.
pub fn run_grid(
    cell: CellType,
    rows: Vec<ModelRow>,
    corpus: &SynthCorpus,
    recipe: &RowRecipe,
    seed: u64,
) -> Vec<RowResult> {
    use std::collections::HashMap;
    // Baselines per (dims, peephole, projection) group.
    let mut baselines: HashMap<String, (RnnNetwork<Matrix>, f64)> = HashMap::new();
    for row in rows.iter().filter(|r| r.blocks.is_none()) {
        let key = format!("{:?}{:?}{:?}", row.layer_dims, row.peephole, row.projection);
        baselines
            .entry(key)
            .or_insert_with(|| train_baseline(cell, row, corpus, recipe, seed));
    }

    // Compressed rows in parallel (2 workers — the host has 2 cores).
    let jobs: Vec<(usize, ModelRow)> = rows
        .iter()
        .enumerate()
        .filter(|(_, r)| r.blocks.is_some())
        .map(|(i, r)| (i, r.clone()))
        .collect();
    let mut pers: Vec<Option<f64>> = vec![None; rows.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in jobs.chunks(jobs.len().div_ceil(2).max(1)) {
            let chunk = chunk.to_vec();
            let baselines = &baselines;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for (i, row) in chunk {
                    let key = format!("{:?}{:?}{:?}", row.layer_dims, row.peephole, row.projection);
                    let (baseline, _) = &baselines[&key];
                    let blocks = row.blocks.clone().expect("compressed row");
                    let per = evaluate_compressed_row(
                        baseline,
                        &blocks,
                        corpus,
                        recipe,
                        seed.wrapping_add(row.id as u64),
                    );
                    out.push((i, per));
                }
                out
            }));
        }
        for h in handles {
            for (i, per) in h.join().expect("worker thread") {
                pers[i] = Some(per);
            }
        }
    });

    rows.into_iter()
        .enumerate()
        .map(|(i, row)| {
            let key = format!("{:?}{:?}{:?}", row.layer_dims, row.peephole, row.projection);
            let base_per = baselines[&key].1;
            let per = pers[i].unwrap_or(base_per);
            RowResult {
                degradation: if row.blocks.is_none() {
                    0.0
                } else {
                    per - base_per
                },
                per,
                row,
            }
        })
        .collect()
}

/// Renders a Table I/II-style report.
pub fn render_model_table(title: &str, results: &[RowResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str("ID  Layer Size   Block Size  Peep  Proj  PER (%)  PER degradation (pp)\n");
    for r in results {
        out.push_str(&format!(
            "{:<3} {:<12} {:<11} {:<5} {:<5} {:<8.2} {}\n",
            r.row.id,
            dims_label(&r.row.layer_dims),
            blocks_label(&r.row.blocks),
            if r.row.peephole { "y" } else { "n" },
            r.row
                .projection
                .map(|p| p.to_string())
                .unwrap_or_else(|| "n".into()),
            r.per,
            if r.row.blocks.is_none() {
                "-".to_string()
            } else {
                format!("{:+.2}", r.degradation)
            },
        ));
    }
    out
}
