//! Regenerates **Table I**: comparison among LSTM-based RNN models — PER
//! and PER degradation versus layer size and (per-layer) block size.
//!
//! Layer sizes are scaled ÷8 from the paper (32/64/128 for 256/512/1024)
//! to keep the run tractable on a laptop; block sizes and the table
//! structure match the paper row for row. Run with `--quick` for a smoke
//! pass (fewer epochs, 64-64 group only).

use ernn_asr::{SynthCorpus, SynthCorpusConfig};
use ernn_bench::{render_model_table, run_grid, table1_grid, RowRecipe};
use ernn_model::CellType;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let recipe = if quick {
        RowRecipe::quick()
    } else {
        RowRecipe::full()
    };
    let corpus = SynthCorpus::generate(&SynthCorpusConfig::standard(42));
    let mut grid = table1_grid();
    if quick {
        grid.retain(|r| r.layer_dims == vec![64, 64]);
    }
    eprintln!(
        "table1: {} rows ({} corpus utterances){}",
        grid.len(),
        corpus.train.len(),
        if quick { " [quick]" } else { "" }
    );
    let results = run_grid(CellType::Lstm, grid, &corpus, &recipe, 7);
    println!(
        "{}",
        render_model_table(
            "Table I — LSTM-based RNN models (synthetic ASR corpus, layer sizes ÷8)",
            &results
        )
    );
    // The paper's qualitative checks.
    let small_block_ok = results
        .iter()
        .filter(|r| {
            r.row
                .blocks
                .as_ref()
                .is_some_and(|b| b.iter().all(|&x| x <= 4))
        })
        .all(|r| r.degradation < 3.0);
    println!(
        "check: block size <= 4 keeps degradation small ... {}",
        if small_block_ok {
            "PASS"
        } else {
            "MIXED (see EXPERIMENTS.md on PER noise)"
        }
    );
}
