//! Regenerates **Fig. 8**: normalized number of multiplications as a
//! function of block size, for layer sizes 512 and 1024, plus the
//! ablations of the three computation-reduction techniques (Sec. V-A).

use ernn_core::explore::Fig8Curve;
use ernn_fft::cost::{block_size_upper_bound, CostModel, DEFAULT_MIN_GAIN};

fn main() {
    for layer in [512usize, 1024] {
        println!(
            "=== Fig. 8 ({}) — paper model (all optimizations) ===",
            layer
        );
        print!("{}", Fig8Curve::paper(layer).render());
        let ub = block_size_upper_bound(CostModel::paper(), layer, DEFAULT_MIN_GAIN);
        println!("convergence (block-size upper bound): {ub}  [paper: 32-64]\n");
    }

    println!("=== ablations (layer 512, normalized multiplications) ===");
    let variants: [(&str, CostModel); 4] = [
        ("all optimizations", CostModel::paper()),
        (
            "no FFT/IFFT decoupling",
            CostModel {
                fft_decoupling: false,
                ..CostModel::paper()
            },
        ),
        (
            "no real-FFT symmetry",
            CostModel {
                real_symmetry: false,
                ..CostModel::paper()
            },
        ),
        ("no optimizations", CostModel::unoptimized()),
    ];
    print!("{:<6}", "Lb");
    for (name, _) in &variants {
        print!(" {name:>24}");
    }
    println!();
    let mut lb = 2usize;
    while lb <= 256 {
        print!("{lb:<6}");
        for (_, model) in &variants {
            print!(" {:>24.4}", model.normalized_matvec_mults(512, 512, lb));
        }
        println!();
        lb *= 2;
    }
    println!(
        "\nnote: without decoupling, small blocks EXCEED the dense baseline\n\
         (>1.0) — the \"computation can even increase\" effect of Sec. V-B."
    );
}
