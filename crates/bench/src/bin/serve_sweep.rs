//! Sweeps device count × batch policy for the serving runtime and prints
//! the virtual-time throughput/latency frontier — the serving analogue of
//! the paper's design-space exploration.
//!
//! Run with: `cargo run --release -p ernn-bench --bin serve_sweep`
//! (`--quick` halves the request count for smoke runs, `--json PATH`
//! writes the rows as a bench artifact for CI trend tracking,
//! `--trace-out PATH` writes one configuration's flight-recorder journal
//! as Perfetto-loadable Chrome trace JSON plus a Prometheus snapshot at
//! `PATH.prom`).

use ernn_bench::json::{array, json_path_arg, trace_path_arg, write_artifact, JsonObject};
use ernn_core::pipeline::Pipeline;
use ernn_model::{CellType, ModelSpec};
use ernn_serve::loadgen::{open_loop_poisson, synthetic_utterances};
use ernn_serve::{
    chrome_trace_json, prometheus_snapshot_full, BatchPolicy, HealthConfig, RuntimeConfig,
    ServeRuntime, TimelineConfig, TraceConfig,
};
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = json_path_arg(&args);
    let trace_path = trace_path_arg(&args);
    let num_requests = if quick { 200 } else { 400 };

    // A GRU-64 acoustic model under the paper preset (block 8, 12-bit
    // datapath, XCKU060) — configuration lives in the pipeline, not here.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let model = Pipeline::paper(ModelSpec::new(CellType::Gru, 52, 40).layer_dims(&[64]))
        .expect("valid spec")
        .init(&mut rng)
        .project()
        .expect("paper block policy")
        .quantize()
        .expect("paper datapath")
        .compile()
        .expect("paper platform")
        .into_model();
    println!(
        "model: GRU-64 block 8, II {} cycles, {} cached weight spectra\n",
        model.stage_cycles().ii(),
        model.load_stats.cached_spectra
    );

    // Offered load: ~2× one device's capacity, so batching and sharding
    // both matter.
    let utterances = synthetic_utterances(12, (20, 60), 52, 21);
    let requests = open_loop_poisson(&utterances, num_requests, 400_000.0, 22);

    println!(
        "{:<8} {:<14} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "devices", "policy", "throughput", "p50 µs", "p95 µs", "p99 µs", "mean batch", "occ %"
    );
    let mut rows: Vec<String> = Vec::new();
    for devices in [1usize, 2, 4] {
        for (policy, label) in [
            (BatchPolicy::immediate(), "unbatched"),
            (BatchPolicy::new(4, 100.0), "b4/w100"),
            (BatchPolicy::new(8, 200.0), "b8/w200"),
            (BatchPolicy::new(16, 400.0), "b16/w400"),
        ] {
            // Trace the middle-of-the-frontier config (4 devices,
            // b8/w200) when an export path was given.
            let traced = devices == 4 && label == "b8/w200" && trace_path.is_some();
            let runtime = if traced {
                // The exported snapshot carries the full observability
                // surface: trace counters plus the sampled timeline and
                // the health verdict.
                ServeRuntime::with_config(
                    model.clone(),
                    devices,
                    policy,
                    RuntimeConfig::new()
                        .tracing(TraceConfig::enabled(1 << 14))
                        .timeline(TimelineConfig::enabled(100.0, 1 << 13))
                        .health(HealthConfig::enabled()),
                )
            } else {
                ServeRuntime::new(model.clone(), devices, policy)
            };
            let report = runtime.run(requests.clone());
            if traced {
                let path = trace_path.as_deref().expect("checked above");
                write_artifact(path, chrome_trace_json(&report.trace));
                let prom = prometheus_snapshot_full(
                    &report.metrics,
                    &report.trace,
                    None,
                    Some(&report.timeline),
                    Some(&report.health),
                    None,
                );
                write_artifact(&format!("{path}.prom"), prom);
            }
            let m = &report.metrics;
            let mean_occ =
                m.device_occupancy.iter().sum::<f64>() / m.device_occupancy.len().max(1) as f64;
            println!(
                "{:<8} {:<14} {:>10.0}/s {:>10.1} {:>10.1} {:>10.1} {:>10.2} {:>7.0}%",
                devices,
                label,
                m.throughput_rps,
                m.latency.p50_us,
                m.latency.p95_us,
                m.latency.p99_us,
                m.mean_batch_size,
                mean_occ * 100.0
            );
            rows.push(
                JsonObject::new()
                    .int("devices", devices as i64)
                    .str("policy", label)
                    .num("throughput_rps", m.throughput_rps)
                    .latency("", &m.latency)
                    .num("mean_batch", m.mean_batch_size)
                    .num("mean_occupancy", mean_occ)
                    .num("host_us", report.host_us)
                    .render(),
            );
        }
    }
    println!(
        "\n({} open-loop Poisson requests at 400k req/s offered; virtual time)",
        num_requests
    );

    if let Some(path) = json_path {
        let doc = JsonObject::new()
            .bench_header("serve_sweep")
            .int("requests", num_requests as i64)
            .raw("rows", array(rows))
            .render();
        write_artifact(&path, doc);
    }
}
