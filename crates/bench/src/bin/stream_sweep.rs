//! Streaming vs utterance-level serving under tight SLOs.
//!
//! One acoustic model, one trace of "spoken" audio plus short tight-SLO
//! probe requests, served two ways:
//!
//! * **utterance** — each session's audio is submitted as one request
//!   the moment its last frame is spoken. A probe arriving mid-service
//!   waits out the whole 60-frame makespan, and the session's own answer
//!   cannot even start until the speech ends.
//! * **stream** — the same audio as chunked stateful sessions. Batches
//!   close at chunk boundaries, so EDF lets a tight-SLO probe preempt
//!   between chunks, and per-chunk deadlines are met while the speaker
//!   is still talking.
//!
//! The bin asserts the streaming configuration *strictly* reduces both
//! deadline-miss rates on the single-device trace — probe misses
//! (chunk-boundary preemption) and session-chunk misses vs the
//! utterance-level deadline — and that the streaming run is bit-identical
//! across host executors.
//!
//! Run with: `cargo run --release -p ernn-bench --bin stream_sweep`
//! (`--quick` shrinks the trace for smoke runs, `--json PATH` writes a
//! `BENCH_stream.json` artifact, `--trace-out PATH` writes the streaming
//! run's flight-recorder journal as Perfetto-loadable Chrome trace JSON
//! plus a Prometheus snapshot at `PATH.prom`).

use ernn_bench::json::{array, json_path_arg, trace_path_arg, write_artifact, JsonObject};
use ernn_core::pipeline::Pipeline;
use ernn_fpga::XCKU060;
use ernn_model::{CellType, ModelSpec};
use ernn_serve::loadgen::synthetic_utterances;
use ernn_serve::sched::{
    CostModel, DeviceResidency, ModelRegistry, SchedPolicy, SchedReport, SchedRuntime,
};
use ernn_serve::{
    chrome_trace_json, prometheus_snapshot_full, ExecutorKind, Request, Response, RuntimeConfig,
    TraceConfig, Workload,
};
use rand::{Rng, SeedableRng};

const DIM: usize = 52;
const UTT_FRAMES: usize = 60;
const CHUNK_FRAMES: usize = 6;

fn registry() -> ModelRegistry {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let model = Pipeline::paper(ModelSpec::new(CellType::Gru, DIM, 40).layer_dims(&[64]))
        .expect("valid spec")
        .init(&mut rng)
        .project()
        .expect("paper block policy")
        .quantize()
        .expect("paper datapath")
        .compile()
        .expect("paper platform")
        .into_model();
    let mut reg = ModelRegistry::new();
    reg.register("gru-64", model);
    reg
}

/// The shared trace: session audio (streamed or whole) plus probes.
struct Trace {
    /// Chunked stateful sessions with per-chunk deadlines.
    stream: Vec<Request>,
    /// The same audio as whole utterances arriving at end of speech,
    /// carrying the final chunk's deadline.
    utterance: Vec<Request>,
    /// Probe ids (shared by both variants).
    probe_ids: Vec<u64>,
}

#[allow(clippy::too_many_arguments)]
fn build_trace(
    sessions: usize,
    probes: usize,
    frame_us: f64,
    session_stagger_us: f64,
    chunk_slo_us: f64,
    probe_slo_us: f64,
    seed: u64,
) -> Trace {
    let audio = synthetic_utterances(sessions, (UTT_FRAMES, UTT_FRAMES), DIM, seed);
    let chunk_gap_us = CHUNK_FRAMES as f64 * frame_us;
    let mut stream = Vec::new();
    let mut utterance = Vec::new();
    let mut next_id = 0u64;
    for (s, utt) in audio.iter().enumerate() {
        let start = s as f64 * session_stagger_us;
        let chunks = UTT_FRAMES / CHUNK_FRAMES;
        for i in 0..chunks {
            let arrival = start + i as f64 * chunk_gap_us;
            stream.push(
                Request::chunk(
                    next_id,
                    s as u64,
                    i as u32,
                    i == chunks - 1,
                    utt[i * CHUNK_FRAMES..(i + 1) * CHUNK_FRAMES].to_vec(),
                    arrival,
                )
                .with_deadline(arrival + chunk_slo_us),
            );
            next_id += 1;
        }
        // The whole utterance exists only once the last chunk is spoken,
        // and must answer by the same absolute deadline.
        let end_of_speech = start + (chunks - 1) as f64 * chunk_gap_us;
        utterance.push(
            Request::new(s as u64, utt.clone(), end_of_speech)
                .with_deadline(end_of_speech + chunk_slo_us),
        );
    }
    // Tight-SLO probes, Poisson-spread over the middle of the trace so
    // they land while sessions are in flight.
    let span = sessions as f64 * session_stagger_us;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
    let probe_audio = synthetic_utterances(probes, (3, 3), DIM, seed ^ 0xF00D);
    let mut probe_ids = Vec::new();
    for (p, utt) in probe_audio.iter().enumerate() {
        let arrival = rng.gen_range(0.1..0.9) * span;
        let id = 10_000 + p as u64;
        let r = Request::new(id, utt.clone(), arrival).with_deadline(arrival + probe_slo_us);
        stream.push(r.clone());
        utterance.push(r);
        probe_ids.push(id);
    }
    Trace {
        stream,
        utterance,
        probe_ids,
    }
}

/// Deadline-miss rate over the subset of responses `pick` selects.
fn miss_rate(responses: &[Response], pick: impl Fn(&Response) -> bool) -> f64 {
    let tracked: Vec<&Response> = responses
        .iter()
        .filter(|r| pick(r) && r.deadline_tracked)
        .collect();
    let missed = tracked.iter().filter(|r| !r.deadline_met).count();
    missed as f64 / tracked.len().max(1) as f64
}

fn run(requests: Vec<Request>, exec: ExecutorKind) -> SchedReport {
    SchedRuntime::with_config(
        registry(),
        vec![XCKU060],
        SchedPolicy::edf_cost_model(1, 0.0),
        RuntimeConfig::new()
            .executor(exec)
            .tracing(TraceConfig::enabled(1 << 15)),
    )
    .run(requests)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = json_path_arg(&args);
    let trace_path = trace_path_arg(&args);
    let (sessions, probes) = if quick { (4, 20) } else { (8, 40) };

    // Timebase from the cost model: speech is delivered 20% slower than
    // the device can serve it, so streaming keeps up with headroom. The
    // SLOs budget one cold weight load plus a few chunk services — met
    // comfortably at chunk granularity, hopeless behind a 60-frame
    // makespan.
    let reg = registry();
    let cost = CostModel::build(&[XCKU060], &reg);
    let est_chunk = cost.estimate_frames_us(0, 0, CHUNK_FRAMES as u64);
    let est_probe = cost.estimate_frames_us(0, 0, 3);
    let est_utt = cost.estimate_frames_us(0, 0, UTT_FRAMES as u64);
    let load_us = DeviceResidency::load_us(reg.weight_bytes(0));
    let frame_us = 1.2 * est_utt / UTT_FRAMES as f64;
    let session_stagger_us = (UTT_FRAMES + 20) as f64 * frame_us;
    let chunk_slo_us = 4.0 * est_chunk + load_us;
    let probe_slo_us = est_probe + 3.0 * est_chunk;
    println!(
        "model: GRU-64 block 8 on XCKU060 — chunk {est_chunk:.1} µs, \
         utterance {est_utt:.1} µs, weight load {load_us:.1} µs"
    );
    println!(
        "trace: {sessions} sessions × {UTT_FRAMES} frames (chunks of {CHUNK_FRAMES}), \
         {probes} probes; chunk SLO {chunk_slo_us:.1} µs, probe SLO {probe_slo_us:.1} µs\n"
    );

    let trace = build_trace(
        sessions,
        probes,
        frame_us,
        session_stagger_us,
        chunk_slo_us,
        probe_slo_us,
        17,
    );
    let is_probe = |ids: &[u64]| {
        let ids = ids.to_vec();
        move |r: &Response| ids.contains(&r.id) && matches!(r.workload, Workload::Utterance)
    };

    let stream = run(trace.stream.clone(), ExecutorKind::Inline);
    let stream_mt = run(trace.stream.clone(), ExecutorKind::ThreadPool);
    assert_eq!(
        (&stream.responses, &stream.metrics, &stream.sched),
        (&stream_mt.responses, &stream_mt.metrics, &stream_mt.sched),
        "streaming run must be bit-identical across executors"
    );
    assert_eq!(
        stream.trace, stream_mt.trace,
        "streaming trace must be bit-identical across executors"
    );
    if let Some(path) = &trace_path {
        // The streaming run's journal shows the chunk-boundary
        // preemption this sweep is about: probe dispatches interleave
        // between session chunks in the Perfetto timeline.
        write_artifact(path, chrome_trace_json(&stream.trace));
        let prom = prometheus_snapshot_full(
            &stream.metrics,
            &stream.trace,
            Some(&stream.sched),
            None,
            None,
            None,
        );
        write_artifact(&format!("{path}.prom"), prom);
    }
    let baseline = run(trace.utterance.clone(), ExecutorKind::Inline);

    let probe_pick = is_probe(&trace.probe_ids);
    let rows = [
        (
            "utterance",
            &baseline,
            miss_rate(&baseline.responses, |r| !probe_pick(r)),
            miss_rate(&baseline.responses, &probe_pick),
        ),
        (
            "stream",
            &stream,
            miss_rate(&stream.responses, |r| !probe_pick(r)),
            miss_rate(&stream.responses, &probe_pick),
        ),
    ];
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "mode", "audio miss", "probe miss", "p50 µs", "p99 µs", "state loads"
    );
    let mut json_rows: Vec<String> = Vec::new();
    for (label, report, audio_miss, probe_miss) in &rows {
        let m = &report.metrics;
        println!(
            "{:<12} {:>11.1}% {:>11.1}% {:>10.1} {:>10.1} {:>12}",
            label,
            audio_miss * 100.0,
            probe_miss * 100.0,
            m.latency.p50_us,
            m.latency.p99_us,
            report.sched.state_loads,
        );
        json_rows.push(
            JsonObject::new()
                .str("mode", label)
                .num("audio_miss_rate", *audio_miss)
                .num("probe_miss_rate", *probe_miss)
                .latency("", &m.latency)
                .int("sessions", m.sessions as i64)
                .int("chunks", m.chunks as i64)
                .int("state_loads", report.sched.state_loads as i64)
                .num("host_us", report.host_us)
                .render(),
        );
    }

    let (_, _, base_audio, base_probe) = rows[0];
    let (_, _, stream_audio, stream_probe) = rows[1];
    assert!(
        stream_probe < base_probe,
        "chunk-boundary preemption must strictly cut probe misses: \
         stream {stream_probe:.3} vs utterance {base_probe:.3}"
    );
    assert!(
        stream_audio < base_audio,
        "per-chunk deadlines must strictly beat the utterance-level \
         deadline: stream {stream_audio:.3} vs utterance {base_audio:.3}"
    );
    println!(
        "\nstreaming cut probe misses {:.1}% -> {:.1}% and audio misses \
         {:.1}% -> {:.1}% (assertions passed; executors bit-identical)",
        base_probe * 100.0,
        stream_probe * 100.0,
        base_audio * 100.0,
        stream_audio * 100.0
    );

    if let Some(path) = json_path {
        let doc = JsonObject::new()
            .bench_header("stream_sweep")
            .int("sessions", sessions as i64)
            .int("probes", probes as i64)
            .int("chunk_frames", CHUNK_FRAMES as i64)
            .num("chunk_slo_us", chunk_slo_us)
            .num("probe_slo_us", probe_slo_us)
            .raw("rows", array(json_rows))
            .render();
        write_artifact(&path, doc);
    }
}
