//! Regression gate over two `BENCH_*.json` artifacts.
//!
//! ```text
//! bench_diff BASELINE.json CURRENT.json [--threshold 0.25] [--all]
//! ```
//!
//! The sweeps run on a virtual clock, so artifacts from the same code
//! are bit-identical outside wall-clock `host_us` fields: every delta
//! this tool prints is a real behavior change. A worse-direction move
//! beyond the relative threshold (default 25%) on any gated metric
//! exits nonzero, which is what CI keys off. Artifacts with differing
//! `schema_version`s are declared incomparable and pass vacuously —
//! a schema bump is a deliberate act that comes with fresh baselines.
//!
//! `--all` prints every changed metric instead of the regressions plus
//! the ten largest moves.

use ernn_bench::diff::{compare, parse, Direction, MetricDelta};
use std::process::ExitCode;

const DEFAULT_THRESHOLD: f64 = 0.25;

fn usage() -> ! {
    eprintln!("usage: bench_diff BASELINE.json CURRENT.json [--threshold FRAC] [--all]");
    std::process::exit(2);
}

fn read_doc(path: &str) -> ernn_bench::diff::JsonValue {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("failed to read {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("failed to parse {path}: {e}"))
}

fn print_delta(d: &MetricDelta) {
    let marker = if d.regressed { "REGRESSED" } else { "changed" };
    let dir = match d.direction {
        Direction::HigherWorse => "higher-worse",
        Direction::LowerWorse => "lower-worse",
        Direction::Neutral => "neutral",
    };
    println!(
        "  {marker:9} {path}: {old} -> {new} ({rel:+.1}%, {dir})",
        path = d.path,
        old = d.old,
        new = d.new,
        rel = d.rel * 100.0,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut show_all = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--all" => show_all = true,
            "--help" | "-h" => usage(),
            _ => paths.push(arg.clone()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        usage();
    };

    let baseline = read_doc(baseline_path);
    let current = read_doc(current_path);
    let report = compare(&baseline, &current, threshold);

    if let Some(reason) = &report.incomparable {
        println!("bench_diff: incomparable artifacts ({reason}); not gating");
        return ExitCode::SUCCESS;
    }

    println!(
        "bench_diff: {} vs {} — {} shared metrics, {} changed, threshold {:.0}%",
        baseline_path,
        current_path,
        report.compared,
        report.changed.len(),
        threshold * 100.0
    );
    if !report.removed.is_empty() {
        println!(
            "  note: {} metric(s) only in baseline",
            report.removed.len()
        );
    }
    if !report.added.is_empty() {
        println!("  note: {} metric(s) only in current", report.added.len());
    }

    let shown = if show_all {
        report.changed.len()
    } else {
        // Regressions always print; cap the informational tail.
        let regressions = report.changed.iter().filter(|d| d.regressed).count();
        regressions.max(10).min(report.changed.len())
    };
    for d in &report.changed[..shown] {
        print_delta(d);
    }
    if shown < report.changed.len() {
        println!("  ... {} more (use --all)", report.changed.len() - shown);
    }

    if report.regressed() {
        let n = report.changed.iter().filter(|d| d.regressed).count();
        println!("bench_diff: FAIL — {n} metric(s) regressed past the threshold");
        ExitCode::FAILURE
    } else {
        println!("bench_diff: OK");
        ExitCode::SUCCESS
    }
}
