//! Verifies the paper's Sec. VI claim: the Phase-I design search needs
//! only ~5 training trials thanks to the two exploration bounds.
//!
//! Runs the full flow (Phase I with real ADMM training on the synthetic
//! corpus, then Phase II) and prints the trial log.

use ernn_core::flow::{run_flow_to_artifact, FlowConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        FlowConfig::quick(11)
    } else {
        FlowConfig::standard(11)
    };
    eprintln!(
        "running the E-RNN flow{} ...",
        if quick { " [quick]" } else { "" }
    );
    let (report, built) = run_flow_to_artifact(config).expect("flow pipelines");
    println!("{}", report.render());
    println!("Phase-I trial log:");
    for (i, t) in report.phase1.trials.iter().enumerate() {
        println!(
            "  {}: {:?} block {} io {} -> PER {:.2}% [{}]",
            i + 1,
            t.spec.cell,
            t.spec.block,
            t.spec.io_block,
            t.per,
            if t.accepted { "accepted" } else { "rejected" }
        );
    }
    println!(
        "\ntotal trials: {} (paper: \"limited to around 5\")",
        report.phase1.trial_count()
    );
    println!(
        "block-size bounds used: [{}, {}] ({} candidates)",
        report.phase1.bounds.lower, report.phase1.bounds.upper, report.phase1.bounds.candidates
    );
    println!(
        "deployable artifact: {} bytes (trial log travels as provenance)",
        built.save_bytes().len()
    );
}
