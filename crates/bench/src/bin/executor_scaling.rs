//! Sweeps host-executor kind × device count for the serving runtime:
//! virtual-time throughput (which must be identical across executors —
//! asserted here) against wall-clock host time, where the `ThreadPool`
//! executor's overlap shows up as real speedup on multi-core hosts.
//!
//! Run with: `cargo run --release -p ernn-bench --bin executor_scaling`
//! (`--quick` shrinks the load for smoke runs, `--json PATH` writes the
//! rows as a bench artifact for CI trend tracking).

use ernn_bench::json::{array, json_path_arg, write_artifact, JsonObject};
use ernn_core::pipeline::Pipeline;
use ernn_model::{CellType, ModelSpec};
use ernn_serve::loadgen::{open_loop_poisson, synthetic_utterances};
use ernn_serve::{BatchPolicy, ExecutorKind, ServeRuntime};
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = json_path_arg(&args);
    let num_requests = if quick { 64 } else { 256 };

    // The serve_sweep acoustic model (GRU-64 under the paper preset).
    // One Arc'd compile: every runtime in the sweep shares the cached
    // weight spectra instead of deep-cloning them per run.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let model = std::sync::Arc::new(
        Pipeline::paper(ModelSpec::new(CellType::Gru, 52, 40).layer_dims(&[64]))
            .expect("valid spec")
            .init(&mut rng)
            .project()
            .expect("paper block policy")
            .quantize()
            .expect("paper datapath")
            .compile()
            .expect("paper platform")
            .into_model(),
    );

    // CPU-bound load: long utterances so host inference dominates the
    // event-loop bookkeeping, offered well above one device's capacity.
    let utterances = synthetic_utterances(12, (30, 60), 52, 21);
    let requests = open_loop_poisson(&utterances, num_requests, 400_000.0, 22);
    let policy = BatchPolicy::new(8, 200.0);

    println!(
        "host parallelism: {} cores, {} requests, batch ≤ {}\n",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        num_requests,
        policy.max_batch
    );
    println!(
        "{:<8} {:<11} {:>12} {:>10} {:>10} {:>9}",
        "devices", "executor", "throughput", "p99 µs", "host ms", "speedup"
    );

    let mut rows: Vec<String> = Vec::new();
    for devices in [1usize, 2, 4] {
        let mut inline_host_us = 0.0f64;
        let mut inline_metrics = None;
        for kind in [ExecutorKind::Inline, ExecutorKind::ThreadPool] {
            let runtime =
                ServeRuntime::with_executor(std::sync::Arc::clone(&model), devices, policy, kind);
            let report = runtime.run(requests.clone());
            let m = &report.metrics;
            let label = match kind {
                ExecutorKind::Inline => {
                    inline_host_us = report.host_us;
                    inline_metrics = Some(report.metrics.clone());
                    "inline"
                }
                ExecutorKind::ThreadPool => "threadpool",
            };
            let speedup = if kind == ExecutorKind::ThreadPool && report.host_us > 0.0 {
                inline_host_us / report.host_us
            } else {
                1.0
            };
            println!(
                "{:<8} {:<11} {:>10.0}/s {:>10.1} {:>10.1} {:>8.2}x",
                devices,
                label,
                m.throughput_rps,
                m.latency.p99_us,
                report.host_us / 1e3,
                speedup
            );
            rows.push(
                JsonObject::new()
                    .int("devices", devices as i64)
                    .str("executor", label)
                    .int("workers", report.worker_fft.len() as i64)
                    .num("throughput_rps", m.throughput_rps)
                    .latency("", &m.latency)
                    .num("makespan_us", m.makespan_us)
                    .num("host_us", report.host_us)
                    .num("host_speedup", speedup)
                    .render(),
            );

            // The sweep is also a correctness harness: virtual-time
            // metrics must not depend on the host executor (compared
            // against the inline run from this loop's first iteration).
            if kind == ExecutorKind::ThreadPool {
                assert_eq!(
                    inline_metrics.as_ref().expect("inline ran first"),
                    &report.metrics,
                    "executor changed virtual-time metrics at {devices} devices"
                );
            }
        }
    }
    println!("\n(virtual metrics asserted identical across executors per device count)");

    if let Some(path) = json_path {
        let doc = JsonObject::new()
            .bench_header("executor_scaling")
            .int("requests", num_requests as i64)
            .int(
                "host_cores",
                std::thread::available_parallelism().map_or(1, |p| p.get()) as i64,
            )
            .raw("rows", array(rows))
            .render();
        write_artifact(&path, doc);
    }
}
