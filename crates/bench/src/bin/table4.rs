//! Regenerates **Table IV**: comparison of the two FPGA platforms.

use ernn_fpga::{ADM_PCIE_7V3, XCKU060};

fn main() {
    println!("Table IV — comparison of two selected FPGA platforms");
    println!(
        "{:<16} {:>6} {:>6} {:>9} {:>9} {:>8} {:>9}",
        "FPGA Platform", "DSP", "BRAM", "LUT", "FF", "Process", "BRAM(MB)"
    );
    for dev in [ADM_PCIE_7V3, XCKU060] {
        println!(
            "{:<16} {:>6} {:>6} {:>9} {:>9} {:>7}nm {:>9.2}",
            dev.name,
            dev.dsp,
            dev.bram_blocks,
            dev.lut,
            dev.ff,
            dev.process_nm,
            dev.bram_bytes() as f64 / (1024.0 * 1024.0),
        );
    }
}
