//! Chaos sweep: the fault-injection acceptance harness.
//!
//! A mixed workload — streaming stateful sessions (model 0) plus
//! utterance traffic (model 1) with deadlines — runs over a three-device
//! pool while a deterministic fault plan fires every fault kind: the
//! device the probe session pinned crashes *permanently* mid-session, a
//! second device browns out (cycle throughput halves for a window), and
//! a third takes a transient. The same trace then runs with failover
//! disabled.
//!
//! This bin is a correctness harness — it **asserts** that
//!
//! * **zero requests are lost**: in every run (with and without
//!   failover, on both executors) the served and shed responses
//!   partition the submitted request ids exactly;
//! * **migration preserves the streaming contract**: with failover on,
//!   sessions stranded by the crash re-pin onto survivors
//!   (`state_migrations ≥ 1`) and every session's stitched per-chunk
//!   logits are bit-identical to whole-utterance inference;
//! * **failover pays**: the deadline-miss rate with failover is
//!   *strictly* lower than without (stranded chunks shed as
//!   `CapacityLoss`/`SessionCancelled`, scored as misses);
//! * **faulted runs stay deterministic**: responses, metrics, scheduler
//!   stats, and the flight-recorder journal are bit-identical across
//!   `Inline` and `ThreadPool` executors.
//!
//! Run with: `cargo run --release -p ernn-bench --bin chaos_sweep`
//! (`--quick` shrinks the trace for smoke runs, `--json PATH` writes a
//! `BENCH_chaos.json` artifact, `--trace-out PATH` writes the failover
//! run's flight-recorder journal — crash, retries, failovers, and
//! migrations included — as Perfetto-loadable Chrome trace JSON plus a
//! Prometheus snapshot at `PATH.prom`).

use ernn_bench::json::{array, json_path_arg, trace_path_arg, write_artifact, JsonObject};
use ernn_core::pipeline::Pipeline;
use ernn_fpga::{DeviceFault, FaultEvent, FaultPlan, XCKU060};
use ernn_model::{CellType, ModelSpec};
use ernn_serve::loadgen::synthetic_utterances;
use ernn_serve::sched::{
    AdmissionPolicy, CostModel, DeviceResidency, ModelRegistry, SchedPolicy, SchedReport,
    SchedRuntime,
};
use ernn_serve::{
    chrome_trace_json, prometheus_snapshot_full, CompiledModel, ExecutorKind, Request, Response,
    RuntimeConfig, ShedReason, TraceConfig, TraceEvent,
};
use rand::{Rng, SeedableRng};

const DIM: usize = 52;
const UTT_FRAMES: usize = 36;
const CHUNK_FRAMES: usize = 6;
const DEVICES: usize = 3;

/// Compiles a tenant model under the paper preset via the lifecycle
/// pipeline.
fn compile(seed: u64, hidden: usize) -> CompiledModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    Pipeline::paper(ModelSpec::new(CellType::Gru, DIM, 40).layer_dims(&[hidden]))
        .expect("valid spec")
        .init(&mut rng)
        .project()
        .expect("paper block policy")
        .quantize()
        .expect("paper datapath")
        .compile()
        .expect("paper platform")
        .into_model()
}

fn registry() -> ModelRegistry {
    let mut reg = ModelRegistry::new();
    reg.register("gru-64-stream", compile(5, 64));
    reg.register("gru-96-batch", compile(6, 96));
    reg
}

/// The shared trace: chunked sessions plus utterance traffic, and the
/// session audio kept for the stitched-logits check.
struct Trace {
    requests: Vec<Request>,
    session_audio: Vec<Vec<Vec<f32>>>,
    chunks_per_session: usize,
}

fn build_trace(
    sessions: usize,
    utterances: usize,
    gap_us: f64,
    chunk_slo_us: f64,
    utt_slo_us: f64,
    seed: u64,
) -> Trace {
    let session_audio = synthetic_utterances(sessions, (UTT_FRAMES, UTT_FRAMES), DIM, seed);
    let chunks = UTT_FRAMES / CHUNK_FRAMES;
    let mut requests = Vec::new();
    for (s, utt) in session_audio.iter().enumerate() {
        let start = s as f64 * 2.0 * gap_us;
        for i in 0..chunks {
            let arrival = start + i as f64 * gap_us;
            requests.push(
                Request::chunk(
                    (s * chunks + i) as u64,
                    s as u64,
                    i as u32,
                    i == chunks - 1,
                    utt[i * CHUNK_FRAMES..(i + 1) * CHUNK_FRAMES].to_vec(),
                    arrival,
                )
                .with_deadline(arrival + chunk_slo_us),
            );
        }
    }
    // Utterance traffic for model 1, spread over the session span so it
    // competes for (and fails over across) the same pool.
    let span = (sessions as f64 * 2.0 + chunks as f64) * gap_us;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xBAD);
    let audio = synthetic_utterances(utterances, (8, 20), DIM, seed ^ 0xCAFE);
    for (u, utt) in audio.iter().enumerate() {
        let arrival = rng.gen_range(0.05..0.95) * span;
        requests.push(
            Request::new(10_000 + u as u64, utt.clone(), arrival)
                .with_model(1)
                .with_deadline(arrival + utt_slo_us),
        );
    }
    Trace {
        requests,
        session_audio,
        chunks_per_session: chunks,
    }
}

/// Deadline-miss rate over deadline-tracked responses; shed responses
/// score as misses.
fn miss_rate(responses: &[Response]) -> f64 {
    let tracked: Vec<&Response> = responses.iter().filter(|r| r.deadline_tracked).collect();
    let missed = tracked.iter().filter(|r| !r.deadline_met).count();
    missed as f64 / tracked.len().max(1) as f64
}

/// Asserts the served and shed responses partition the submitted ids
/// exactly — the "zero requests lost" guarantee.
fn assert_partition(label: &str, requests: &[Request], report: &SchedReport) {
    let mut submitted: Vec<u64> = requests.iter().map(|r| r.id).collect();
    submitted.sort_unstable();
    let mut answered: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
    answered.sort_unstable();
    assert_eq!(
        submitted, answered,
        "{label}: responses must partition the submitted ids exactly"
    );
    let shed = report.responses.iter().filter(|r| r.shed).count();
    assert_eq!(
        shed, report.sched.shed,
        "{label}: the shed counter must agree with the response partition"
    );
}

fn run(requests: &[Request], plan: &FaultPlan, failover: bool, exec: ExecutorKind) -> SchedReport {
    SchedRuntime::with_config(
        registry(),
        vec![XCKU060; DEVICES],
        SchedPolicy::edf_cost_model(4, 50.0).with_admission(AdmissionPolicy::ShedPredictedLate),
        RuntimeConfig::new()
            .executor(exec)
            .fault_plan(plan.clone())
            .failover(failover),
    )
    .with_tracing(TraceConfig::enabled(1 << 15))
    .run(requests.to_vec())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = json_path_arg(&args);
    let trace_path = trace_path_arg(&args);
    let (sessions, utterances) = if quick { (3, 12) } else { (6, 30) };

    // Timebase and SLOs from the cost model: chunks arrive at real-time
    // pace with 20% device headroom, and deadlines budget weight + state
    // reloads plus a retry backoff so a *recovered* request can still
    // meet them — misses then measure genuine capacity loss.
    let reg = registry();
    let cost = CostModel::build(&[XCKU060; DEVICES], &reg);
    let est_chunk = cost.estimate_frames_us(0, 0, CHUNK_FRAMES as u64);
    let est_utt = cost.estimate_frames_us(0, 1, 20);
    let load_us = DeviceResidency::load_us(reg.weight_bytes(0).max(reg.weight_bytes(1)));
    // Floor the chunk pace well above the 50 µs batching wait so
    // sessions are pinned and mid-flight long before the crash fires.
    let gap_us = (1.2 * DEVICES as f64 * est_chunk).max(300.0);
    let chunk_slo_us = 2.0 * load_us + 20.0 * est_chunk + 2_000.0;
    let utt_slo_us = 2.0 * load_us + 3.0 * est_utt + 2_000.0;
    println!(
        "pool: {DEVICES}× XCKU060 — chunk {est_chunk:.1} µs, utterance {est_utt:.1} µs, \
         weight load {load_us:.1} µs"
    );
    println!(
        "trace: {sessions} sessions × {UTT_FRAMES} frames (chunks of {CHUNK_FRAMES}) + \
         {utterances} utterances; chunk SLO {chunk_slo_us:.1} µs, utterance SLO {utt_slo_us:.1} µs\n"
    );

    let trace = build_trace(sessions, utterances, gap_us, chunk_slo_us, utt_slo_us, 29);

    // Discovery run (no faults): find the device session 0 pins, so the
    // crash is guaranteed to strand live sessions.
    let discovery = run(
        &trace.requests,
        &FaultPlan::empty(),
        true,
        ExecutorKind::Inline,
    );
    let pinned = discovery
        .responses
        .iter()
        .find(|r| r.id == 0)
        .and_then(|r| r.device)
        .expect("session 0's first chunk must be served fault-free");
    // The crash lands just inside the dispatch window of session 0's
    // third chunk (arrival `2·gap`, flushed by the 50 µs wait): the
    // in-flight batch aborts as a crash hit, and its retry re-places on
    // a survivor — exercising the full failover path, not just the
    // between-batches migration.
    let crash_us = 2.0 * gap_us + 50.3;
    let plan = FaultPlan::new(vec![
        FaultEvent {
            t_us: crash_us,
            device: pinned,
            fault: DeviceFault::Crash {
                down_us: f64::INFINITY,
            },
        },
        FaultEvent {
            t_us: crash_us + gap_us,
            device: (pinned + 1) % DEVICES,
            fault: DeviceFault::Brownout {
                cycle_multiplier: 2.0,
                duration_us: 2.0 * gap_us,
            },
        },
        // Lands just inside the dispatch window of session 0's second
        // chunk (arrival `gap_us`, flushed by the 50 µs batching wait):
        // a pre-crash abort-and-retry on the pinned device.
        FaultEvent {
            t_us: gap_us + 50.2,
            device: pinned,
            fault: DeviceFault::Transient,
        },
    ]);
    println!(
        "fault plan: transient on device {pinned} at {:.1} µs, permanent crash on device \
         {pinned} at {crash_us:.0} µs, brownout ×2.0 on device {}\n",
        gap_us + 50.2,
        (pinned + 1) % DEVICES,
    );

    let failover = run(&trace.requests, &plan, true, ExecutorKind::Inline);
    let failover_mt = run(&trace.requests, &plan, true, ExecutorKind::ThreadPool);
    let stranded = run(&trace.requests, &plan, false, ExecutorKind::Inline);
    let stranded_mt = run(&trace.requests, &plan, false, ExecutorKind::ThreadPool);

    // Determinism: the full fault-reaction surface is executor-blind,
    // journal included.
    assert_eq!(
        (
            &failover.responses,
            &failover.metrics,
            &failover.sched,
            &failover.trace
        ),
        (
            &failover_mt.responses,
            &failover_mt.metrics,
            &failover_mt.sched,
            &failover_mt.trace
        ),
        "failover run must be bit-identical across executors"
    );
    assert_eq!(
        (
            &stranded.responses,
            &stranded.metrics,
            &stranded.sched,
            &stranded.trace
        ),
        (
            &stranded_mt.responses,
            &stranded_mt.metrics,
            &stranded_mt.sched,
            &stranded_mt.trace
        ),
        "no-failover run must be bit-identical across executors"
    );

    if let Some(path) = &trace_path {
        // The failover run's journal is the interesting one: the crash,
        // the aborted batches, their retries, the failover re-placement,
        // and the session-state migrations are all visible as events.
        write_artifact(path, chrome_trace_json(&failover.trace));
        let prom = prometheus_snapshot_full(
            &failover.metrics,
            &failover.trace,
            Some(&failover.sched),
            None,
            None,
            None,
        );
        write_artifact(&format!("{path}.prom"), prom);
    }

    // Zero requests lost, in every configuration.
    for (label, report) in [
        ("discovery", &discovery),
        ("failover", &failover),
        ("no-failover", &stranded),
    ] {
        assert_partition(label, &trace.requests, report);
    }

    // Migration preserved the streaming contract: sessions re-pinned
    // (≥1 migration journaled) and stitched logits match whole-utterance
    // inference bit-exactly for every fully-served session.
    assert!(
        failover.sched.state_migrations >= 1,
        "the crash must strand at least one live session into migration"
    );
    assert!(
        failover.sched.batches_aborted >= 2 && failover.sched.retries_scheduled >= 2,
        "the transient and the crash must each abort a dispatching batch \
         into a retry (aborted {}, retries {})",
        failover.sched.batches_aborted,
        failover.sched.retries_scheduled
    );
    assert!(
        failover.sched.failovers >= 1,
        "the crash-aborted batch's retry must re-place on a survivor"
    );
    assert!(
        failover
            .trace
            .journal
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::StateMigration { .. })),
        "migrations must be journaled"
    );
    let model0 = registry().models()[0].clone();
    let mut checked = 0usize;
    for (s, utt) in trace.session_audio.iter().enumerate() {
        let mut chunks: Vec<&Response> = failover
            .responses
            .iter()
            .filter(|r| r.workload.session() == Some(s as u64))
            .collect();
        chunks.sort_by_key(|r| r.id);
        if chunks.iter().any(|r| r.shed) {
            continue;
        }
        assert_eq!(chunks.len(), trace.chunks_per_session);
        let stitched: Vec<Vec<f32>> = chunks
            .iter()
            .flat_map(|r| r.logits.iter().cloned())
            .collect();
        assert_eq!(
            stitched,
            model0.infer(utt),
            "session {s}: stitched logits must match whole-utterance inference"
        );
        checked += 1;
    }
    assert!(checked > 0, "at least one session must be fully served");

    // Stranded sheds are classified: capacity loss or the session-wide
    // cancellation it triggers.
    for r in stranded.responses.iter().filter(|r| r.shed) {
        assert!(
            matches!(
                r.shed_reason,
                Some(ShedReason::CapacityLoss) | Some(ShedReason::SessionCancelled)
            ),
            "request {}: unexpected shed reason {:?}",
            r.id,
            r.shed_reason
        );
    }

    let rows = [("no-failover", &stranded), ("failover", &failover)];
    println!(
        "{:<12} {:>10} {:>7} {:>6} {:>7} {:>8} {:>9} {:>11} {:>10}",
        "mode",
        "miss rate",
        "served",
        "shed",
        "aborts",
        "retries",
        "failovers",
        "migrations",
        "p99 µs"
    );
    let mut json_rows: Vec<String> = Vec::new();
    for (label, report) in &rows {
        let miss = miss_rate(&report.responses);
        let served = report.responses.iter().filter(|r| !r.shed).count();
        println!(
            "{:<12} {:>9.1}% {:>7} {:>6} {:>7} {:>8} {:>9} {:>11} {:>10.1}",
            label,
            miss * 100.0,
            served,
            report.sched.shed,
            report.sched.batches_aborted,
            report.sched.retries_scheduled,
            report.sched.failovers,
            report.sched.state_migrations,
            report.metrics.latency.p99_us,
        );
        json_rows.push(
            JsonObject::new()
                .str("mode", label)
                .num("miss_rate", miss)
                .int("served", served as i64)
                .int("shed", report.sched.shed as i64)
                .int("device_crashes", report.sched.device_crashes as i64)
                .int("device_brownouts", report.sched.device_brownouts as i64)
                .int("device_transients", report.sched.device_transients as i64)
                .int("batches_aborted", report.sched.batches_aborted as i64)
                .int("retries_scheduled", report.sched.retries_scheduled as i64)
                .int("retries_exhausted", report.sched.retries_exhausted as i64)
                .int("failovers", report.sched.failovers as i64)
                .int("state_migrations", report.sched.state_migrations as i64)
                .latency("", &report.metrics.latency)
                .num("host_us", report.host_us)
                .render(),
        );
    }

    // Failover pays, strictly.
    let miss_on = miss_rate(&failover.responses);
    let miss_off = miss_rate(&stranded.responses);
    assert!(
        miss_on < miss_off,
        "failover must strictly beat no-failover on deadline-miss rate: \
         {miss_on:.3} vs {miss_off:.3}"
    );
    println!(
        "\nfailover cut the deadline-miss rate {:.1}% -> {:.1}% with {} migrations and {} \
         failovers (assertions passed; executors bit-identical)",
        miss_off * 100.0,
        miss_on * 100.0,
        failover.sched.state_migrations,
        failover.sched.failovers,
    );

    if let Some(path) = json_path {
        let doc = JsonObject::new()
            .bench_header("chaos_sweep")
            .int("sessions", sessions as i64)
            .int("utterances", utterances as i64)
            .int("devices", DEVICES as i64)
            .int("chunk_frames", CHUNK_FRAMES as i64)
            .num("crash_us", crash_us)
            .num("chunk_slo_us", chunk_slo_us)
            .num("utt_slo_us", utt_slo_us)
            .raw("rows", array(json_rows))
            .render();
        write_artifact(&path, doc);
    }
}
