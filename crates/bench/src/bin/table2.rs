//! Regenerates **Table II**: comparison among GRU-based RNN models.
//!
//! Same structure as `table1` with GRU cells (paper Sec. IV, Table II).

use ernn_asr::{SynthCorpus, SynthCorpusConfig};
use ernn_bench::{render_model_table, run_grid, table2_grid, RowRecipe};
use ernn_model::CellType;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let recipe = if quick {
        RowRecipe::quick()
    } else {
        RowRecipe::full()
    };
    let corpus = SynthCorpus::generate(&SynthCorpusConfig::standard(42));
    let mut grid = table2_grid();
    if quick {
        grid.retain(|r| r.layer_dims == vec![64, 64]);
    }
    eprintln!(
        "table2: {} rows ({} corpus utterances){}",
        grid.len(),
        corpus.train.len(),
        if quick { " [quick]" } else { "" }
    );
    let results = run_grid(CellType::Gru, grid, &corpus, &recipe, 7);
    println!(
        "{}",
        render_model_table(
            "Table II — GRU-based RNN models (synthetic ASR corpus, layer sizes ÷8)",
            &results
        )
    );
    // Paper observation: switching LSTM -> GRU costs ~nothing; compare the
    // baselines against Table I's published 20.83/20.53/20.01 pattern by
    // eye — here we just verify GRU baselines are in a sane range.
    let baselines: Vec<f64> = results
        .iter()
        .filter(|r| r.row.blocks.is_none())
        .map(|r| r.per)
        .collect();
    println!("GRU baselines PER: {baselines:?}");
}
