//! Regenerates **Fig. 5**: the Euclidean mapping of a 4×4 matrix with
//! block size 2 (ADMM's second subproblem, Eqn. 6).

use ernn_linalg::{BlockCirculantMatrix, Matrix};

fn main() {
    let dense = Matrix::from_rows(&[
        &[0.5, 0.4, 1.2, -0.3],
        &[-1.3, 0.5, 0.1, 0.7],
        &[-0.1, 1.4, 0.7, 0.5],
        &[0.6, -1.3, -0.9, 1.4],
    ]);
    println!("Fig. 5 — Euclidean mapping, 4x4 matrix, block size 2\n");
    println!("input matrix:\n{dense}");
    let projected = BlockCirculantMatrix::project_dense(&dense, 2);
    println!("mapped (block-circulant) matrix:\n{}", projected.to_dense());
    println!("defining vectors per block:");
    for i in 0..2 {
        for j in 0..2 {
            println!("  block ({i},{j}): {:?}", projected.block(i, j));
        }
    }
    println!(
        "\ndistance^2 to input: {:.4} (the minimum over all block-circulant matrices)",
        projected.distance_sq(&dense)
    );
}
