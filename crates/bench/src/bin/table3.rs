//! Regenerates **Table III**: detailed comparison of RNN designs on FPGAs
//! (ESE, C-LSTM, E-RNN FFT8/FFT16, LSTM and GRU, both platforms).
//!
//! Hardware numbers come from the resource/cycle/power models in
//! `ernn-fpga` (see DESIGN.md for the calibration notes). PER-degradation
//! rows are taken from the paper for the baselines we cannot train
//! (TIMIT) and measured on the synthetic corpus for E-RNN when
//! `--accuracy` is passed.

use ernn_asr::{SynthCorpus, SynthCorpusConfig};
use ernn_bench::{evaluate_compressed_row, train_baseline, ModelRow, RowRecipe};
use ernn_fpga::baseline::{clstm_report, EseModel};
use ernn_fpga::power::{board_power, energy_efficiency};
use ernn_fpga::{AccelReport, Accelerator, RnnSpec, ADM_PCIE_7V3, XCKU060};
use ernn_model::CellType;

struct Row {
    report: AccelReport,
    power_w: Option<f64>,
    per_degradation: Option<f64>,
}

fn main() {
    let with_accuracy = std::env::args().any(|a| a == "--accuracy");

    // Optional accuracy measurements (E-RNN LSTM/GRU at block 8/16).
    let mut measured: Vec<(String, f64)> = Vec::new();
    if with_accuracy {
        eprintln!("measuring PER degradation on the synthetic corpus ...");
        let corpus = SynthCorpus::generate(&SynthCorpusConfig::standard(42));
        let recipe = RowRecipe::full();
        for cell in [CellType::Lstm, CellType::Gru] {
            let row = ModelRow {
                id: 0,
                layer_dims: vec![64, 64],
                blocks: None,
                peephole: cell == CellType::Lstm,
                projection: None,
            };
            let (baseline, base_per) = train_baseline(cell, &row, &corpus, &recipe, 7);
            for block in [8usize, 16] {
                let per = evaluate_compressed_row(
                    &baseline,
                    &[block, block],
                    &corpus,
                    &recipe,
                    7 + block as u64,
                );
                measured.push((format!("{cell:?}-FFT{block}"), per - base_per));
            }
        }
    }
    let lookup = |cell: CellType, block: usize| -> Option<f64> {
        measured
            .iter()
            .find(|(k, _)| *k == format!("{cell:?}-FFT{block}"))
            .map(|(_, v)| *v)
    };

    let mut rows: Vec<Row> = Vec::new();

    // ESE (KU060) — published utilization/power, modelled latency/FPS.
    let ese = EseModel::table_iii();
    let (dsp, bram, lut, ff) = EseModel::published_utilization();
    rows.push(Row {
        report: AccelReport {
            name: "ESE (sparse LSTM)".into(),
            platform: XCKU060.name,
            params_millions: ese.nnz() as f64 / 1e6,
            compression_ratio: ese.effective_compression(),
            quant_bits: 12,
            num_pes: ese.mac_channels,
            stages: ernn_fpga::StageCycles {
                stage1: ese.cycles_per_frame(),
                stage2: 1,
                stage3: 1,
            },
            latency_us: ese.latency_us(),
            fps: ese.fps(),
            dsp_used: 0,
            dsp_pct: dsp,
            bram_used: 0,
            bram_pct: bram,
            lut_used: 0,
            lut_pct: lut,
            ff_used: 0,
            ff_pct: ff,
        },
        power_w: Some(EseModel::published_power_w()),
        per_degradation: Some(0.30),
    });

    // C-LSTM FFT8 and FFT16 (7V3).
    for block in [8usize, 16] {
        let r = clstm_report(block, ADM_PCIE_7V3);
        let p = board_power(&r, &ADM_PCIE_7V3, false);
        rows.push(Row {
            report: r,
            power_w: Some(p),
            per_degradation: Some(if block == 8 { 0.32 } else { 0.41 }),
        });
    }

    // E-RNN LSTM and GRU, FFT8/FFT16, both platforms.
    for (cell, label) in [(CellType::Lstm, "LSTM"), (CellType::Gru, "GRU")] {
        for block in [8usize, 16] {
            for dev in [XCKU060, ADM_PCIE_7V3] {
                let spec = match cell {
                    CellType::Lstm => RnnSpec::lstm_1024(block, 12),
                    CellType::Gru => RnnSpec::gru_1024(block, 12),
                };
                let r = Accelerator::new(spec, dev).report(format!("E-RNN FFT{block} {label}"));
                let p = board_power(&r, &dev, false);
                rows.push(Row {
                    power_w: Some(p),
                    per_degradation: lookup(cell, block),
                    report: r,
                });
            }
        }
    }

    // Render.
    println!("Table III — detailed comparison of RNN designs on FPGAs (modelled)");
    println!(
        "{:<22} {:<14} {:>7} {:>6} {:>5} {:>7} {:>9} {:>11} {:>7} {:>9}  {:>5} {:>5} {:>5} {:>5}",
        "design",
        "platform",
        "MParam",
        "comp",
        "bits",
        "PERdeg",
        "lat(us)",
        "FPS",
        "P(W)",
        "FPS/W",
        "DSP%",
        "BRAM%",
        "LUT%",
        "FF%"
    );
    for row in &rows {
        let r = &row.report;
        let power = row.power_w.unwrap_or(f64::NAN);
        let deg = row
            .per_degradation
            .map(|d| format!("{d:+.2}"))
            .unwrap_or_else(|| "--".into());
        println!(
            "{:<22} {:<14} {:>7.2} {:>5.1}: {:>4}b {:>7} {:>9.1} {:>11.0} {:>7.1} {:>9.0}  {:>5.1} {:>5.1} {:>5.1} {:>5.1}",
            r.name,
            r.platform,
            r.params_millions,
            r.compression_ratio,
            r.quant_bits,
            deg,
            r.latency_us,
            r.fps,
            power,
            energy_efficiency(r.fps, power),
            r.dsp_pct,
            r.bram_pct,
            r.lut_pct,
            r.ff_pct,
        );
    }
    if !measured.is_empty() {
        println!("\nmeasured PER degradation (synthetic corpus, pp):");
        for (k, v) in &measured {
            println!("  {k}: {v:+.2}");
        }
    }

    // Headline ratios (paper: 37.4x vs ESE, >2x vs C-LSTM, GRU best).
    let eff = |name: &str| {
        rows.iter()
            .find(|r| r.report.name.contains(name))
            .map(|r| energy_efficiency(r.report.fps, r.power_w.unwrap_or(f64::NAN)))
            .unwrap_or(f64::NAN)
    };
    let ese_eff = eff("ESE");
    let clstm_eff = eff("C-LSTM FFT8");
    let gru16 = rows
        .iter()
        .filter(|r| r.report.name.contains("GRU") && r.report.name.contains("16"))
        .map(|r| energy_efficiency(r.report.fps, r.power_w.unwrap_or(f64::NAN)))
        .fold(0.0f64, f64::max);
    println!("\nheadline ratios:");
    println!(
        "  E-RNN GRU FFT16 vs ESE     : {:.1}x (paper: 37.4x)",
        gru16 / ese_eff
    );
    println!(
        "  E-RNN GRU FFT16 vs C-LSTM  : {:.1}x (paper: ~2x)",
        gru16 / clstm_eff
    );
}
