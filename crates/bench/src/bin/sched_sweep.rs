//! Head-to-head scheduler sweep: EDF + cost-model placement vs the naive
//! FIFO + earliest-free baseline on a mixed two-model, two-platform
//! workload at fixed offered load.
//!
//! The workload is the canonical multi-tenant shape: an *interactive*
//! tenant (small acoustic model, short utterances, tight SLO) sharing the
//! pool with a *batch* tenant (larger model, long utterances, loose SLO).
//! A BRAM budget that holds only one weight image per device makes
//! placement residency-aware: thrashing models across devices costs real
//! stall time.
//!
//! This sweep is also a correctness harness — it **asserts** that
//!
//! * EDF + cost-model misses strictly fewer deadlines than FIFO +
//!   earliest-free at the same load,
//! * virtual-time results (responses, metrics, scheduler stats, the
//!   flight-recorder trace — including its Chrome trace-event rendering,
//!   byte for byte — the metrics timeline, and the health report) are
//!   bit-identical across the `Inline` and `ThreadPool` executors,
//! * every request's critical-path decomposition (queue + load + state +
//!   compute from [`analyze`]) sums exactly to that request's observed
//!   response latency, and
//! * the overloaded tight-SLO configs fire the multi-window SLO
//!   burn-rate alert while the shedding config's health stays clean of
//!   device-stuck/thrash/retry pathologies.
//!
//! Run with: `cargo run --release -p ernn-bench --bin sched_sweep`
//! (`--quick` shrinks the load for smoke runs, `--json PATH` writes the
//! rows as a bench artifact for CI trend tracking, `--trace-out PATH`
//! writes the shed config's flight-recorder journal as Perfetto-loadable
//! Chrome trace JSON, a Prometheus text snapshot at `PATH.prom`, and the
//! timeline/health exports as sibling `TIMELINE_*`/`HEALTH_*` files).

use ernn_bench::json::{array, json_path_arg, trace_path_arg, write_artifact, JsonObject};
use ernn_core::pipeline::Pipeline;
use ernn_fpga::{ADM_PCIE_7V3, XCKU060};
use ernn_model::{CellType, ModelSpec};
use ernn_serve::loadgen::{open_loop_poisson, synthetic_utterances};
use ernn_serve::sched::{
    AdmissionPolicy, ModelRegistry, PaddingModel, SchedPolicy, SchedReport, SchedRuntime,
};
use ernn_serve::{
    analyze, chrome_trace_json, health_json, prometheus_snapshot_full, timeline_json,
    CompiledModel, ExecutorKind, HealthConfig, HealthRuleKind, Request, RuntimeConfig,
    TimelineConfig, TraceConfig,
};
use rand::SeedableRng;

const INPUT_DIM: usize = 52;
/// Interactive tenant: model 0, short utterances, tight SLO.
const INTERACTIVE_SLO_US: f64 = 60.0;
/// Batch tenant: model 1, long utterances, loose SLO.
const BATCH_SLO_US: f64 = 20_000.0;

/// Compiles a tenant model under the paper preset (block 8, 12-bit
/// datapath, XCKU060) via the lifecycle pipeline.
fn compile(seed: u64, hidden: usize) -> CompiledModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    Pipeline::paper(ModelSpec::new(CellType::Gru, INPUT_DIM, 40).layer_dims(&[hidden]))
        .expect("valid spec")
        .init(&mut rng)
        .project()
        .expect("paper block policy")
        .quantize()
        .expect("paper datapath")
        .compile()
        .expect("paper platform")
        .into_model()
}

fn registry() -> ModelRegistry {
    let mut reg = ModelRegistry::new();
    reg.register("gru-64-interactive", compile(3, 64));
    reg.register("gru-256-batch", compile(4, 256));
    reg
}

/// The fixed mixed load: 3 interactive requests to every batch request,
/// deadlines per tenant class (class-heterogeneous SLOs are what make
/// deadline-aware ordering matter — uniform SLOs degenerate EDF to FIFO).
fn load(num_requests: usize) -> Vec<Request> {
    let interactive = synthetic_utterances(8, (5, 15), INPUT_DIM, 21);
    let batch = synthetic_utterances(8, (30, 60), INPUT_DIM, 22);
    let arrivals = open_loop_poisson(&interactive, num_requests, 500_000.0, 23);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let arrival = r.arrival_us;
            if i % 4 == 3 {
                // i/4 so consecutive batch requests cycle the whole pool
                // (i itself only hits indices ≡ 3 mod 4).
                let payload = batch[(i / 4) % batch.len()].clone();
                Request::new(r.id, payload, arrival)
                    .with_model(1)
                    .with_deadline(arrival + BATCH_SLO_US)
            } else {
                r.with_model(0).with_deadline(arrival + INTERACTIVE_SLO_US)
            }
        })
        .collect()
}

struct Config {
    label: &'static str,
    policy: SchedPolicy,
}

/// Flight-recorder capacity: comfortably above the event count of the
/// full 600-request run, so the exported journal is complete
/// (`dropped_events: 0`).
const TRACE_CAPACITY: usize = 1 << 16;
/// Timeline sampling interval (µs): fine enough that even the quick
/// run's ~2 ms of virtual time yields a few dozen samples for the
/// health rules' windows.
const TIMELINE_INTERVAL_US: f64 = 50.0;
/// Timeline ring capacity: holds every sample of the full run
/// (`dropped: 0` is asserted).
const TIMELINE_CAPACITY: usize = 1 << 14;

/// Renames an artifact path's `PREFIX_` (e.g. `TRACE_sched.json` →
/// `TIMELINE_sched.json`) so the timeline/health exports land next to
/// the trace with the naming CI's upload globs expect.
fn sibling_artifact(path: &str, prefix: &str) -> String {
    let p = std::path::Path::new(path);
    let file = p.file_name().and_then(|f| f.to_str()).unwrap_or(path);
    let renamed = match file.split_once('_') {
        Some((_, rest)) => format!("{prefix}_{rest}"),
        None => format!("{prefix}_{file}"),
    };
    p.with_file_name(renamed).to_string_lossy().into_owned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = json_path_arg(&args);
    let trace_path = trace_path_arg(&args);
    let num_requests = if quick { 200 } else { 600 };

    let reg = registry();
    // A weight budget that holds exactly one model per device: placement
    // must respect residency or pay the reload stall.
    let tight_budget = reg.weight_bytes(1) + reg.weight_bytes(0) / 2;
    println!(
        "models: {} ({} KiB), {} ({} KiB); per-device weight budget {} KiB",
        reg.name(0),
        reg.weight_bytes(0) / 1024,
        reg.name(1),
        reg.weight_bytes(1) / 1024,
        tight_budget / 1024
    );
    drop(reg);

    let platforms = vec![XCKU060, ADM_PCIE_7V3];
    let base = |policy: SchedPolicy| policy.with_bram_budget_bytes(tight_budget);
    let configs = [
        Config {
            label: "fifo+earliest_free",
            policy: base(SchedPolicy::fifo_earliest_free(8, 200.0)),
        },
        Config {
            label: "edf+cost_model",
            policy: base(SchedPolicy::edf_cost_model(8, 200.0)),
        },
        Config {
            label: "edf+cost+padding",
            policy: base(
                SchedPolicy::edf_cost_model(8, 200.0).with_padding(PaddingModel::new(0.4)),
            ),
        },
        Config {
            label: "edf+cost+shed",
            policy: base(
                SchedPolicy::edf_cost_model(8, 200.0)
                    .with_admission(AdmissionPolicy::ShedPredictedLate),
            ),
        },
    ];

    println!(
        "\n{:<20} {:>8} {:>6} {:>9} {:>9} {:>9} {:>8} {:>7}",
        "config", "served", "shed", "miss %", "p99 µs", "p99.9 µs", "loads", "evict"
    );
    let mut rows: Vec<String> = Vec::new();
    let mut miss_by_label: Vec<(&str, f64)> = Vec::new();
    for config in &configs {
        let run = |kind| {
            SchedRuntime::with_config(
                registry(),
                platforms.clone(),
                config.policy,
                RuntimeConfig::new()
                    .executor(kind)
                    .tracing(TraceConfig::enabled(TRACE_CAPACITY))
                    .timeline(TimelineConfig::enabled(
                        TIMELINE_INTERVAL_US,
                        TIMELINE_CAPACITY,
                    ))
                    .health(HealthConfig::enabled()),
            )
            .run(load(num_requests))
        };
        let report = run(ExecutorKind::Inline);

        // Correctness harness: the thread-pool executor must reproduce
        // every virtual-time result bit for bit.
        let pool_report: SchedReport = run(ExecutorKind::ThreadPool);
        assert_eq!(
            report.responses, pool_report.responses,
            "{}: executor changed responses",
            config.label
        );
        assert_eq!(
            report.metrics, pool_report.metrics,
            "{}: executor changed virtual-time metrics",
            config.label
        );
        assert_eq!(
            report.sched, pool_report.sched,
            "{}: executor changed scheduler stats",
            config.label
        );
        assert_eq!(
            report.trace, pool_report.trace,
            "{}: executor changed the flight-recorder trace",
            config.label
        );
        let chrome = chrome_trace_json(&report.trace);
        assert_eq!(
            chrome,
            chrome_trace_json(&pool_report.trace),
            "{}: executor changed the Chrome trace rendering",
            config.label
        );
        assert_eq!(
            report.trace.journal.dropped, 0,
            "{}: trace overflow",
            config.label
        );
        assert_eq!(
            report.timeline, pool_report.timeline,
            "{}: executor changed the metrics timeline",
            config.label
        );
        assert_eq!(
            report.health, pool_report.health,
            "{}: executor changed the health report",
            config.label
        );
        assert_eq!(
            report.timeline.dropped, 0,
            "{}: timeline ring overflow",
            config.label
        );

        // Critical-path analysis: every served request's queue + load +
        // state + compute decomposition must sum exactly to the latency
        // its Response reports.
        let analysis = analyze(&report.trace.journal);
        assert_eq!(
            analysis.spans.len(),
            report.metrics.completed,
            "{}: analysis lost spans",
            config.label
        );
        for span in &analysis.spans {
            assert_eq!(
                span.total_us(),
                span.latency_us(),
                "{}: request {} decomposition does not sum",
                config.label,
                span.id
            );
            let response = report
                .responses
                .iter()
                .find(|r| r.id == span.id && !r.shed)
                .expect("span has a served response");
            assert_eq!(
                span.latency_us(),
                response.latency_us(),
                "{}: request {} span disagrees with its response",
                config.label,
                span.id
            );
        }

        // Health: the FIFO baseline overdrives the interactive SLO by
        // design (~19% miss rate against a 1% budget), so its run must
        // fire the multi-window burn-rate alert — and at full load its
        // residency-oblivious placement also trips the thrash detector.
        // The deadline-aware configs are the healthy contrast: low
        // enough burn to stay quiet on every pathology rule.
        let h = &report.health;
        if config.label == "fifo+earliest_free" {
            assert!(
                h.count(HealthRuleKind::SloBurnRate) >= 1,
                "{}: overloaded run did not fire the SLO burn-rate alert",
                config.label
            );
        } else {
            for rule in [
                HealthRuleKind::DeviceStuck,
                HealthRuleKind::ResidencyThrash,
                HealthRuleKind::RetryStorm,
            ] {
                assert_eq!(
                    h.count(rule),
                    0,
                    "{}: unexpected {rule:?} health event",
                    config.label
                );
            }
        }

        if config.label == "edf+cost+shed" {
            if let Some(path) = &trace_path {
                write_artifact(path, chrome);
                let prom = prometheus_snapshot_full(
                    &report.metrics,
                    &report.trace,
                    Some(&report.sched),
                    Some(&report.timeline),
                    Some(&report.health),
                    None,
                );
                write_artifact(&format!("{path}.prom"), prom);
                write_artifact(
                    &sibling_artifact(path, "TIMELINE"),
                    timeline_json(&report.timeline),
                );
                write_artifact(
                    &sibling_artifact(path, "HEALTH"),
                    health_json(&report.health),
                );
            }
        }

        let m = &report.metrics;
        println!(
            "{:<20} {:>8} {:>6} {:>8.1}% {:>9.1} {:>9.1} {:>8} {:>7}",
            config.label,
            m.completed,
            m.shed,
            m.deadline_miss_rate * 100.0,
            m.latency.p99_us,
            m.latency.p999_us,
            report.sched.model_loads,
            report.sched.model_evictions
        );
        miss_by_label.push((config.label, m.deadline_miss_rate));

        let per_model = array(m.per_model.iter().map(|(id, pm)| {
            JsonObject::new()
                .int("model", *id as i64)
                .int("completed", pm.completed as i64)
                .int("shed", pm.shed as i64)
                .num("miss_rate", pm.deadline_miss_rate)
                .latency("", &pm.latency)
                .render()
        }));
        // The predictor's audit trail: every shed decision with the
        // prediction that justified it, so calibration is inspectable
        // per run straight from the artifact.
        let log = &report.sched.admission_log;
        let admitted = log.iter().filter(|r| r.admitted).count();
        let admission_shed = array(log.iter().filter(|r| !r.admitted).map(|r| {
            JsonObject::new()
                .int("id", r.id as i64)
                .int("model", r.model as i64)
                .num("predicted_us", r.predicted_us)
                .num("deadline_us", r.deadline_us.unwrap_or(f64::INFINITY))
                .render()
        }));
        // Per-(device, model) stage-time attribution from the trace:
        // where each cell's µs went (queueing, weight loads, compute,
        // batch padding).
        let attribution = array(report.trace.attribution.iter().map(|(device, model, c)| {
            JsonObject::new()
                .int("device", device as i64)
                .int("model", model as i64)
                .int("requests", c.requests as i64)
                .int("batches", c.batches as i64)
                .num("queue_us", c.queue_us)
                .num("load_us", c.load_us)
                .num("compute_us", c.compute_us)
                .num("padding_us", c.padding_us)
                .render()
        }));
        rows.push(
            JsonObject::new()
                .str("config", config.label)
                .int("completed", m.completed as i64)
                .int("shed", m.shed as i64)
                .num("miss_rate", m.deadline_miss_rate)
                .num("throughput_rps", m.throughput_rps)
                .latency("", &m.latency)
                .latency("queue_", &m.queue)
                .int("model_loads", report.sched.model_loads as i64)
                .int("model_evictions", report.sched.model_evictions as i64)
                .num("load_us_total", report.sched.load_us_total)
                .num("host_us", report.host_us)
                .int("admission_decisions", log.len() as i64)
                .int("admission_admitted", admitted as i64)
                .raw("admission_shed", admission_shed)
                .raw("attribution", attribution)
                .int("trace_events", report.trace.journal.events.len() as i64)
                .int("timeline_samples", report.timeline.samples.len() as i64)
                .num("ewma_queue_us", report.timeline.ewma_queue_us)
                .int("health_events", report.health.events.len() as i64)
                .num("critical_path_queue_us", analysis.totals.queue_us)
                .num("critical_path_load_us", analysis.totals.load_us)
                .num("critical_path_state_us", analysis.totals.state_us)
                .num("critical_path_compute_us", analysis.totals.compute_us)
                .raw("per_model", per_model)
                .render(),
        );
    }

    let miss = |label: &str| {
        miss_by_label
            .iter()
            .find(|(l, _)| *l == label)
            .expect("config ran")
            .1
    };
    let fifo = miss("fifo+earliest_free");
    let edf = miss("edf+cost_model");
    println!(
        "\nEDF + cost-model miss rate {:.1}% vs FIFO + earliest-free {:.1}%",
        edf * 100.0,
        fifo * 100.0
    );
    assert!(
        edf < fifo,
        "EDF + cost-model must miss fewer deadlines than FIFO + earliest-free \
         ({edf:.4} vs {fifo:.4})"
    );
    println!("(assertions passed: EDF beats FIFO; executors bit-identical)");

    if let Some(path) = json_path {
        let doc = JsonObject::new()
            .bench_header("sched_sweep")
            .int("requests", num_requests as i64)
            .num("interactive_slo_us", INTERACTIVE_SLO_US)
            .num("batch_slo_us", BATCH_SLO_US)
            .int("weight_budget_bytes", tight_budget as i64)
            .raw("rows", array(rows))
            .render();
        write_artifact(&path, doc);
    }
}
