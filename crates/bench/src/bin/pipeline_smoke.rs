//! Lifecycle-pipeline smoke harness: build a model through
//! `ernn::pipeline` (train → ADMM compress → quantize → compile),
//! serialize the resulting `ModelArtifact`, load it back, and serve a
//! short closed loop from the loaded copy — asserting the artifact
//! contract along the way:
//!
//! * `save_bytes → load_bytes` is the identity on the byte image,
//! * the loaded model's logits are **bit-identical** to the in-process
//!   build and its `StageCycles` are equal,
//! * registering the loaded artifact performs **zero** additional
//!   weight-spectrum refreshes (`spectrum_refresh_count` stays where
//!   decoding left it), and
//! * load time is a small fraction of the retrain-from-scratch time the
//!   artifact replaces.
//!
//! Run with: `cargo run --release -p ernn-bench --bin pipeline_smoke`
//! (`--quick` shrinks the training run for CI smoke, `--json PATH`
//! writes artifact size and load-vs-retrain timings as a bench
//! artifact).

use ernn_bench::json::{json_path_arg, write_artifact, JsonObject};
use ernn_core::pipeline::{CompressSettings, Pipeline, PipelineModel, TrainSettings};
use ernn_model::trainer::Sequence;
use ernn_model::{CellType, ModelSpec};
use ernn_serve::sched::{ModelRegistry, SchedPolicy, SchedRuntime};
use ernn_serve::{CompiledModel, ModelArtifact};
use rand::SeedableRng;
use std::time::Instant;

const DIM: usize = 12;
const CLASSES: usize = 8;

fn toy_data(n: usize, len: usize, seed: u64) -> Vec<Sequence> {
    use rand::Rng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let frames: Vec<Vec<f32>> = (0..len)
                .map(|_| (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect();
            let labels = (0..len).map(|t| t % CLASSES).collect();
            (frames, labels)
        })
        .collect()
}

/// The full in-process lifecycle: what a deployment without artifacts
/// would re-run at every startup.
fn build(quick: bool, data: &[Sequence]) -> PipelineModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let spec = ModelSpec::new(CellType::Gru, DIM, CLASSES).layer_dims(&[32]);
    Pipeline::paper(spec)
        .expect("valid spec")
        .block_policy(ernn_model::BlockPolicy::uniform(8))
        .source("ernn-bench pipeline_smoke")
        .train(
            data,
            TrainSettings {
                epochs: if quick { 2 } else { 6 },
                ..TrainSettings::default()
            },
            &mut rng,
        )
        .expect("non-empty data")
        .compress(
            data,
            CompressSettings {
                admm: ernn_admm::AdmmConfig {
                    iterations: if quick { 2 } else { 4 },
                    epochs_per_iter: 1,
                    retrain_epochs: 1,
                    ..ernn_admm::AdmmConfig::default()
                },
                lr: 0.02,
            },
            &mut rng,
        )
        .expect("non-empty data")
        .quantize()
        .expect("paper datapath")
        .compile()
        .expect("paper platform")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = json_path_arg(&args);
    let data = toy_data(if quick { 8 } else { 24 }, 10, 5);

    // 1. Build in-process, timed: the cost the artifact amortizes away.
    let t0 = Instant::now();
    let built = build(quick, &data);
    let build_us = t0.elapsed().as_micros() as f64;

    // 2. Serialize; byte-determinism check.
    let bytes = built.save_bytes();
    let reloaded = ModelArtifact::load_bytes(&bytes).expect("artifact decodes");
    assert_eq!(
        reloaded.save_bytes(),
        bytes,
        "save(load(bytes)) must be the identity"
    );

    // 3. Load, timed, and check bit-identity of the served numbers.
    let t1 = Instant::now();
    let artifact = ModelArtifact::load_bytes(&bytes).expect("artifact decodes");
    let loaded = CompiledModel::from_artifact(&artifact);
    let load_us = t1.elapsed().as_micros() as f64;
    let probe: Vec<Vec<f32>> = data[0].0.clone();
    assert_eq!(
        loaded.infer(&probe),
        built.model().infer(&probe),
        "loaded artifact must produce byte-equal logits"
    );
    assert_eq!(
        loaded.stage_cycles(),
        built.model().stage_cycles(),
        "loaded artifact must report equal StageCycles"
    );

    // 4. Register: zero additional spectrum refreshes beyond the decode.
    let at_load = loaded.weight_spectrum_refreshes();
    let mut registry = ModelRegistry::new();
    let id = registry.register_artifact("pipeline-smoke", &artifact);
    assert_eq!(
        registry.model(id).weight_spectrum_refreshes(),
        at_load,
        "register_artifact must not refresh weight spectra"
    );

    // 5. Serve a short closed loop from the loaded copy.
    let runtime = SchedRuntime::new(
        registry,
        vec![ernn_fpga::XCKU060],
        SchedPolicy::edf_cost_model(4, 100.0),
    );
    let payloads: Vec<(usize, Vec<Vec<f32>>)> =
        data.iter().take(4).map(|(f, _)| (id, f.clone())).collect();
    let total = if quick { 48 } else { 160 };
    let report = runtime.run_closed_loop(&payloads, 4, total, Some(10_000.0));
    assert_eq!(report.responses.len(), total);

    let speedup = build_us / load_us.max(1.0);
    println!(
        "artifact: {} bytes; build {:.1} ms vs load {:.3} ms ({speedup:.0}× faster than \
         retraining in-process)",
        bytes.len(),
        build_us / 1e3,
        load_us / 1e3,
    );
    println!(
        "closed loop from loaded artifact: {} responses, p99 {:.1} µs, throughput {:.0} rps",
        report.metrics.completed, report.metrics.latency.p99_us, report.metrics.throughput_rps
    );
    println!("(assertions passed: byte identity, logit/StageCycles bit-identity, zero-refresh registration)");

    if let Some(path) = json_path {
        let doc = JsonObject::new()
            .bench_header("pipeline_smoke")
            .int("artifact_bytes", bytes.len() as i64)
            .num("build_us", build_us)
            .num("load_us", load_us)
            .num("load_speedup", speedup)
            .int("closed_loop_responses", report.metrics.completed as i64)
            .num("throughput_rps", report.metrics.throughput_rps)
            .latency("", &report.metrics.latency)
            .render();
        write_artifact(&path, doc);
    }
}
