//! Cluster sweep: the cluster-tier serving acceptance harness.
//!
//! A multi-tenant load — streaming sessions on one model plus deadline-
//! carrying utterance traffic across three — runs against five cluster
//! shapes built from the same compiled models:
//!
//! * `fat-node` — one shard holding four devices behind a single
//!   scheduler with a free network: the scale-up baseline.
//! * `random` — a sharded cluster (one device per shard, heterogeneous
//!   platforms, replicated artifacts) with feedback-blind replica
//!   choice.
//! * `feedback` — the same cluster steered by shard load feedback
//!   (replica-readiness wait + EWMA queue delay).
//! * `feedback+kill` — load-feedback steering with one shard killed
//!   mid-run and failover re-steering its backlog.
//! * `kill,no-failover` — the same kill with failover disabled, so the
//!   dead shard's traffic sheds as `NoShardCapacity`.
//!
//! Every timing constant — the batch window, session pacing, and the
//! SLOs — is derived from the cost model so the sweep stays meaningful
//! if the paper datapath or the Table-IV platforms change: the offered
//! load is ~10 device-equivalents, overloading the 4-device fat node
//! 2.5× while the 16+-shard cluster runs well under capacity.
//!
//! This bin is a correctness harness — it **asserts** that
//!
//! * **scale-out beats scale-up**: the sharded cluster beats the fat
//!   node on p99.9 latency *and* tight-SLO deadline-miss rate;
//! * **load feedback pays**: feedback steering beats the random router
//!   on miss rate;
//! * **kills lose nothing**: with failover, every submitted request is
//!   answered exactly once — no losses, no duplicates — and every shed
//!   response anywhere carries an accurate `ShedReason`, with
//!   `NoShardCapacity` appearing exactly on router-level sheds;
//! * **the cluster is deterministic**: responses, metrics, router
//!   stats, per-shard gauges and the rendered router journal are
//!   bit-identical across `Inline` and `ThreadPool` executors.
//!
//! Run with: `cargo run --release -p ernn-bench --bin cluster_sweep`
//! (`--quick` shrinks the cluster and load for smoke runs, `--json
//! PATH` writes a `BENCH_cluster.json` artifact, `--trace-out PATH`
//! writes the killed run's router journal — forwards, replications,
//! the shard death and session reroutes — as Perfetto-loadable Chrome
//! trace JSON plus a Prometheus snapshot with per-shard gauges at
//! `PATH.prom`).

use ernn_bench::json::{array, json_path_arg, trace_path_arg, write_artifact, JsonObject};
use ernn_core::pipeline::Pipeline;
use ernn_fpga::{Device, DeviceFault, FaultEvent, FaultPlan, ADM_PCIE_7V3, XCKU060};
use ernn_model::{CellType, ModelSpec};
use ernn_serve::loadgen::synthetic_utterances;
use ernn_serve::sched::{CostModel, DeviceResidency, ModelRegistry, SchedPolicy};
use ernn_serve::{
    chrome_trace_json, prometheus_snapshot_full, ClusterConfig, ClusterReport, ClusterRuntime,
    ClusterSpec, CompiledModel, ExecutorKind, Request, Response, RuntimeConfig, ShedReason,
    Steering, TraceConfig, TransferModel,
};
use rand::{Rng, SeedableRng};

const DIM: usize = 52;
const CHUNK_FRAMES: usize = 6;
const SESSION_FRAMES: usize = 36;
const FAT_DEVICES: usize = 4;
/// Offered load as equivalent busy devices: well past the fat node's 4,
/// comfortably under the sharded cluster's 16+.
const TARGET_PARALLELISM: f64 = 10.0;
const SLO_MULT: f64 = 3.0;

fn compile(seed: u64, hidden: usize) -> CompiledModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    Pipeline::paper(ModelSpec::new(CellType::Gru, DIM, 40).layer_dims(&[hidden]))
        .expect("valid spec")
        .init(&mut rng)
        .project()
        .expect("paper block policy")
        .quantize()
        .expect("paper datapath")
        .compile()
        .expect("paper platform")
        .into_model()
}

fn tenant_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::new();
    spec.register("gru-64-stream", compile(5, 64));
    spec.register("gru-96-batch", compile(6, 96));
    spec.register("gru-64-tail", compile(7, 64));
    spec
}

/// Heterogeneous scale-out platforms: one device per shard, alternating
/// the two Table-IV boards — exactly the asymmetry load-feedback
/// steering exploits and the random router is blind to.
fn shard_platforms(shards: usize) -> Vec<Vec<Device>> {
    (0..shards)
        .map(|s| vec![if s % 2 == 0 { XCKU060 } else { ADM_PCIE_7V3 }])
        .collect()
}

fn fat_platform() -> Vec<Device> {
    (0..FAT_DEVICES)
        .map(|d| if d % 2 == 0 { XCKU060 } else { ADM_PCIE_7V3 })
        .collect()
}

struct Load {
    requests: Vec<Request>,
    span_us: f64,
    /// Arrival of the last session's first chunk — the kill victim is
    /// whichever shard that session gets pinned to.
    last_session_start_us: f64,
    /// Inter-chunk gap within a session.
    gap_us: f64,
    /// Cost-model-derived batch formation window for the scheduler.
    max_wait_us: f64,
}

/// Builds the shared trace: streaming sessions on model 0 paced in real
/// time, plus utterance traffic round-robined over all tenants with
/// uniform arrivals over a span sized from the cost model so offered
/// load is ~[`TARGET_PARALLELISM`] device-equivalents. SLOs are a few
/// worst-device service times plus the batch window, the one-time
/// weight-load stall, and two network hops — tight enough that real
/// queueing turns into misses, loose enough that an idle shard always
/// makes them.
fn build_load(utterances: usize, sessions: usize, spec: &ClusterSpec, seed: u64) -> Load {
    // Cost estimates come from a registry sharing the spec's models (no
    // recompiles) over the fat pool's device set, which has both board
    // kinds at indices 0 and 1.
    let mut reg = ModelRegistry::new();
    for m in 0..spec.len() {
        reg.register_shared(spec.name(m).to_string(), spec.model(m).clone());
    }
    let cost = CostModel::build(&fat_platform(), &reg);
    let load_us = DeviceResidency::load_us(
        (0..spec.len())
            .map(|m| reg.weight_bytes(m))
            .fold(0, u64::max),
    );
    let est_worst = |model: usize, frames: u64| -> f64 {
        cost.estimate_frames_us(0, model, frames)
            .max(cost.estimate_frames_us(1, model, frames))
    };
    let transfer = TransferModel::intra_rack();
    let hop = |frames: usize| transfer.transfer_us((frames * DIM * 4) as u64);

    let audio = synthetic_utterances(utterances, (8, 20), DIM, seed);
    let total_work: f64 = audio
        .iter()
        .enumerate()
        .map(|(i, utt)| cost.estimate_frames_us(0, i % spec.len(), utt.len() as u64))
        .sum();
    let span_us = total_work / TARGET_PARALLELISM;
    let unit_us = total_work / utterances as f64;
    let max_wait_us = (2.0 * unit_us).max(1.0);
    let slack_us = max_wait_us + load_us + unit_us;

    let mut requests = Vec::new();
    // Sessions: model 0, six chunks each, paced so a session spans about
    // a third of the run, starts spread across the first half — several
    // are mid-flight when the kill lands.
    let chunks = SESSION_FRAMES / CHUNK_FRAMES;
    let gap_us = span_us / (3.0 * chunks as f64);
    let chunk_slo_us =
        SLO_MULT * est_worst(0, CHUNK_FRAMES as u64) + 2.0 * hop(CHUNK_FRAMES) + slack_us;
    let session_audio = synthetic_utterances(
        sessions,
        (SESSION_FRAMES, SESSION_FRAMES),
        DIM,
        seed ^ 0xFEED,
    );
    for (s, utt) in session_audio.iter().enumerate() {
        let start = (s as f64 + 0.5) * span_us / (2.0 * sessions as f64);
        for i in 0..chunks {
            let arrival = start + i as f64 * gap_us;
            requests.push(
                Request::chunk(
                    (s * chunks + i) as u64,
                    s as u64,
                    i as u32,
                    i == chunks - 1,
                    utt[i * CHUNK_FRAMES..(i + 1) * CHUNK_FRAMES].to_vec(),
                    arrival,
                )
                .with_deadline(arrival + chunk_slo_us),
            );
        }
    }
    // Utterances: uniform arrivals with per-model SLOs.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
    for (u, utt) in audio.iter().enumerate() {
        let model = u % spec.len();
        let arrival = rng.gen_range(0.02..0.98) * span_us;
        let slo = SLO_MULT * est_worst(model, utt.len() as u64) + 2.0 * hop(utt.len()) + slack_us;
        requests.push(
            Request::new(10_000 + u as u64, utt.clone(), arrival)
                .with_model(model)
                .with_deadline(arrival + slo),
        );
    }
    println!(
        "load: {} requests over {span_us:.0} µs (unit {unit_us:.2} µs, weight load \
         {load_us:.1} µs, batch window {max_wait_us:.1} µs, chunk SLO {chunk_slo_us:.1} µs, \
         artifact hop {:.1} µs)",
        requests.len(),
        transfer.transfer_us(
            (0..spec.len())
                .map(|m| spec.artifact_bytes(m))
                .fold(0, u64::max)
        ),
    );
    let last_session_start_us = (sessions as f64 - 0.5) * span_us / (2.0 * sessions as f64);
    Load {
        requests,
        span_us,
        last_session_start_us,
        gap_us,
        max_wait_us,
    }
}

/// Deadline-miss rate over deadline-tracked responses; shed responses
/// score as misses.
fn miss_rate(responses: &[Response]) -> f64 {
    let tracked: Vec<&Response> = responses.iter().filter(|r| r.deadline_tracked).collect();
    let missed = tracked.iter().filter(|r| !r.deadline_met).count();
    missed as f64 / tracked.len().max(1) as f64
}

/// Zero requests lost: the responses partition the submitted ids, and
/// every shed response carries an accurate reason — `NoShardCapacity`
/// exactly on (and only on) router-level sheds.
fn assert_accounting(label: &str, requests: &[Request], report: &ClusterReport) {
    let mut submitted: Vec<u64> = requests.iter().map(|r| r.id).collect();
    submitted.sort_unstable();
    let answered: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
    assert_eq!(
        submitted, answered,
        "{label}: responses must partition the submitted ids exactly"
    );
    let mut router_sheds = 0u64;
    for r in &report.responses {
        if r.shed {
            let reason = r
                .shed_reason
                .unwrap_or_else(|| panic!("{label}: request {} shed without a reason", r.id));
            // No admission control and no shard-internal faults in this
            // sweep: the only legitimate shed cause is the router
            // finding no live replica.
            assert_eq!(
                reason,
                ShedReason::NoShardCapacity,
                "{label}: request {} shed for an impossible reason",
                r.id
            );
            router_sheds += 1;
        } else {
            assert_eq!(r.shed_reason, None, "{label}: served with a shed reason");
        }
    }
    assert_eq!(
        router_sheds, report.stats.shed_no_capacity,
        "{label}: NoShardCapacity responses must match the router's count"
    );
}

struct Shape {
    name: &'static str,
    platforms: Vec<Vec<Device>>,
    config: ClusterConfig,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = json_path_arg(&args);
    let trace_path = trace_path_arg(&args);
    let (shards, utterances, sessions) = if quick { (16, 2000, 8) } else { (32, 4000, 12) };
    // Replicas per model scale with the cluster so aggregate capacity
    // does too: hash placement overlaps across models, so half the
    // shards per model keeps most of the ring covered while the
    // replication ramp (replica k servable only after k transfer hops)
    // stays a modest fraction of the run.
    let replication = (shards / 2).max(2);

    let spec = tenant_spec();
    let load = build_load(utterances, sessions, &spec, 29);
    let total = load.requests.len();
    let policy = SchedPolicy::edf_cost_model(4, load.max_wait_us);

    let sharded = |steering: Steering, faults: FaultPlan, failover: bool| {
        ClusterConfig::new()
            .replication(replication)
            .steering(steering)
            .shard_faults(faults)
            .failover(failover)
            .tracing(TraceConfig::enabled(1 << 15))
    };
    let run = |shape: &Shape, exec: ExecutorKind| {
        ClusterRuntime::new(
            spec.clone(),
            shape.platforms.clone(),
            policy,
            RuntimeConfig::new().executor(exec),
            shape.config.clone(),
        )
        .run(load.requests.clone())
    };

    let calm_shapes = [
        Shape {
            name: "fat-node",
            platforms: vec![fat_platform()],
            config: ClusterConfig::new()
                .replication(1)
                .transfer(TransferModel::zero())
                .tracing(TraceConfig::enabled(1 << 15)),
        },
        Shape {
            name: "random",
            platforms: shard_platforms(shards),
            config: sharded(Steering::Random, FaultPlan::empty(), true),
        },
        Shape {
            name: "feedback",
            platforms: shard_platforms(shards),
            config: sharded(Steering::LoadFeedback, FaultPlan::empty(), true),
        },
    ];
    let calm_reports: Vec<ClusterReport> = calm_shapes
        .iter()
        .map(|s| run(s, ExecutorKind::Inline))
        .collect();

    // The kill victim: whichever shard the *last* streaming session got
    // pinned to in the calm feedback run, killed between its third and
    // fourth chunks. Routing is deterministic and the kill run is
    // identical to the calm run up to the kill instant, so the session
    // is provably pinned there with chunks still to come — the kill
    // must reroute (or, without failover, shed) live traffic.
    let chunks = SESSION_FRAMES / CHUNK_FRAMES;
    let probe_id = ((sessions - 1) * chunks) as u64;
    let victim = calm_reports[2]
        .responses
        .iter()
        .find(|r| r.id == probe_id)
        .expect("last session's first chunk missing")
        .device
        .expect("last session's first chunk was shed in the calm run");
    let kill_us = load.last_session_start_us + 2.5 * load.gap_us;
    println!(
        "cluster: {shards} shards (1 device each, alternating platforms, replication \
         {replication}) vs fat node ({FAT_DEVICES} devices); kill: shard {victim} (hosts \
         session {}) at {kill_us:.0} µs\n",
        sessions - 1
    );

    let kill_plan = FaultPlan::new(vec![FaultEvent {
        t_us: kill_us,
        device: victim,
        fault: DeviceFault::Crash {
            down_us: f64::INFINITY,
        },
    }]);
    let kill_shapes = [
        Shape {
            name: "feedback+kill",
            platforms: shard_platforms(shards),
            config: sharded(Steering::LoadFeedback, kill_plan.clone(), true),
        },
        Shape {
            name: "kill,no-failover",
            platforms: shard_platforms(shards),
            config: sharded(Steering::LoadFeedback, kill_plan, false),
        },
    ];
    let kill_reports: Vec<ClusterReport> = kill_shapes
        .iter()
        .map(|s| run(s, ExecutorKind::Inline))
        .collect();

    let shapes: Vec<&Shape> = calm_shapes.iter().chain(&kill_shapes).collect();
    let reports: Vec<&ClusterReport> = calm_reports.iter().chain(&kill_reports).collect();
    let [fat, random, feedback, killed, stranded] = &reports[..] else {
        unreachable!("five shapes");
    };

    // Determinism: the cluster's entire virtual-time surface is
    // executor-blind — merged responses, metrics, router stats, shard
    // gauges, and the rendered router journal.
    for shape in [&calm_shapes[2], &kill_shapes[0]] {
        let a = run(shape, ExecutorKind::Inline);
        let b = run(shape, ExecutorKind::ThreadPool);
        assert_eq!(
            (&a.responses, &a.metrics, &a.stats, a.shard_gauges()),
            (&b.responses, &b.metrics, &b.stats, b.shard_gauges()),
            "{}: cluster run must be bit-identical across executors",
            shape.name
        );
        assert_eq!(
            chrome_trace_json(&a.trace),
            chrome_trace_json(&b.trace),
            "{}: router journal must be bit-identical across executors",
            shape.name
        );
    }

    for (shape, report) in shapes.iter().zip(&reports) {
        assert_accounting(shape.name, &load.requests, report);
    }

    println!(
        "{:<17} {:>7} {:>7} {:>6} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "shape", "shards", "served", "shed", "miss rate", "p99 µs", "p99.9 µs", "rerouted", "repl"
    );
    let mut json_rows: Vec<String> = Vec::new();
    for (shape, report) in shapes.iter().zip(&reports) {
        let miss = miss_rate(&report.responses);
        let served = report.responses.iter().filter(|r| !r.shed).count();
        println!(
            "{:<17} {:>7} {:>7} {:>6} {:>9.1}% {:>10.1} {:>10.1} {:>9} {:>9}",
            shape.name,
            report.shards.len(),
            served,
            report.metrics.shed,
            miss * 100.0,
            report.metrics.latency.p99_us,
            report.metrics.latency.p999_us,
            report.stats.rerouted,
            report.stats.replications,
        );
        json_rows.push(
            JsonObject::new()
                .str("shape", shape.name)
                .int("shards", report.shards.len() as i64)
                .num("miss_rate", miss)
                .int("served", served as i64)
                .int("shed", report.metrics.shed as i64)
                .int("routed", report.stats.routed as i64)
                .int("reclaimed", report.stats.reclaimed as i64)
                .int("rerouted", report.stats.rerouted as i64)
                .int("sessions_rerouted", report.stats.sessions_rerouted as i64)
                .int("shed_no_capacity", report.stats.shed_no_capacity as i64)
                .int("replications", report.stats.replications as i64)
                .num("forward_us_total", report.stats.forward_us_total)
                .num("replication_us_total", report.stats.replication_us_total)
                .latency("", &report.metrics.latency)
                .num("host_us", report.host_us)
                .render(),
        );
    }

    // (a) Scale-out beats scale-up on the tail and the SLO.
    assert!(
        feedback.metrics.latency.p999_us < fat.metrics.latency.p999_us,
        "sharded cluster must beat the fat node on p99.9: {:.1} vs {:.1} µs",
        feedback.metrics.latency.p999_us,
        fat.metrics.latency.p999_us
    );
    let (miss_feedback, miss_fat, miss_random) = (
        miss_rate(&feedback.responses),
        miss_rate(&fat.responses),
        miss_rate(&random.responses),
    );
    assert!(
        miss_feedback < miss_fat,
        "sharded cluster must beat the fat node on miss rate: {miss_feedback:.4} vs {miss_fat:.4}"
    );
    // (b) Load feedback beats the feedback-blind router.
    assert!(
        miss_feedback < miss_random,
        "feedback steering must beat random on miss rate: {miss_feedback:.4} vs {miss_random:.4}"
    );
    // (c) The kill loses nothing with failover: exact partition already
    // asserted; additionally nothing shed and the backlog re-steered.
    assert_eq!(
        killed.metrics.shed, 0,
        "with replication {replication} and failover, one kill must shed nothing"
    );
    assert_eq!(killed.stats.shard_kills, 1);
    assert_eq!(
        killed.stats.rerouted, killed.stats.reclaimed,
        "every reclaimed request must be re-steered"
    );
    // Without failover the dead shard's traffic sheds — accurately.
    assert!(
        stranded.stats.shed_no_capacity > 0,
        "the no-failover kill must shed the dead shard's traffic"
    );
    assert!(
        miss_rate(&killed.responses) < miss_rate(&stranded.responses),
        "failover must beat no-failover on miss rate"
    );

    if let Some(path) = &trace_path {
        write_artifact(path, chrome_trace_json(&killed.trace));
        let gauges = killed.shard_gauges();
        let prom = prometheus_snapshot_full(
            &killed.metrics,
            &killed.trace,
            None,
            None,
            None,
            Some(&gauges),
        );
        write_artifact(&format!("{path}.prom"), prom);
    }

    println!(
        "\nscale-out p99.9 {:.1} µs vs fat-node {:.1} µs; miss rate feedback {:.2}% < random \
         {:.2}% < fat {:.2}%; kill rerouted {}/{} with {} session reroutes (assertions passed; \
         executors bit-identical)",
        feedback.metrics.latency.p999_us,
        fat.metrics.latency.p999_us,
        miss_feedback * 100.0,
        miss_random * 100.0,
        miss_fat * 100.0,
        killed.stats.rerouted,
        killed.stats.reclaimed,
        killed.stats.sessions_rerouted,
    );

    if let Some(path) = json_path {
        let doc = JsonObject::new()
            .bench_header("cluster_sweep")
            .int("shards", shards as i64)
            .int("replication", replication as i64)
            .int("fat_devices", FAT_DEVICES as i64)
            .int("models", spec.len() as i64)
            .int("utterances", utterances as i64)
            .int("sessions", sessions as i64)
            .int("requests", total as i64)
            .num("span_us", load.span_us)
            .num("kill_us", kill_us)
            .int("kill_shard", victim as i64)
            .raw("rows", array(json_rows))
            .render();
        write_artifact(&path, doc);
    }
}
