//! Sweeps the zero-allocation, batch-fused FFT matvec kernel stack:
//! per-call heap-allocation counts for the allocating vs `_into` paths,
//! and batched-vs-sequential matvec wall clock across block sizes and
//! batch sizes.
//!
//! The sweep doubles as a correctness harness (CI runs it with `--quick`):
//!
//! * the steady-state allocation count of `matvec_batch_into` must be
//!   **zero** (counted by the [`ernn_bench::alloc`] global allocator);
//! * `matvec_batch_into` must stream the cached weight spectra exactly
//!   once per batch (`p·q` block reads, via `ernn_fft::stats`);
//! * for batches of 8 or more, one fused call must beat B sequential
//!   `matvec` calls on wall clock.
//!
//! Run with: `cargo run --release -p ernn-bench --bin kernel_sweep`
//! (`--quick` shrinks the configs for smoke runs, `--json PATH` writes
//! the rows as a bench artifact for CI trend tracking).

use ernn_bench::alloc::{allocation_count, CountingAllocator};
use ernn_bench::json::{array, json_path_arg, write_artifact, JsonObject};
use ernn_fft::stats;
use ernn_linalg::{BlockCirculantMatrix, MatVecScratch};
use rand::{Rng, SeedableRng};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Best-of-`reps` wall time of `f`, in microseconds.
fn best_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = json_path_arg(&args);
    let dim = if quick { 256 } else { 1024 };
    let block_sizes: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32, 64] };
    let batches: &[usize] = &[1, 4, 8, 16];
    let reps = if quick { 15 } else { 40 };

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    println!("kernel_sweep: {dim}×{dim} block-circulant matvec, best of {reps} reps\n");
    println!(
        "{:<6} {:<6} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "L_b", "batch", "seq µs", "fused µs", "speedup", "seq allocs", "fused allocs"
    );

    let mut rows: Vec<String> = Vec::new();
    for &lb in block_sizes {
        let p = dim / lb;
        let blocks: Vec<f32> = (0..p * p * lb).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let m = BlockCirculantMatrix::from_blocks(dim, dim, lb, blocks);
        let mut scratch = MatVecScratch::new();

        for &batch in batches {
            let xs: Vec<f32> = (0..batch * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut ys = vec![0.0f32; batch * dim];

            // Warm the scratch, then count steady-state allocations and
            // spectrum-block reads for one fused call.
            m.matvec_batch_into(&xs, &mut ys, batch, &mut scratch);
            let (a0, s0) = (allocation_count(), stats::thread_snapshot());
            m.matvec_batch_into(&xs, &mut ys, batch, &mut scratch);
            let fused_allocs = allocation_count() - a0;
            let fused_reads = stats::thread_snapshot().since(&s0).spectrum_block_reads;
            assert_eq!(
                fused_allocs, 0,
                "steady-state matvec_batch_into must not allocate (L_b={lb}, batch={batch})"
            );
            assert_eq!(
                fused_reads,
                (p * p) as u64,
                "fused matvec must stream the weight spectra once per batch"
            );

            // Allocation count of the B allocating sequential calls.
            let a0 = allocation_count();
            for b in 0..batch {
                let _ = m.matvec(&xs[b * dim..(b + 1) * dim]);
            }
            let seq_allocs = allocation_count() - a0;

            let seq_us = best_us(reps, || {
                for b in 0..batch {
                    std::hint::black_box(m.matvec(&xs[b * dim..(b + 1) * dim]));
                }
            });
            let fused_us = best_us(reps, || {
                m.matvec_batch_into(
                    std::hint::black_box(&xs),
                    std::hint::black_box(&mut ys),
                    batch,
                    &mut scratch,
                );
            });
            let speedup = seq_us / fused_us;
            if batch >= 8 {
                assert!(
                    fused_us < seq_us,
                    "fused batch {batch} must beat {batch} sequential matvecs \
                     (L_b={lb}: {fused_us:.1}µs vs {seq_us:.1}µs)"
                );
            }

            println!(
                "{:<6} {:<6} {:>12.1} {:>12.1} {:>8.2}x {:>12} {:>12}",
                lb, batch, seq_us, fused_us, speedup, seq_allocs, fused_allocs
            );
            rows.push(
                JsonObject::new()
                    .int("block_size", lb as i64)
                    .int("batch", batch as i64)
                    .num("seq_us", seq_us)
                    .num("fused_us", fused_us)
                    .num("speedup", speedup)
                    .int("seq_allocs", seq_allocs as i64)
                    .int("fused_steady_allocs", fused_allocs as i64)
                    .int("fused_spectrum_reads", fused_reads as i64)
                    .render(),
            );
        }
    }

    // FFT kernels alone: allocating vs `_into`, per call.
    let rfft = ernn_fft::RealFft::new(if quick { 256 } else { 1024 });
    let signal: Vec<f32> = (0..rfft.size()).map(|i| (i as f32 * 0.7).sin()).collect();
    let mut spec = vec![ernn_fft::Complex32::ZERO; rfft.spectrum_len()];
    let mut back = vec![0.0f32; rfft.size()];
    let mut fft_scratch = ernn_fft::RealFftScratch::new();
    rfft.forward_into(&signal, &mut spec, &mut fft_scratch);
    rfft.inverse_into(&spec, &mut back, &mut fft_scratch);
    let a0 = allocation_count();
    let _ = rfft.forward(&signal);
    let fwd_allocs = allocation_count() - a0;
    let a0 = allocation_count();
    rfft.forward_into(&signal, &mut spec, &mut fft_scratch);
    rfft.inverse_into(&spec, &mut back, &mut fft_scratch);
    let into_allocs = allocation_count() - a0;
    assert_eq!(
        into_allocs, 0,
        "steady-state FFT _into kernels must not allocate"
    );
    println!(
        "\nRealFft({}) per call: forward {} allocs, forward_into+inverse_into {} allocs",
        rfft.size(),
        fwd_allocs,
        into_allocs
    );
    println!("(steady-state fused-matvec and FFT `_into` allocation counts asserted zero;");
    println!(" fused batch ≥ 8 asserted faster than sequential)");

    if let Some(path) = json_path {
        let doc = JsonObject::new()
            .bench_header("kernel_sweep")
            .int("dim", dim as i64)
            .int("fft_forward_allocs", fwd_allocs as i64)
            .int("fft_into_allocs", into_allocs as i64)
            .raw("rows", array(rows))
            .render();
        write_artifact(&path, doc);
    }
}
