//! Minimal JSON emission for bench artifacts.
//!
//! The CI bench-smoke step uploads sweep results (`BENCH_*.json`) as
//! workflow artifacts so the serving-perf trajectory is tracked per PR.
//! The build is offline (no serde), so this module hand-renders the tiny
//! subset of JSON the sweeps need: flat objects of numbers/strings plus
//! arrays of such objects.

use std::fmt::Write as _;

/// Version of the bench-artifact schema, stamped into every `BENCH_*.json`
/// document (see [`JsonObject::bench_header`]). Bump it whenever a field
/// is renamed, removed, or changes meaning, so downstream consumers of
/// the CI artifacts can dispatch on it instead of sniffing fields.
///
/// History: 1 = pre-versioning artifacts (no `schema_version` field);
/// 2 = adds `schema_version`, stage-time attribution, and the admission
/// audit export.
pub const BENCH_SCHEMA_VERSION: i64 = 2;

/// A flat JSON object built field by field, rendered in insertion order.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let rendered = format!("\"{}\"", escape(value));
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: i64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field (`null` for non-finite values, which JSON
    /// cannot represent).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a pre-rendered JSON value (e.g. an [`array()`]).
    pub fn raw(mut self, key: &str, rendered_json: String) -> Self {
        self.fields.push((key.to_string(), rendered_json));
        self
    }

    /// Renders the object as a JSON document.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(key), value);
        }
        out.push('}');
        out
    }
}

/// Renders pre-rendered JSON values as an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl JsonObject {
    /// Starts a bench artifact with the standard header fields: the
    /// bench name plus [`BENCH_SCHEMA_VERSION`]. Every `BENCH_*.json`
    /// emitter opens with this so all artifacts carry the same
    /// `schema_version`.
    pub fn bench_header(self, bench: &str) -> Self {
        self.str("bench", bench)
            .int("schema_version", BENCH_SCHEMA_VERSION)
    }

    /// Adds the standard latency-quantile fields (`<prefix>p50_us` …
    /// `<prefix>p999_us`) from a serving [`LatencySummary`](ernn_serve::LatencySummary) — the one
    /// place the bench artifacts' quantile schema is defined, so every
    /// sweep stays in sync with `ServeMetrics` (adding a quantile there
    /// means adding it here, and every artifact picks it up).
    pub fn latency(self, prefix: &str, s: &ernn_serve::LatencySummary) -> Self {
        self.num(&format!("{prefix}p50_us"), s.p50_us)
            .num(&format!("{prefix}p95_us"), s.p95_us)
            .num(&format!("{prefix}p99_us"), s.p99_us)
            .num(&format!("{prefix}p999_us"), s.p999_us)
    }
}

/// Pulls the value following a `--json` flag out of an argument list.
pub fn json_path_arg(args: &[String]) -> Option<String> {
    flag_value(args, "--json")
}

/// Pulls the value following a `--trace-out` flag out of an argument
/// list — the path the sweeps write their Chrome trace-event JSON to
/// (with a Prometheus text snapshot beside it at `<path>.prom`).
pub fn trace_path_arg(args: &[String]) -> Option<String> {
    flag_value(args, "--trace-out")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Writes a rendered JSON document as a newline-terminated bench
/// artifact and announces the path (the CI artifact-upload step globs
/// these files).
///
/// # Panics
///
/// Panics if the file cannot be written — a bench artifact silently
/// missing from CI would defeat its purpose.
pub fn write_artifact(path: &str, rendered_json: String) {
    std::fs::write(path, rendered_json + "\n").expect("write bench artifact");
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_objects_in_order() {
        let obj = JsonObject::new()
            .str("bench", "serve_sweep")
            .int("devices", 4)
            .num("p99_us", 123.5);
        assert_eq!(
            obj.render(),
            r#"{"bench":"serve_sweep","devices":4,"p99_us":123.5}"#
        );
    }

    #[test]
    fn escapes_strings_and_rejects_non_finite() {
        let obj = JsonObject::new()
            .str("label", "a\"b\\c\nd")
            .num("bad", f64::NAN);
        assert_eq!(obj.render(), r#"{"label":"a\"b\\c\nd","bad":null}"#);
    }

    #[test]
    fn arrays_compose_with_objects() {
        let rows = array([
            JsonObject::new().int("i", 1).render(),
            JsonObject::new().int("i", 2).render(),
        ]);
        let doc = JsonObject::new().raw("rows", rows).render();
        assert_eq!(doc, r#"{"rows":[{"i":1},{"i":2}]}"#);
    }

    #[test]
    fn latency_helper_emits_the_quantile_schema() {
        let s = ernn_serve::LatencySummary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        let doc = JsonObject::new().latency("", &s).render();
        for key in ["p50_us", "p95_us", "p99_us", "p999_us"] {
            assert!(doc.contains(&format!("\"{key}\"")), "{doc}");
        }
        let doc = JsonObject::new().latency("queue_", &s).render();
        assert!(doc.contains("\"queue_p999_us\""));
    }

    #[test]
    fn json_path_arg_finds_the_flag_value() {
        let args: Vec<String> = ["x", "--quick", "--json", "out.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(json_path_arg(&args).as_deref(), Some("out.json"));
        assert_eq!(json_path_arg(&args[..2]), None);
    }

    #[test]
    fn trace_path_arg_finds_the_flag_value() {
        let args: Vec<String> = ["x", "--trace-out", "TRACE_sched.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(trace_path_arg(&args).as_deref(), Some("TRACE_sched.json"));
        assert_eq!(trace_path_arg(&args[..1]), None);
    }

    #[test]
    fn bench_header_stamps_the_schema_version() {
        let doc = JsonObject::new().bench_header("sched_sweep").render();
        assert_eq!(doc, r#"{"bench":"sched_sweep","schema_version":2}"#);
    }
}
