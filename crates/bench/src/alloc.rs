//! Counting global allocator for allocation-budget assertions.
//!
//! The zero-allocation claims of the kernel layer (`ernn-fft` /
//! `ernn-linalg` `_into` kernels, the serving hot path) are enforced, not
//! asserted in prose: a binary or test installs [`CountingAllocator`] as
//! its `#[global_allocator]` and compares [`allocation_count`] snapshots
//! around the code under scrutiny. Allocations, reallocations and
//! zeroed allocations all count; deallocations do not (freeing is not
//! the failure mode being hunted).
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ernn_bench::alloc::CountingAllocator =
//!     ernn_bench::alloc::CountingAllocator;
//!
//! let before = ernn_bench::alloc::allocation_count();
//! hot_path();
//! assert_eq!(ernn_bench::alloc::allocation_count() - before, 0);
//! ```
//!
//! The counter is process-global (all threads); run measurements on a
//! quiet process or a single-test binary for exact deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation.
///
/// Install with `#[global_allocator]` in the binary under measurement.
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter is a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Monotone count of heap allocations since process start (including
/// reallocations). Meaningful only when [`CountingAllocator`] is the
/// process's global allocator; otherwise it stays zero.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
