//! Criterion bench for the Fig. 8 multiplication-cost model and its
//! ablation variants (the bottom-up exploration of Sec. V).

use criterion::{criterion_group, criterion_main, Criterion};
use ernn_fft::cost::{block_size_upper_bound, fig8_curve, CostModel, DEFAULT_MIN_GAIN};
use std::time::Duration;

fn bench_cost_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_mult_model");
    group
        .sample_size(30)
        .measurement_time(Duration::from_millis(600));

    group.bench_function("curve_layer_1024", |b| {
        b.iter(|| std::hint::black_box(fig8_curve(CostModel::paper(), 1024, 256)))
    });
    group.bench_function("upper_bound_layer_1024", |b| {
        b.iter(|| {
            std::hint::black_box(block_size_upper_bound(
                CostModel::paper(),
                1024,
                DEFAULT_MIN_GAIN,
            ))
        })
    });
    // Ablations: each variant as a separate measurement for comparison.
    for (name, model) in [
        (
            "no_decoupling",
            CostModel {
                fft_decoupling: false,
                ..CostModel::paper()
            },
        ),
        (
            "no_symmetry",
            CostModel {
                real_symmetry: false,
                ..CostModel::paper()
            },
        ),
        ("unoptimized", CostModel::unoptimized()),
    ] {
        group.bench_function(format!("curve_512_{name}"), |b| {
            b.iter(|| std::hint::black_box(fig8_curve(model, 512, 256)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
