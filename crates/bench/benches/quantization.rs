//! Criterion benches for the fixed-point quantizer and PWL activations
//! (the Phase-II datapath components).

use criterion::{criterion_group, criterion_main, Criterion};
use ernn_quant::{FixedFormat, PiecewiseLinear, Quantizer};
use std::time::Duration;

fn bench_quant(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantization");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(700));

    let data: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.001).sin()).collect();
    let q = Quantizer::new(FixedFormat::new(12, 10));
    group.bench_function("quantize_4096_12bit", |b| {
        b.iter(|| {
            let mut d = data.clone();
            std::hint::black_box(q.apply(&mut d))
        })
    });

    let pwl = PiecewiseLinear::sigmoid(64);
    group.bench_function("pwl_sigmoid_4096", |b| {
        b.iter(|| {
            let mut d = data.clone();
            pwl.eval_slice(&mut d);
            std::hint::black_box(d)
        })
    });
    group.bench_function("exact_sigmoid_4096", |b| {
        b.iter(|| {
            let d: Vec<f32> = data.iter().map(|&x| 1.0 / (1.0 + (-x).exp())).collect();
            std::hint::black_box(d)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_quant);
criterion_main!(benches);
