//! Criterion benches for one LSTM/GRU timestep, dense versus compressed —
//! the software analogue of the per-frame latency rows of Table III.

use criterion::{criterion_group, criterion_main, Criterion};
use ernn_model::{compress_network, BlockPolicy, CellType, NetworkBuilder};
use rand::SeedableRng;
use std::time::Duration;

fn bench_cells(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let frames = vec![vec![0.1f32; 64]; 8];

    let mut group = c.benchmark_group("cell_step_256");
    group
        .sample_size(12)
        .measurement_time(Duration::from_millis(900));
    for cell in [CellType::Lstm, CellType::Gru] {
        let net = NetworkBuilder::new(cell, 64, 32)
            .layer_dims(&[256])
            .peephole(cell == CellType::Lstm)
            .build(&mut rng);
        group.bench_function(format!("{cell}_dense"), |b| {
            b.iter(|| std::hint::black_box(net.forward_logits(&frames)))
        });
        for block in [8usize, 16] {
            let compressed = compress_network(&net, BlockPolicy::uniform(block));
            group.bench_function(format!("{cell}_circulant{block}"), |b| {
                b.iter(|| std::hint::black_box(compressed.forward_logits(&frames)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);
