//! Criterion benches for the weight-matrix kernels: dense, block-circulant
//! (direct and FFT paths) and pruned-sparse — the computational heart of
//! the ESE / C-LSTM / E-RNN comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ernn_baselines::CsrMatrix;
use ernn_linalg::{BlockCirculantMatrix, Matrix};
use rand::{Rng, SeedableRng};
use std::time::Duration;

const N: usize = 512;

fn bench_matvec_paths(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let dense = Matrix::xavier(N, N, &mut rng);
    let x: Vec<f32> = (0..N).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

    let mut group = c.benchmark_group("matvec_512");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(900));

    group.bench_function("dense", |b| {
        b.iter(|| std::hint::black_box(dense.matvec(&x)))
    });

    // ESE-style sparse at 1/9 density (9x pruning).
    let sparse_dense = Matrix::from_fn(N, N, |_, _| {
        if rng.gen_bool(1.0 / 9.0) {
            rng.gen_range(-1.0..1.0)
        } else {
            0.0
        }
    });
    let csr = CsrMatrix::from_dense(&sparse_dense);
    group.bench_function("sparse_csr_9x", |b| {
        b.iter(|| std::hint::black_box(csr.matvec(&x)))
    });

    for &lb in &[4usize, 8, 16, 32, 64] {
        let bc = BlockCirculantMatrix::project_dense(&dense, lb);
        group.bench_with_input(BenchmarkId::new("circulant_fft", lb), &lb, |b, _| {
            b.iter(|| std::hint::black_box(bc.matvec(&x)))
        });
    }
    // The no-FFT ablation at the paper's block size.
    let bc8 = BlockCirculantMatrix::project_dense(&dense, 8);
    group.bench_function("circulant_direct_8", |b| {
        b.iter(|| std::hint::black_box(bc8.matvec_direct(&x)))
    });
    group.finish();
}

criterion_group!(benches, bench_matvec_paths);
criterion_main!(benches);
