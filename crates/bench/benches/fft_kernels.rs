//! Criterion benches for the FFT kernels underlying every E-RNN matvec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ernn_fft::{Complex32, FftPlan, RealFft};
use std::time::Duration;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_forward");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800));
    for &n in &[8usize, 16, 64, 256, 512] {
        let plan = FftPlan::new(n);
        let input: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.13).sin(), (i as f32 * 0.31).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = input.clone();
                plan.forward(&mut buf);
                std::hint::black_box(buf)
            })
        });
    }
    group.finish();
}

fn bench_real_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("real_fft_vs_complex");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800));
    let n = 512usize;
    let signal: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
    let rfft = RealFft::new(n);
    group.bench_function("real_packed_512", |b| {
        b.iter(|| std::hint::black_box(rfft.forward(&signal)))
    });
    let plan = FftPlan::new(n);
    group.bench_function("complex_zeroimag_512", |b| {
        b.iter(|| std::hint::black_box(plan.forward_real(&signal)))
    });
    group.finish();
}

criterion_group!(benches, bench_fft, bench_real_fft);
criterion_main!(benches);
