//! Criterion benches for the hardware-model machinery: the cycle-level
//! CGPipe simulator and the HLS list scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use ernn_fpga::sim::simulate_pipeline;
use ernn_fpga::{Accelerator, HwCell, RnnSpec, XCKU060};
use ernn_hls::{graph_for_spec, schedule, ResourcePool};
use std::time::Duration;

fn bench_hw_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardware_models");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(800));

    let spec = RnnSpec::lstm_1024(8, 12);
    group.bench_function("accelerator_report", |b| {
        b.iter(|| std::hint::black_box(Accelerator::new(spec, XCKU060).report("bench")))
    });

    let stages = Accelerator::new(spec, XCKU060).stage_cycles();
    group.bench_function("pipeline_sim_10k_frames", |b| {
        b.iter(|| std::hint::black_box(simulate_pipeline(stages, 10_000)))
    });

    let small = RnnSpec {
        cell: HwCell::Gru,
        input_dim: 16,
        hidden_dim: 32,
        block_size: 8,
        io_block_size: 8,
        weight_bits: 12,
        layers: 1,
    };
    let graph = graph_for_spec(&small);
    group.bench_function("hls_schedule_gru32", |b| {
        b.iter(|| std::hint::black_box(schedule(&graph, ResourcePool::uniform(4))))
    });
    group.finish();
}

criterion_group!(benches, bench_hw_models);
criterion_main!(benches);
