//! Criterion bench for the serving runtime: event-loop + device-model
//! overhead under batched and unbatched policies, one and two devices.
//! (Virtual-time throughput is the `serve_sweep` binary's job; this
//! bench tracks the *host-side* cost of simulating a serving run.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ernn_core::pipeline::Pipeline;
use ernn_model::{CellType, ModelSpec};
use ernn_serve::loadgen::{open_loop_poisson, synthetic_utterances};
use ernn_serve::{BatchPolicy, CompiledModel, Request, ServeRuntime};
use rand::SeedableRng;
use std::time::Duration;

fn compiled() -> CompiledModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    Pipeline::paper(ModelSpec::new(CellType::Gru, 16, 8).layer_dims(&[32]))
        .expect("valid spec")
        .init(&mut rng)
        .project()
        .expect("paper block policy")
        .quantize()
        .expect("paper datapath")
        .compile()
        .expect("paper platform")
        .into_model()
}

fn load() -> Vec<Request> {
    let utterances = synthetic_utterances(8, (10, 30), 16, 5);
    open_loop_poisson(&utterances, 64, 300_000.0, 6)
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(600));

    let requests = load();
    for (devices, policy, label) in [
        (1, BatchPolicy::immediate(), "1dev_unbatched"),
        (1, BatchPolicy::new(8, 200.0), "1dev_batch8"),
        (2, BatchPolicy::new(8, 200.0), "2dev_batch8"),
        (4, BatchPolicy::new(16, 400.0), "4dev_batch16"),
    ] {
        let runtime = ServeRuntime::new(compiled(), devices, policy);
        group.bench_with_input(BenchmarkId::from_parameter(label), &requests, |b, reqs| {
            b.iter(|| std::hint::black_box(runtime.run(reqs.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
