//! End-to-end E-RNN flow on the synthetic ASR corpus.
//!
//! Wires the real training pipeline into Phase I's [`TrainOracle`]:
//! candidates are trained with ADMM (plus the constrained retraining of
//! Fig. 6), scored by test-set PER, and the chosen model proceeds to
//! Phase II's quantization scan and hardware report. This is the
//! programmatic equivalent of the paper's full methodology at laptop
//! scale.

use crate::phase1::{run_phase1, CandidateSpec, Phase1Config, Phase1Result, TrainOracle};
use crate::phase2::{run_phase2, Phase2Config, Phase2Result};
use crate::pipeline::{PipelineError, PipelineModel};
use ernn_admm::{AdmmConfig, AdmmReport, AdmmTrainer};
use ernn_asr::{evaluate_per, SynthCorpus, SynthCorpusConfig};
use ernn_fpga::artifact::AdmmProvenance;
use ernn_fpga::exec::{DatapathConfig, QuantizedNetwork};
use ernn_fpga::{Device, HwCell, RnnSpec};
use ernn_model::trainer::{train, TrainOptions};
use ernn_model::{
    compress_network, BlockPolicy, CellType, Matrix, NetworkBuilder, RnnNetwork, Sgd, WeightMatrix,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Configuration of the end-to-end flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Synthetic corpus parameters.
    pub corpus: SynthCorpusConfig,
    /// Hidden dims of the trained (scaled-down) candidates.
    pub layer_dims: Vec<usize>,
    /// Dense pre-training epochs.
    pub pretrain_epochs: usize,
    /// ADMM outer iterations / epochs per iteration / retrain epochs.
    pub admm: AdmmConfig,
    /// Learning rates for pre-training and ADMM/retraining.
    pub pretrain_lr: f32,
    /// ADMM and retraining learning rate.
    pub admm_lr: f32,
    /// Accuracy budget for Phase I (PER percentage points).
    pub accuracy_budget: f64,
    /// Block-size cap for the scaled training proxy (see
    /// [`Phase1Config::max_block`]).
    pub max_block: Option<usize>,
    /// Target device.
    pub device: Device,
    /// Deployed hidden size used for the hardware model (the paper's
    /// 1024), independent of the trained proxy scale.
    pub deploy_hidden: usize,
    /// Seed for every random choice in the flow.
    pub seed: u64,
}

impl FlowConfig {
    /// A fast configuration for tests and the quickstart example
    /// (≈ seconds, not minutes).
    pub fn quick(seed: u64) -> Self {
        FlowConfig {
            corpus: SynthCorpusConfig {
                train_utterances: 40,
                test_utterances: 24,
                train_speakers: 6,
                test_speakers: 3,
                ..SynthCorpusConfig::tiny(seed)
            },
            layer_dims: vec![32],
            pretrain_epochs: 8,
            admm: AdmmConfig {
                rho: 0.05,
                rho_growth: 1.6,
                iterations: 3,
                epochs_per_iter: 1,
                retrain_epochs: 2,
                residual_tol: 1e-4,
            },
            pretrain_lr: 0.08,
            admm_lr: 0.02,
            accuracy_budget: 3.0,
            max_block: Some(16),
            device: ernn_fpga::XCKU060,
            deploy_hidden: 1024,
            seed,
        }
    }

    /// The experiment-scale configuration used by the table harnesses.
    pub fn standard(seed: u64) -> Self {
        FlowConfig {
            corpus: SynthCorpusConfig::standard(seed),
            layer_dims: vec![64, 64],
            pretrain_epochs: 24,
            admm: AdmmConfig {
                rho: 0.05,
                rho_growth: 1.5,
                iterations: 8,
                epochs_per_iter: 2,
                retrain_epochs: 6,
                residual_tol: 1e-4,
            },
            pretrain_lr: 0.08,
            admm_lr: 0.02,
            accuracy_budget: 3.0,
            max_block: Some(32),
            device: ernn_fpga::XCKU060,
            deploy_hidden: 1024,
            seed,
        }
    }
}

/// The [`TrainOracle`] backed by the synthetic corpus and ADMM training.
pub struct AsrOracle {
    corpus: SynthCorpus,
    config: FlowConfig,
    rng: ChaCha8Rng,
    baselines: HashMap<&'static str, (RnnNetwork<Matrix>, f64)>,
    /// Trained compressed models with their ADMM reports, keyed by
    /// candidate identity, so Phase II can reuse the Phase-I winner and
    /// the artifact can carry its compression provenance.
    trained: HashMap<String, (RnnNetwork<WeightMatrix>, AdmmReport)>,
}

fn cell_key(cell: CellType) -> &'static str {
    match cell {
        CellType::Lstm => "lstm",
        CellType::Gru => "gru",
    }
}

fn spec_key(spec: &CandidateSpec) -> String {
    format!(
        "{}-{:?}-b{}-io{}",
        cell_key(spec.cell),
        spec.layer_dims,
        spec.block,
        spec.io_block
    )
}

impl AsrOracle {
    /// Generates the corpus and prepares the oracle.
    pub fn new(config: FlowConfig) -> Self {
        let corpus = SynthCorpus::generate(&config.corpus);
        let rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(1));
        AsrOracle {
            corpus,
            config,
            rng,
            baselines: HashMap::new(),
            trained: HashMap::new(),
        }
    }

    /// The corpus backing the oracle.
    pub fn corpus(&self) -> &SynthCorpus {
        &self.corpus
    }

    fn pretrained(&mut self, cell: CellType) -> (RnnNetwork<Matrix>, f64) {
        if let Some(hit) = self.baselines.get(cell_key(cell)) {
            return hit.clone();
        }
        let mut net = NetworkBuilder::new(cell, self.corpus.feature_dim, self.corpus.num_classes())
            .layer_dims(&self.config.layer_dims)
            .peephole(true)
            .build(&mut self.rng);
        let data = self.corpus.train_sequences();
        let mut opt = Sgd::new(self.config.pretrain_lr)
            .momentum(0.9)
            .clip_norm(2.0);
        train(
            &mut net,
            &data,
            TrainOptions {
                epochs: self.config.pretrain_epochs,
                lr_decay: 0.92,
                shuffle: true,
            },
            &mut opt,
            &mut self.rng,
        );
        let per = evaluate_per(&net, &self.corpus.test);
        self.baselines.insert(cell_key(cell), (net.clone(), per));
        (net, per)
    }

    /// The trained compressed network for a candidate, if Phase I
    /// evaluated it.
    pub fn trained_network(&self, spec: &CandidateSpec) -> Option<&RnnNetwork<WeightMatrix>> {
        self.trained.get(&spec_key(spec)).map(|(net, _)| net)
    }

    /// The ADMM report of a candidate's compression training, if Phase I
    /// evaluated it.
    pub fn admm_report(&self, spec: &CandidateSpec) -> Option<&AdmmReport> {
        self.trained.get(&spec_key(spec)).map(|(_, report)| report)
    }
}

impl TrainOracle for AsrOracle {
    fn baseline_per(&mut self, cell: CellType) -> f64 {
        self.pretrained(cell).1
    }

    fn evaluate(&mut self, spec: &CandidateSpec) -> f64 {
        let (mut net, _) = self.pretrained(spec.cell);
        let policy = BlockPolicy {
            recurrent: spec.block,
            input: spec.io_block,
            output: spec.io_block,
        };
        let mut trainer = AdmmTrainer::new(&net, policy, self.config.admm);
        let mut opt = Sgd::new(self.config.admm_lr).momentum(0.9).clip_norm(2.0);
        let mut retrain_opt = Sgd::new(self.config.admm_lr * 0.75)
            .momentum(0.9)
            .clip_norm(2.0);
        let data = self.corpus.train_sequences();
        let report = trainer.fit(&mut net, &data, &mut opt, &mut retrain_opt, &mut self.rng);
        let compressed = compress_network(&net, policy);
        let per = evaluate_per(&compressed, &self.corpus.test);
        self.trained.insert(spec_key(spec), (compressed, report));
        per
    }
}

/// Output of the full flow.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Phase-I result (model choice + trials).
    pub phase1: Phase1Result,
    /// Phase-II result (datapath + hardware report).
    pub phase2: Phase2Result,
}

impl FlowReport {
    /// A human-readable summary.
    pub fn render(&self) -> String {
        let p1 = &self.phase1;
        let p2 = &self.phase2;
        let mut out = String::new();
        out.push_str("=== E-RNN flow report ===\n");
        out.push_str(&format!(
            "Phase I : {} block {} (io {}), PER {:.2}% (baseline {:.2}%, Δ {:+.2}), {} trials\n",
            match p1.chosen.cell {
                CellType::Lstm => "LSTM",
                CellType::Gru => "GRU",
            },
            p1.chosen.block,
            p1.chosen.io_block,
            p1.chosen_per,
            p1.baseline_per,
            p1.degradation(),
            p1.trial_count(),
        ));
        out.push_str(&format!(
            "Phase II: {} bits, {} PWL segments, latency {:.1} µs, {:.0} FPS, {:.1} W, {:.0} FPS/W\n",
            p2.datapath.weight_bits,
            p2.datapath.pwl_segments,
            p2.report.latency_us,
            p2.report.fps,
            p2.power_w,
            p2.fps_per_w,
        ));
        out
    }
}

/// Runs the complete E-RNN methodology — Phase I over the ASR oracle,
/// Phase II with a real quantized-execution oracle on the winning model —
/// and then carries the result through the lifecycle pipeline
/// ([`crate::pipeline`]) into a deployable [`PipelineModel`]: the
/// Phase-I winner's trained weights, quantized for the Phase-II
/// datapath, compiled for the target device, with the full trial log
/// and ADMM residual as artifact provenance. The report is bit-identical
/// to what [`run_flow`] produced.
pub fn run_flow_to_artifact(
    config: FlowConfig,
) -> Result<(FlowReport, PipelineModel), PipelineError> {
    let device = config.device;
    let (report, winner, admm, input_dim, classes) = flow_phases(config);
    let choice = report.phase2.into_pipeline();
    let stage = report
        .phase1
        .into_pipeline(input_dim, classes)?
        // The oracle pre-trains with peepholes on (ignored for GRU).
        .peephole(report.phase1.chosen.cell == CellType::Lstm)
        .device(device)
        .source("ernn_core::flow::run_flow_to_artifact");
    let out = stage
        .with_compressed(winner)?
        .admm_provenance(admm)
        .quantize_chosen(choice)?
        .compile()?;
    Ok((report, out))
}

/// Runs Phase I + Phase II only, returning the report and the winning
/// trained model (the shared core of [`run_flow`] and
/// [`run_flow_to_artifact`]).
fn flow_phases(
    config: FlowConfig,
) -> (
    FlowReport,
    RnnNetwork<WeightMatrix>,
    AdmmProvenance,
    usize,
    usize,
) {
    let device = config.device;
    let deploy_hidden = config.deploy_hidden;
    let accuracy_budget = config.accuracy_budget;
    let layer_dims = config.layer_dims.clone();
    let max_block = config.max_block;
    let mut oracle = AsrOracle::new(config);

    let phase1 = run_phase1(
        &mut oracle,
        &Phase1Config {
            device,
            deploy_hidden,
            layer_dims,
            accuracy_budget,
            max_block,
        },
    );

    // Phase II: quantization oracle = fixed-point execution of the winner.
    let winner = oracle
        .trained_network(&phase1.chosen)
        .cloned()
        .expect("phase 1 trained its winner");
    let admm = {
        let report = oracle
            .admm_report(&phase1.chosen)
            .expect("phase 1 trained its winner");
        AdmmProvenance {
            final_residual: report.final_residual(),
            iterations: report.iterations.len(),
            converged: report.converged,
        }
    };
    let input_dim = oracle.corpus().feature_dim;
    let classes = oracle.corpus().num_classes();
    let test = oracle.corpus().test.clone();
    let quant_oracle = |bits: u8| -> f64 {
        let q = QuantizedNetwork::new(
            &winner,
            &DatapathConfig {
                weight_bits: bits,
                activation_bits: bits,
                pwl_segments: 64,
            },
        );
        let refs: Vec<Vec<usize>> = test.iter().map(|u| u.phone_seq.clone()).collect();
        let hyps: Vec<Vec<usize>> = test
            .iter()
            .map(|u| {
                let logits = q.forward_logits(&u.features);
                ernn_asr::decode_frames(&logits, ernn_asr::PhoneSet::SILENCE, 2)
            })
            .collect();
        ernn_asr::phone_error_rate(&refs, &hyps) * 100.0
    };

    let hw_spec = RnnSpec {
        cell: match phase1.chosen.cell {
            CellType::Lstm => HwCell::Lstm {
                projection: Some(deploy_hidden / 2),
            },
            CellType::Gru => HwCell::Gru,
        },
        input_dim: 153,
        hidden_dim: deploy_hidden,
        block_size: phase1.chosen.block,
        io_block_size: phase1.chosen.io_block,
        weight_bits: 12,
        layers: 2,
    };
    let phase2 = run_phase2(
        hw_spec,
        phase1.chosen_per,
        quant_oracle,
        &Phase2Config {
            device,
            ..Phase2Config::default()
        },
    );

    (
        FlowReport { phase1, phase2 },
        winner,
        admm,
        input_dim,
        classes,
    )
}

/// Runs the complete E-RNN methodology and returns the report alone.
///
/// Thin compatibility wrapper over the same Phase I/II core that
/// [`run_flow_to_artifact`] uses — results are bit-identical — but it
/// discards the trained winner instead of producing a deployable
/// artifact.
#[deprecated(
    since = "0.1.0",
    note = "use run_flow_to_artifact (or the ernn::pipeline builder) so the flow \
            produces a deployable ModelArtifact instead of a report-only dead end"
)]
pub fn run_flow(config: FlowConfig) -> FlowReport {
    flow_phases(config).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flow_runs_end_to_end() {
        let (report, out) = run_flow_to_artifact(FlowConfig::quick(11)).expect("flow pipelines");
        // Phase I stayed within the paper's trial bound.
        assert!(
            report.phase1.trial_count() <= 6,
            "{:?}",
            report.phase1.trials
        );
        // The chosen model fits the device.
        let spec = RnnSpec {
            block_size: report.phase1.chosen.block,
            ..RnnSpec::lstm_1024(report.phase1.chosen.block, 12)
        };
        assert!(spec.fits_in_bram(&ernn_fpga::XCKU060));
        // Phase II produced a usable datapath and positive performance.
        assert!(report.phase2.datapath.weight_bits >= 8);
        assert!(report.phase2.report.fps > 0.0);
        assert!(report.phase2.fps_per_w > 0.0);
        // The render mentions both phases.
        let text = report.render();
        assert!(text.contains("Phase I"));
        assert!(text.contains("Phase II"));

        // The flow produced a deployable artifact carrying its own
        // provenance: the Phase-I trial log, the ADMM residual and the
        // Phase-II quantization scan.
        let artifact = out.artifact();
        let p1 = artifact.provenance.phase1.as_ref().expect("phase 1 ran");
        assert_eq!(p1.trials.len(), report.phase1.trial_count());
        assert!(artifact.provenance.admm.is_some());
        assert_eq!(artifact.provenance.quant_trials, report.phase2.quant_trials);
        assert_eq!(artifact.datapath, report.phase2.datapath);
        // And it round-trips through bytes into a working model.
        let bytes = out.save_bytes();
        let loaded = ernn_fpga::artifact::ModelArtifact::load_bytes(&bytes).expect("decodes");
        let reloaded = ernn_serve::CompiledModel::from_artifact(&loaded);
        let frames = vec![vec![0.1f32; artifact.spec.input_dim]; 3];
        assert_eq!(reloaded.infer(&frames), out.model().infer(&frames));
    }

    #[test]
    #[allow(deprecated)]
    fn run_flow_wrapper_matches_the_artifact_flow() {
        // The deprecated wrapper must stay bit-identical to the new
        // entry point's report.
        let report = run_flow(FlowConfig::quick(5));
        let (report2, _) = run_flow_to_artifact(FlowConfig::quick(5)).expect("flow pipelines");
        assert_eq!(report.phase1.chosen, report2.phase1.chosen);
        assert_eq!(report.phase1.trials, report2.phase1.trials);
        assert_eq!(report.phase2.datapath, report2.phase2.datapath);
        assert_eq!(report.phase2.quant_trials, report2.phase2.quant_trials);
    }
}
