//! The two design explorations that bound Phase I's search space.
//!
//! * **Bottom-up** (paper Sec. V, Fig. 8): the multiplication count of a
//!   layer as a function of block size converges at 32–64; larger blocks
//!   buy (almost) nothing, so Phase I never trains beyond that bound.
//! * **Storage floor** (Fig. 2 step 1): the smallest block size whose
//!   compressed model fits in on-chip BRAM is the search's lower bound.

use ernn_fft::cost::{fig8_curve, CostModel, MultCurvePoint, DEFAULT_MIN_GAIN};
use ernn_fpga::{Device, RnnSpec};

/// The Fig. 8 curve for one layer size.
#[derive(Debug, Clone)]
pub struct Fig8Curve {
    layer_size: usize,
    points: Vec<MultCurvePoint>,
}

impl Fig8Curve {
    /// Computes the curve with the paper's full optimization set
    /// (FFT/IFFT decoupling, real symmetry, trivial twiddles).
    pub fn paper(layer_size: usize) -> Self {
        Fig8Curve {
            layer_size,
            points: fig8_curve(CostModel::paper(), layer_size, 256.min(layer_size)),
        }
    }

    /// Computes the curve with a custom cost model (for the ablations).
    pub fn with_model(model: CostModel, layer_size: usize) -> Self {
        Fig8Curve {
            layer_size,
            points: fig8_curve(model, layer_size, 256.min(layer_size)),
        }
    }

    /// The layer size this curve was computed for.
    pub fn layer_size(&self) -> usize {
        self.layer_size
    }

    /// The `(block size, normalized multiplications)` points.
    pub fn points(&self) -> &[MultCurvePoint] {
        &self.points
    }

    /// Renders the curve as an ASCII table (the Fig. 8 regeneration).
    pub fn render(&self) -> String {
        let mut out = format!("Layer size {}\n  Lb    norm. mults\n", self.layer_size);
        for p in &self.points {
            out.push_str(&format!(
                "  {:<5} {:.4}\n",
                p.block_size, p.normalized_mults
            ));
        }
        out
    }
}

/// Block-size search bounds for Phase I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizeBounds {
    /// Smallest block size whose model fits in BRAM (Fig. 2 step 1).
    pub lower: usize,
    /// Largest block size worth training (Fig. 8 convergence, Sec. V-B).
    pub upper: usize,
    /// Number of power-of-two candidates in `[lower, upper]` — the bound
    /// on step-2 training trials.
    pub candidates: usize,
}

/// Computes the Phase-I block-size bounds for an LSTM of the given hidden
/// size deployed on `device` (the paper's step 1 starts "from the LSTM RNN
/// baseline model due to its high reliability").
pub fn block_size_bounds(deploy_hidden: usize, device: &Device) -> BlockSizeBounds {
    let upper =
        ernn_fft::cost::block_size_upper_bound(CostModel::paper(), deploy_hidden, DEFAULT_MIN_GAIN);
    let mut lower = 1usize;
    while lower < upper {
        let spec = RnnSpec {
            block_size: lower,
            io_block_size: lower,
            ..RnnSpec::lstm_1024(lower.max(1), 12)
        };
        let spec = RnnSpec {
            hidden_dim: deploy_hidden,
            ..spec
        };
        if spec.fits_in_bram(device) {
            break;
        }
        lower = if lower == 1 { 2 } else { lower * 2 };
    }
    let candidates = {
        let mut n = 0usize;
        let mut b = lower.max(1);
        while b <= upper {
            n += 1;
            b *= 2;
        }
        n
    };
    BlockSizeBounds {
        lower,
        upper,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ernn_fpga::{ADM_PCIE_7V3, XCKU060};

    #[test]
    fn bounds_match_paper_narrative() {
        // Paper Sec. VI-B: "For the ASR application and LSTM/GRU model, a
        // block size of 4 or 8 will fit the whole RNN model into BRAM" and
        // the upper bound is 32–64, giving "at most 3 or 4 training trials
        // for block size optimization".
        for dev in [ADM_PCIE_7V3, XCKU060] {
            let b = block_size_bounds(1024, &dev);
            assert!(
                (2..=8).contains(&b.lower),
                "{}: lower {}",
                dev.name,
                b.lower
            );
            assert!(
                (32..=64).contains(&b.upper),
                "{}: upper {}",
                dev.name,
                b.upper
            );
            assert!(
                b.candidates <= 6,
                "{}: {} candidates",
                dev.name,
                b.candidates
            );
        }
    }

    #[test]
    fn fig8_curve_is_monotone_until_convergence() {
        let curve = Fig8Curve::paper(512);
        let pts = curve.points();
        for pair in pts.windows(2) {
            assert!(
                pair[1].normalized_mults <= pair[0].normalized_mults + 1e-9,
                "optimized curve should be non-increasing over this range"
            );
        }
    }

    #[test]
    fn render_contains_all_block_sizes() {
        let curve = Fig8Curve::paper(512);
        let s = curve.render();
        for p in curve.points() {
            assert!(s.contains(&format!("{}", p.block_size)));
        }
    }

    #[test]
    fn small_devices_raise_the_floor() {
        // A hypothetical tiny device forces larger blocks.
        let tiny = Device {
            name: "tiny",
            dsp: 512,
            bram_blocks: 120, // ~0.5 MB
            lut: 100_000,
            ff: 200_000,
            process_nm: 28,
        };
        let b = block_size_bounds(1024, &tiny);
        let b_large = block_size_bounds(1024, &ADM_PCIE_7V3);
        assert!(b.lower > b_large.lower);
    }
}
