//! The E-RNN design-optimization framework (the paper's primary
//! contribution).
//!
//! E-RNN splits the co-design problem into two phases:
//!
//! * **Phase I** ([`phase1`], paper Fig. 2 / Sec. VI): derive the RNN model
//!   — cell type, layer size, block size(s) — under an accuracy budget,
//!   with the number of training trials bounded by two observations:
//!   block size dominates layer size as the compression knob (top-down,
//!   Sec. IV) and the computation-reduction curve converges at block size
//!   32–64 (bottom-up, Sec. V / Fig. 8).
//! * **Phase II** ([`phase2`], Sec. VII): given the model, derive the
//!   hardware — PE allocation, quantization word length, activation
//!   implementation — and report performance/energy.
//!
//! [`flow`] wires both phases to the synthetic ASR corpus for end-to-end
//! runs; [`explore`] hosts the two design-exploration analyses that bound
//! the search; [`pipeline`] is the typed model-lifecycle builder that
//! carries a Phase I/II outcome (or any spec) through train → compress →
//! quantize → compile into a deployable, byte-serializable
//! [`ModelArtifact`](ernn_fpga::artifact::ModelArtifact).
//!
//! ```
//! use ernn_core::explore::{block_size_bounds, Fig8Curve};
//! use ernn_fpga::XCKU060;
//!
//! // The bottom-up analysis (paper Fig. 8) caps the block size at 32–64
//! // and the BRAM sanity check floors it (Fig. 2 step 1).
//! let bounds = block_size_bounds(1024, &XCKU060);
//! assert!(bounds.lower <= bounds.upper);
//! let curve = Fig8Curve::paper(512);
//! assert!(curve.points().len() > 4);
//! ```

pub mod explore;
pub mod flow;
pub mod phase1;
pub mod phase2;
pub mod pipeline;

pub use explore::{block_size_bounds, BlockSizeBounds, Fig8Curve};
pub use phase1::{run_phase1, CandidateSpec, Phase1Config, Phase1Result, TrainOracle, Trial};
pub use phase2::{run_phase2, Phase2Config, Phase2Result};
pub use pipeline::{Pipeline, PipelineError, PipelineModel, PipelineSettings};
