//! Phase II: hardware-oriented optimization (paper Sec. VII).
//!
//! Given the Phase-I model, Phase II fixes the datapath: fixed-point word
//! length (smallest width whose accuracy loss stays under the budget —
//! "12-bit weight quantization is in general a safe design"), the
//! piecewise-linear activation resolution (error below the datapath
//! quantization step so the PWL units are never the precision
//! bottleneck), and the PE/CU structure from the resource model.

use crate::pipeline::DatapathChoice;
use ernn_fpga::exec::DatapathConfig;
use ernn_fpga::power::{board_power, energy_efficiency};
use ernn_fpga::{AccelReport, Accelerator, Device, RnnSpec};
use ernn_quant::{FixedFormat, PiecewiseLinear};

/// Phase-II configuration.
#[derive(Debug, Clone)]
pub struct Phase2Config {
    /// Target device.
    pub device: Device,
    /// Candidate fixed-point word lengths, scanned ascending.
    pub bit_options: Vec<u8>,
    /// Candidate PWL segment counts, scanned ascending.
    pub segment_options: Vec<usize>,
    /// Maximum acceptable PER degradation (percentage points) from
    /// quantization (the paper uses <0.1%).
    pub max_quant_degradation: f64,
}

impl Default for Phase2Config {
    fn default() -> Self {
        Phase2Config {
            device: ernn_fpga::XCKU060,
            bit_options: vec![8, 10, 12, 16],
            segment_options: vec![16, 32, 64, 128],
            max_quant_degradation: 0.1,
        }
    }
}

/// Phase-II output.
#[derive(Debug, Clone)]
pub struct Phase2Result {
    /// The chosen datapath (bits + PWL resolution).
    pub datapath: DatapathConfig,
    /// The accelerator performance/resource report.
    pub report: AccelReport,
    /// Estimated board power (W).
    pub power_w: f64,
    /// Energy efficiency (FPS/W) — the paper's headline metric.
    pub fps_per_w: f64,
    /// Quantization PERs measured per candidate bit width.
    pub quant_trials: Vec<(u8, f64)>,
}

impl Phase2Result {
    /// Carries the Phase-II decision into the lifecycle pipeline: the
    /// chosen datapath plus the quantization scan as provenance, ready
    /// for [`CompressedStage::quantize_chosen`](crate::pipeline::CompressedStage::quantize_chosen).
    pub fn into_pipeline(&self) -> DatapathChoice {
        DatapathChoice {
            datapath: self.datapath.clone(),
            quant_trials: self.quant_trials.clone(),
        }
    }
}

/// Runs Phase II.
///
/// `quant_oracle(bits)` returns the test PER (%) of the Phase-I model
/// executed with `bits`-wide fixed-point weights/activations (see
/// `ernn_fpga::exec::QuantizedNetwork`); `float_per` is the
/// floating-point reference.
///
/// # Panics
///
/// Panics if `config.bit_options` is empty.
pub fn run_phase2(
    hw_spec: RnnSpec,
    float_per: f64,
    mut quant_oracle: impl FnMut(u8) -> f64,
    config: &Phase2Config,
) -> Phase2Result {
    assert!(!config.bit_options.is_empty(), "need bit-width candidates");

    // Word length: smallest width within the quantization budget.
    let mut quant_trials = Vec::new();
    let mut chosen_bits = *config.bit_options.last().expect("non-empty");
    for &bits in &config.bit_options {
        let per = quant_oracle(bits);
        quant_trials.push((bits, per));
        if per - float_per <= config.max_quant_degradation {
            chosen_bits = bits;
            break;
        }
    }

    // PWL resolution: smallest segment count whose max error is below the
    // datapath quantization step (so activations never dominate error).
    let act_step = FixedFormat::for_range(chosen_bits, 8.0).step();
    let chosen_segments = config
        .segment_options
        .iter()
        .copied()
        .find(|&segs| {
            PiecewiseLinear::sigmoid(segs).max_error(2048) <= act_step
                && PiecewiseLinear::tanh(segs).max_error(2048) <= 2.0 * act_step
        })
        .unwrap_or(*config.segment_options.last().unwrap_or(&64));

    let spec = RnnSpec {
        weight_bits: chosen_bits,
        ..hw_spec
    };
    let accel = Accelerator::new(spec, config.device);
    let report = accel.report(format!("E-RNN FFT{} ({}b)", spec.block_size, chosen_bits));
    let power_w = board_power(&report, &config.device, false);
    let fps_per_w = energy_efficiency(report.fps, power_w);

    Phase2Result {
        datapath: DatapathConfig {
            weight_bits: chosen_bits,
            activation_bits: chosen_bits,
            pwl_segments: chosen_segments,
        },
        report,
        power_w,
        fps_per_w,
        quant_trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ernn_fpga::XCKU060;

    /// A quantization oracle with a knee at 12 bits (the paper's
    /// observation: 12-bit is safe, below it accuracy collapses).
    fn knee_oracle(bits: u8) -> f64 {
        match bits {
            0..=9 => 25.0,
            10..=11 => 20.4,
            _ => 20.02,
        }
    }

    #[test]
    fn picks_twelve_bits_at_the_knee() {
        let result = run_phase2(
            RnnSpec::lstm_1024(8, 12),
            20.0,
            knee_oracle,
            &Phase2Config::default(),
        );
        assert_eq!(result.datapath.weight_bits, 12);
        assert!(result.quant_trials.len() >= 3);
    }

    #[test]
    fn loose_budget_allows_fewer_bits() {
        let cfg = Phase2Config {
            max_quant_degradation: 10.0,
            ..Phase2Config::default()
        };
        let result = run_phase2(RnnSpec::lstm_1024(8, 12), 20.0, knee_oracle, &cfg);
        assert_eq!(result.datapath.weight_bits, 8);
    }

    #[test]
    fn pwl_error_is_below_quant_step() {
        let result = run_phase2(
            RnnSpec::gru_1024(8, 12),
            20.0,
            knee_oracle,
            &Phase2Config::default(),
        );
        let step = FixedFormat::for_range(result.datapath.weight_bits, 8.0).step();
        let err = PiecewiseLinear::sigmoid(result.datapath.pwl_segments).max_error(2048);
        assert!(err <= step);
    }

    #[test]
    fn report_carries_performance_and_power() {
        let result = run_phase2(
            RnnSpec::gru_1024(16, 12),
            20.0,
            knee_oracle,
            &Phase2Config {
                device: XCKU060,
                ..Phase2Config::default()
            },
        );
        assert!(result.report.latency_us > 0.0);
        assert!(result.report.fps > 0.0);
        assert!(result.power_w > 0.0);
        assert!((result.fps_per_w - result.report.fps / result.power_w).abs() < 1e-6);
    }

    #[test]
    fn efficiency_beats_ese_by_large_factor() {
        // The paper's headline: up to 37.4× energy efficiency vs ESE
        // (428 FPS/W). Our model should put E-RNN GRU FFT16 well above
        // 10× ESE.
        let result = run_phase2(
            RnnSpec::gru_1024(16, 12),
            20.0,
            knee_oracle,
            &Phase2Config::default(),
        );
        let ese_eff = 428.0;
        assert!(
            result.fps_per_w > 10.0 * ese_eff,
            "E-RNN {} FPS/W vs ESE {}",
            result.fps_per_w,
            ese_eff
        );
    }
}
