//! Phase I: deriving the RNN model (paper Fig. 2, Sec. VI-B).
//!
//! Three steps under an accuracy budget:
//!
//! 1. **Sanity check** — the BRAM floor gives the block-size lower bound.
//! 2. **Block size optimization** — scan power-of-two block sizes from the
//!    bottom-up upper bound downwards; the largest block size meeting the
//!    accuracy budget wins. The bounds keep this to ≤ 3–4 trials.
//! 3. **Fine tuning** — one trial switching LSTM → GRU (kept if accuracy
//!    holds: "it is desirable to shift from LSTM to GRU because of less
//!    computation and storage"), and one trial doubling the block size of
//!    the input/output matrices only.
//!
//! Training is abstracted behind [`TrainOracle`], so the algorithm can be
//! unit-tested against a closed-form oracle and run for real against the
//! ADMM/ASR pipeline in [`crate::flow`].

use crate::explore::{block_size_bounds, BlockSizeBounds};
use crate::pipeline::{Pipeline, PipelineError, SpecStage};
use ernn_fpga::artifact::{Phase1Provenance, TrialRecord};
use ernn_fpga::Device;
use ernn_model::{BlockPolicy, CellType, ModelSpec};

/// A candidate model configuration Phase I may train.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSpec {
    /// Cell type.
    pub cell: CellType,
    /// Hidden dimension per stacked layer.
    pub layer_dims: Vec<usize>,
    /// Block size for recurrent matrices.
    pub block: usize,
    /// Block size for input/output matrices (≥ `block`).
    pub io_block: usize,
}

impl CandidateSpec {
    fn with_block(&self, block: usize) -> Self {
        CandidateSpec {
            block,
            io_block: block,
            ..self.clone()
        }
    }
}

/// Supplies (expensive) accuracy evaluations for candidates.
///
/// Implementations train the candidate to convergence — with ADMM for
/// compressed candidates — and return the test-set PER in percent.
pub trait TrainOracle {
    /// PER (%) of the uncompressed baseline for a cell type.
    fn baseline_per(&mut self, cell: CellType) -> f64;
    /// PER (%) of a trained compressed candidate.
    fn evaluate(&mut self, spec: &CandidateSpec) -> f64;
}

/// Phase-I configuration.
#[derive(Debug, Clone)]
pub struct Phase1Config {
    /// Target device (drives the BRAM floor).
    pub device: Device,
    /// Hidden size of the *deployed* model (the paper deploys 1024; the
    /// oracle may train a scaled-down proxy).
    pub deploy_hidden: usize,
    /// Stacked layer dims for the trained candidates.
    pub layer_dims: Vec<usize>,
    /// Maximum acceptable PER degradation (percentage points) versus the
    /// LSTM baseline.
    pub accuracy_budget: f64,
    /// Optional cap on the block-size scan below the bottom-up bound —
    /// used when the training proxy is much smaller than the deployed
    /// model, where huge blocks are structurally meaningless.
    pub max_block: Option<usize>,
}

/// One recorded training trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// What was trained.
    pub spec: CandidateSpec,
    /// The measured PER (%).
    pub per: f64,
    /// Whether the candidate met the accuracy budget.
    pub accepted: bool,
}

/// Phase-I output.
#[derive(Debug, Clone)]
pub struct Phase1Result {
    /// The chosen model.
    pub chosen: CandidateSpec,
    /// Its measured PER (%).
    pub chosen_per: f64,
    /// The LSTM baseline PER (%).
    pub baseline_per: f64,
    /// All training trials in order (the paper bounds these to ~5).
    pub trials: Vec<Trial>,
    /// The block-size search bounds used.
    pub bounds: BlockSizeBounds,
}

impl Phase1Result {
    /// Number of compressed-candidate training trials.
    pub fn trial_count(&self) -> usize {
        self.trials.len()
    }

    /// PER degradation of the chosen model versus the baseline.
    pub fn degradation(&self) -> f64 {
        self.chosen_per - self.baseline_per
    }

    /// The trial log as artifact provenance.
    pub fn provenance(&self) -> Phase1Provenance {
        Phase1Provenance {
            baseline_per: self.baseline_per,
            chosen_per: self.chosen_per,
            trials: self
                .trials
                .iter()
                .map(|t| TrialRecord {
                    cell: t.spec.cell,
                    block: t.spec.block,
                    io_block: t.spec.io_block,
                    per: t.per,
                    accepted: t.accepted,
                })
                .collect(),
        }
    }

    /// Carries the Phase-I decision into the lifecycle pipeline: a
    /// [`SpecStage`] whose model spec is the chosen candidate, whose
    /// block policy is the chosen (recurrent, io) block sizes, and whose
    /// provenance records the full trial log — so the design-optimization
    /// flow *produces* deployable artifacts instead of dead-ending in a
    /// report. `input_dim`/`classes` come from the corpus the oracle
    /// trained on (the candidate spec does not carry them).
    pub fn into_pipeline(
        &self,
        input_dim: usize,
        classes: usize,
    ) -> Result<SpecStage, PipelineError> {
        let spec = ModelSpec::new(self.chosen.cell, input_dim, classes)
            .layer_dims(&self.chosen.layer_dims);
        Ok(Pipeline::spec(spec)?
            .block_policy(BlockPolicy::with_io_block(
                self.chosen.block,
                self.chosen.io_block,
            ))
            .phase1_provenance(self.provenance()))
    }
}

/// Runs the Phase-I algorithm.
///
/// # Panics
///
/// Panics if `config.layer_dims` is empty.
pub fn run_phase1(oracle: &mut dyn TrainOracle, config: &Phase1Config) -> Phase1Result {
    assert!(!config.layer_dims.is_empty(), "need at least one layer");
    let bounds = block_size_bounds(config.deploy_hidden, &config.device);
    let baseline = oracle.baseline_per(CellType::Lstm);
    let budget = config.accuracy_budget;
    let mut trials = Vec::new();

    let base_candidate = CandidateSpec {
        cell: CellType::Lstm,
        layer_dims: config.layer_dims.clone(),
        block: bounds.lower,
        io_block: bounds.lower,
    };

    // Step 2: largest feasible block size, scanning downward from the
    // upper bound so the first acceptance wins.
    let mut chosen: Option<(CandidateSpec, f64)> = None;
    let effective_upper = config
        .max_block
        .map_or(bounds.upper, |m| m.min(bounds.upper))
        .max(bounds.lower);
    let mut block = effective_upper.max(bounds.lower);
    while block >= bounds.lower.max(2) {
        let spec = base_candidate.with_block(block);
        let per = oracle.evaluate(&spec);
        let accepted = per - baseline <= budget;
        trials.push(Trial {
            spec: spec.clone(),
            per,
            accepted,
        });
        if accepted {
            chosen = Some((spec, per));
            break;
        }
        if block == bounds.lower.max(2) {
            break;
        }
        block /= 2;
    }
    // Fall back to the BRAM floor if nothing met the budget (the model
    // must fit on chip regardless; the budget is then reported as missed).
    let (mut chosen_spec, mut chosen_per) = chosen.unwrap_or_else(|| {
        let spec = base_candidate.with_block(bounds.lower.max(2));
        let per = trials
            .iter()
            .find(|t| t.spec == spec)
            .map(|t| t.per)
            .unwrap_or_else(|| oracle.evaluate(&spec));
        (spec, per)
    });

    // Step 3a: try the GRU switch at the chosen block size.
    {
        let spec = CandidateSpec {
            cell: CellType::Gru,
            ..chosen_spec.clone()
        };
        let per = oracle.evaluate(&spec);
        let accepted = per - baseline <= budget;
        trials.push(Trial {
            spec: spec.clone(),
            per,
            accepted,
        });
        if accepted {
            chosen_spec = spec;
            chosen_per = per;
        }
    }

    // Step 3b: try a 2× block size for the input/output matrices only
    // (limited to one extra size — "we limit the maximum type of block
    // sizes to be 2").
    if chosen_spec.block * 2 <= bounds.upper * 2 {
        let spec = CandidateSpec {
            io_block: chosen_spec.block * 2,
            ..chosen_spec.clone()
        };
        let per = oracle.evaluate(&spec);
        let accepted = per - baseline <= budget;
        trials.push(Trial {
            spec: spec.clone(),
            per,
            accepted,
        });
        if accepted {
            chosen_spec = spec;
            chosen_per = per;
        }
    }

    Phase1Result {
        chosen: chosen_spec,
        chosen_per,
        baseline_per: baseline,
        trials,
        bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ernn_fpga::XCKU060;

    /// A closed-form oracle: PER grows smoothly with effective block size;
    /// GRU matches LSTM (the paper's observation).
    struct SyntheticOracle {
        baseline: f64,
        /// Degradation added per log2(block).
        per_log_block: f64,
        /// Extra degradation for GRU (0 = parity with LSTM).
        gru_penalty: f64,
        evaluations: usize,
    }

    impl TrainOracle for SyntheticOracle {
        fn baseline_per(&mut self, _cell: CellType) -> f64 {
            self.baseline
        }
        fn evaluate(&mut self, spec: &CandidateSpec) -> f64 {
            self.evaluations += 1;
            let eff = (spec.block as f64).log2() * 0.75 + (spec.io_block as f64).log2() * 0.25;
            let gru = if spec.cell == CellType::Gru {
                self.gru_penalty
            } else {
                0.0
            };
            self.baseline + eff * self.per_log_block + gru
        }
    }

    fn config(budget: f64) -> Phase1Config {
        Phase1Config {
            device: XCKU060,
            deploy_hidden: 1024,
            layer_dims: vec![64, 64],
            accuracy_budget: budget,
            max_block: None,
        }
    }

    #[test]
    fn trial_count_is_bounded_like_the_paper() {
        // Paper Sec. VI-B: "the total number of training trials is limited
        // to around 5".
        let mut oracle = SyntheticOracle {
            baseline: 20.0,
            per_log_block: 0.08,
            gru_penalty: 0.0,
            evaluations: 0,
        };
        let result = run_phase1(&mut oracle, &config(0.3));
        assert!(
            result.trial_count() <= 6,
            "{} trials: {:?}",
            result.trial_count(),
            result.trials
        );
    }

    #[test]
    fn picks_largest_block_within_budget() {
        // With 0.08 pp per log2(block), budget 0.3 admits blocks up to
        // 2^(0.3/0.08) ≈ 2^3.75 → block 8 among {8, 16, 32, 64}.
        let mut oracle = SyntheticOracle {
            baseline: 20.0,
            per_log_block: 0.08,
            gru_penalty: 10.0, // GRU unusable in this scenario
            evaluations: 0,
        };
        let result = run_phase1(&mut oracle, &config(0.3));
        assert_eq!(result.chosen.cell, CellType::Lstm);
        assert_eq!(result.chosen.block, 8, "{:?}", result.trials);
    }

    #[test]
    fn switches_to_gru_when_free() {
        let mut oracle = SyntheticOracle {
            baseline: 20.0,
            per_log_block: 0.05,
            gru_penalty: 0.0,
            evaluations: 0,
        };
        let result = run_phase1(&mut oracle, &config(0.3));
        assert_eq!(result.chosen.cell, CellType::Gru);
    }

    #[test]
    fn adopts_larger_io_block_when_cheap() {
        // io block contributes only 0.25 of the degradation slope, so
        // doubling it stays within budget here.
        let mut oracle = SyntheticOracle {
            baseline: 20.0,
            per_log_block: 0.06,
            gru_penalty: 0.0,
            evaluations: 0,
        };
        let result = run_phase1(&mut oracle, &config(0.4));
        assert!(
            result.chosen.io_block > result.chosen.block,
            "{:?}",
            result.chosen
        );
    }

    #[test]
    fn tight_budget_falls_back_to_bram_floor() {
        let mut oracle = SyntheticOracle {
            baseline: 20.0,
            per_log_block: 5.0, // every compression hurts badly
            gru_penalty: 0.0,
            evaluations: 0,
        };
        let result = run_phase1(&mut oracle, &config(0.1));
        assert_eq!(result.chosen.block, result.bounds.lower.max(2));
        assert!(result.degradation() > 0.1, "budget cannot be met");
    }

    #[test]
    fn degradation_is_chosen_minus_baseline() {
        let mut oracle = SyntheticOracle {
            baseline: 21.5,
            per_log_block: 0.02,
            gru_penalty: 0.0,
            evaluations: 0,
        };
        let result = run_phase1(&mut oracle, &config(0.3));
        assert!((result.degradation() - (result.chosen_per - 21.5)).abs() < 1e-12);
        assert!(result.degradation() <= 0.3 + 1e-9);
    }
}
