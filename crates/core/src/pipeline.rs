//! The unified model-lifecycle pipeline: one typed path from a model
//! spec through the paper's Phase I/II steps to a deployable artifact.
//!
//! Every stage of the E-RNN lifecycle — specify, train, compress with
//! ADMM, quantize, compile — used to be a hand-chained sequence of free
//! functions (`NetworkBuilder → compress_network → AdmmTrainer →
//! QuantizedNetwork → CompiledModel::compile`) with configuration
//! literals duplicated at every call site. This module replaces that
//! with a **typestate builder**: each stage is its own type and only
//! offers the operations that are legal next, so an unquantized model
//! cannot be compiled and a spec cannot be compressed before it has
//! weights. Failures are values — every stage returns
//! [`PipelineError`] instead of panicking.
//!
//! ```text
//! Pipeline::spec(s)?                          SpecStage
//!   .train(..)? / .init(..) / .with_pretrained(..)?   TrainedStage
//!   .compress(..)? / .project()?              CompressedStage
//!   .quantize()? / .quantize_with(..)?        QuantizedStage
//!   .compile()? / .compile_for(dev)?          PipelineModel
//! ```
//!
//! The terminal [`PipelineModel`] pairs the in-memory
//! [`CompiledModel`] (ready to serve) with its [`ModelArtifact`] (ready
//! to persist): `save_bytes → load_bytes → ModelRegistry::
//! register_artifact` round-trips bit-identically into the serving
//! tier with zero re-quantization and zero extra weight-spectrum
//! refreshes.
//!
//! [`PipelineSettings::paper`] is the single source of truth for the
//! paper's deployment defaults (block 8, 12-bit datapath, XCKU060) that
//! examples and benches previously spelled out literal by literal.

use ernn_admm::{AdmmConfig, AdmmTrainer};
use ernn_fpga::artifact::{
    validate_datapath, validate_policy, validate_spec, AdmmProvenance, ModelArtifact,
    Phase1Provenance, Provenance,
};
use ernn_fpga::exec::DatapathConfig;
use ernn_fpga::Device;
use ernn_model::trainer::{train, Sequence, TrainOptions};
use ernn_model::{compress_network, BlockPolicy, Matrix, ModelSpec, RnnNetwork, Sgd, WeightMatrix};
use ernn_serve::CompiledModel;
use rand::Rng;

pub use ernn_fpga::artifact::PipelineError;

/// Lifecycle settings a pipeline carries from spec to compile: the block
/// policy for compression, the datapath for quantization, the target
/// platform for compilation. Stages consume these unless an explicit
/// `_with`/`_for` variant overrides them.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSettings {
    /// Block-circulant policy applied by the compression stage.
    pub block: BlockPolicy,
    /// Fixed-point/PWL datapath applied by the quantization stage.
    pub datapath: DatapathConfig,
    /// Platform the compile stage targets.
    pub device: Device,
}

impl PipelineSettings {
    /// The paper's deployment configuration — block size 8
    /// (Table I's accuracy/compression sweet spot), the 12-bit datapath
    /// of Sec. VII-D, and the XCKU060 platform. The one place these
    /// defaults are written down.
    pub fn paper() -> Self {
        PipelineSettings {
            block: BlockPolicy::uniform(8),
            datapath: DatapathConfig::paper_12bit(),
            device: ernn_fpga::XCKU060,
        }
    }
}

impl Default for PipelineSettings {
    fn default() -> Self {
        PipelineSettings::paper()
    }
}

/// Dense pre-training hyperparameters for [`SpecStage::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainSettings {
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Multiplicative learning-rate decay per epoch.
    pub lr_decay: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
}

impl Default for TrainSettings {
    fn default() -> Self {
        TrainSettings {
            epochs: 8,
            lr: 0.08,
            lr_decay: 0.92,
            momentum: 0.9,
            clip_norm: 2.0,
        }
    }
}

/// ADMM compression hyperparameters for [`TrainedStage::compress`]: the
/// outer-loop schedule plus the learning rate of the subproblem-1 SGD
/// (constrained retraining runs at `0.75 × lr`, the flow's convention).
#[derive(Debug, Clone, Copy)]
pub struct CompressSettings {
    /// The ADMM outer-loop schedule.
    pub admm: AdmmConfig,
    /// Subproblem-1 learning rate.
    pub lr: f32,
}

impl Default for CompressSettings {
    fn default() -> Self {
        CompressSettings {
            admm: AdmmConfig::default(),
            lr: 0.02,
        }
    }
}

/// A Phase-II outcome carried into the pipeline: the chosen datapath
/// plus the quantization scan that justified it (stored as provenance).
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathChoice {
    /// The chosen fixed-point/PWL datapath.
    pub datapath: DatapathConfig,
    /// The `(bits, PER %)` scan behind the choice.
    pub quant_trials: Vec<(u8, f64)>,
}

/// Entry point of the lifecycle pipeline.
pub struct Pipeline;

impl Pipeline {
    /// Starts a pipeline from a model spec with the
    /// [`PipelineSettings::paper`] defaults.
    pub fn spec(spec: ModelSpec) -> Result<SpecStage, PipelineError> {
        validate_spec(&spec)?;
        Ok(SpecStage {
            spec,
            settings: PipelineSettings::paper(),
            provenance: Provenance::default(),
        })
    }

    /// [`Self::spec`] spelled as what it is at the call sites that only
    /// need the paper's deployment defaults — the preset examples and
    /// benches route their configuration through.
    pub fn paper(spec: ModelSpec) -> Result<SpecStage, PipelineError> {
        Pipeline::spec(spec)
    }
}

/// Stage 0: the model is specified but has no weights yet.
#[derive(Debug, Clone)]
pub struct SpecStage {
    spec: ModelSpec,
    settings: PipelineSettings,
    provenance: Provenance,
}

impl SpecStage {
    /// Replaces all lifecycle settings.
    pub fn settings(mut self, settings: PipelineSettings) -> Self {
        self.settings = settings;
        self
    }

    /// Overrides the compression block policy.
    pub fn block_policy(mut self, policy: BlockPolicy) -> Self {
        self.settings.block = policy;
        self
    }

    /// Overrides the quantization datapath.
    pub fn datapath(mut self, datapath: DatapathConfig) -> Self {
        self.settings.datapath = datapath;
        self
    }

    /// Overrides the target platform.
    pub fn device(mut self, device: Device) -> Self {
        self.settings.device = device;
        self
    }

    /// Labels the artifact's provenance with its origin.
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.provenance.source = source.into();
        self
    }

    /// Attaches a Phase-I trial log to the artifact's provenance (done
    /// automatically by
    /// [`Phase1Result::into_pipeline`](crate::Phase1Result::into_pipeline)).
    pub fn phase1_provenance(mut self, phase1: Phase1Provenance) -> Self {
        self.provenance.phase1 = Some(phase1);
        self
    }

    /// Enables LSTM peepholes on the spec (ignored for GRU).
    pub fn peephole(mut self, on: bool) -> Self {
        self.spec = self.spec.peephole(on);
        self
    }

    /// The spec this pipeline will instantiate.
    pub fn model_spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The lifecycle settings in force.
    pub fn pipeline_settings(&self) -> &PipelineSettings {
        &self.settings
    }

    /// Instantiates the spec with seeded random weights and **no**
    /// training — the serving-bench path, where random weights exercise
    /// exactly the same downstream lifecycle as trained ones.
    pub fn init(self, rng: &mut impl Rng) -> TrainedStage {
        let net = self.spec.builder().build(rng);
        TrainedStage {
            spec: self.spec,
            settings: self.settings,
            provenance: self.provenance,
            net,
        }
    }

    /// Instantiates the spec and pre-trains it densely (the start of the
    /// paper's Fig. 6).
    pub fn train(
        self,
        data: &[Sequence],
        opts: TrainSettings,
        rng: &mut impl Rng,
    ) -> Result<TrainedStage, PipelineError> {
        if data.is_empty() {
            return Err(PipelineError::EmptyTrainingSet);
        }
        let mut stage = self.init(rng);
        let mut opt = Sgd::new(opts.lr)
            .momentum(opts.momentum)
            .clip_norm(opts.clip_norm);
        train(
            &mut stage.net,
            data,
            TrainOptions {
                epochs: opts.epochs,
                lr_decay: opts.lr_decay,
                shuffle: true,
            },
            &mut opt,
            rng,
        );
        Ok(stage)
    }

    /// Adopts an externally trained dense network, checking it actually
    /// has the declared shape.
    pub fn with_pretrained(self, net: RnnNetwork<Matrix>) -> Result<TrainedStage, PipelineError> {
        self.spec
            .matches(&net)
            .map_err(PipelineError::ShapeMismatch)?;
        Ok(TrainedStage {
            spec: self.spec,
            settings: self.settings,
            provenance: self.provenance,
            net,
        })
    }

    /// Adopts an already compressed network (e.g. the Phase-I winner the
    /// flow oracle trained), skipping straight to the compressed stage.
    pub fn with_compressed(
        self,
        net: RnnNetwork<WeightMatrix>,
    ) -> Result<CompressedStage, PipelineError> {
        validate_policy(&self.settings.block)?;
        self.spec
            .matches(&net)
            .map_err(PipelineError::ShapeMismatch)?;
        Ok(CompressedStage {
            spec: self.spec,
            settings: self.settings,
            provenance: self.provenance,
            net,
        })
    }
}

/// Stage 1 complete: a dense network exists (trained or initialized).
#[derive(Debug, Clone)]
pub struct TrainedStage {
    spec: ModelSpec,
    settings: PipelineSettings,
    provenance: Provenance,
    net: RnnNetwork<Matrix>,
}

impl TrainedStage {
    /// The dense network at this stage.
    pub fn network(&self) -> &RnnNetwork<Matrix> {
        &self.net
    }

    /// Compresses with the full ADMM recipe of Fig. 6 (ADMM iterations,
    /// hard projection, constrained retraining) under the pipeline's
    /// block policy, recording the residual trace as provenance.
    pub fn compress(
        mut self,
        data: &[Sequence],
        opts: CompressSettings,
        rng: &mut impl Rng,
    ) -> Result<CompressedStage, PipelineError> {
        validate_policy(&self.settings.block)?;
        if data.is_empty() {
            return Err(PipelineError::EmptyTrainingSet);
        }
        let mut trainer = AdmmTrainer::new(&self.net, self.settings.block, opts.admm);
        let mut opt = Sgd::new(opts.lr).momentum(0.9).clip_norm(2.0);
        let mut retrain_opt = Sgd::new(opts.lr * 0.75).momentum(0.9).clip_norm(2.0);
        let report = trainer.fit(&mut self.net, data, &mut opt, &mut retrain_opt, rng);
        self.provenance.admm = Some(AdmmProvenance {
            final_residual: report.final_residual(),
            iterations: report.iterations.len(),
            converged: report.converged,
        });
        let net = compress_network(&self.net, self.settings.block);
        Ok(CompressedStage {
            spec: self.spec,
            settings: self.settings,
            provenance: self.provenance,
            net,
        })
    }

    /// Projects directly onto the block-circulant manifold **without**
    /// ADMM training — lossy on trained weights (run [`Self::compress`]
    /// for those); exact for the random-weight bench path.
    pub fn project(self) -> Result<CompressedStage, PipelineError> {
        validate_policy(&self.settings.block)?;
        let net = compress_network(&self.net, self.settings.block);
        Ok(CompressedStage {
            spec: self.spec,
            settings: self.settings,
            provenance: self.provenance,
            net,
        })
    }
}

/// Stage 2 complete: the weights are block-circulant.
#[derive(Debug, Clone)]
pub struct CompressedStage {
    spec: ModelSpec,
    settings: PipelineSettings,
    provenance: Provenance,
    net: RnnNetwork<WeightMatrix>,
}

impl CompressedStage {
    /// The compressed network at this stage.
    pub fn network(&self) -> &RnnNetwork<WeightMatrix> {
        &self.net
    }

    /// Records the ADMM residual trace for models whose compression ran
    /// outside the pipeline (the flow oracle's candidates).
    pub fn admm_provenance(mut self, admm: AdmmProvenance) -> Self {
        self.provenance.admm = Some(admm);
        self
    }

    /// Fixes the datapath from the pipeline settings.
    pub fn quantize(self) -> Result<QuantizedStage, PipelineError> {
        let datapath = self.settings.datapath.clone();
        self.quantize_with(datapath)
    }

    /// Fixes the datapath Phase II chose, recording its quantization
    /// scan as provenance (see
    /// [`Phase2Result::into_pipeline`](crate::Phase2Result::into_pipeline)).
    pub fn quantize_chosen(
        mut self,
        choice: DatapathChoice,
    ) -> Result<QuantizedStage, PipelineError> {
        self.provenance.quant_trials = choice.quant_trials;
        self.quantize_with(choice.datapath)
    }

    /// Fixes an explicit datapath.
    pub fn quantize_with(self, datapath: DatapathConfig) -> Result<QuantizedStage, PipelineError> {
        validate_datapath(&datapath)?;
        Ok(QuantizedStage {
            spec: self.spec,
            settings: self.settings,
            provenance: self.provenance,
            net: self.net,
            datapath,
        })
    }
}

/// Stage 3 complete: the datapath is fixed; the model is ready to
/// compile. (Quantization itself runs inside [`Self::compile`] so the
/// numbers are produced by exactly the same pass `CompiledModel::compile`
/// always ran — bit-identical with the pre-pipeline entry points.)
#[derive(Debug, Clone)]
pub struct QuantizedStage {
    spec: ModelSpec,
    settings: PipelineSettings,
    provenance: Provenance,
    net: RnnNetwork<WeightMatrix>,
    datapath: DatapathConfig,
}

impl QuantizedStage {
    /// Compiles for the pipeline's target platform.
    pub fn compile(self) -> Result<PipelineModel, PipelineError> {
        let device = self.settings.device;
        self.compile_for(device)
    }

    /// Compiles for an explicit platform: quantizes the weights, derives
    /// the accelerator timing model, and packages the result as both a
    /// servable [`CompiledModel`] and a persistable [`ModelArtifact`].
    pub fn compile_for(self, device: Device) -> Result<PipelineModel, PipelineError> {
        if Device::by_name(device.name) != Some(device) {
            return Err(PipelineError::UnknownDevice(device.name.to_string()));
        }
        let model = CompiledModel::compile(&self.net, &self.datapath, device);
        let artifact = ModelArtifact::from_quantized(
            self.spec,
            self.settings.block,
            self.datapath,
            device,
            model.quantized(),
            self.provenance,
        )?;
        Ok(PipelineModel { model, artifact })
    }
}

/// The pipeline's terminal stage: the servable model and its
/// persistable artifact, born from one quantization pass and therefore
/// bit-identical to each other.
#[derive(Debug, Clone)]
pub struct PipelineModel {
    model: CompiledModel,
    artifact: ModelArtifact,
}

impl PipelineModel {
    /// The in-memory model, ready for
    /// [`ModelRegistry::register`](ernn_serve::sched::ModelRegistry::register)
    /// or direct inference.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// The versioned artifact, ready for
    /// [`ModelArtifact::save_bytes`].
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// Serializes the artifact (see [`ModelArtifact::save_bytes`]).
    pub fn save_bytes(&self) -> Vec<u8> {
        self.artifact.save_bytes()
    }

    /// Consumes the pair, keeping the servable model.
    pub fn into_model(self) -> CompiledModel {
        self.model
    }

    /// Consumes the pair, keeping the artifact.
    pub fn into_artifact(self) -> ModelArtifact {
        self.artifact
    }

    /// Consumes the pair into `(model, artifact)`.
    pub fn into_parts(self) -> (CompiledModel, ModelArtifact) {
        (self.model, self.artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ernn_fpga::exec::ExecScratch;
    use ernn_model::{CellType, NetworkBuilder};
    use rand::SeedableRng;

    fn toy_data(n: usize, len: usize, seed: u64) -> Vec<Sequence> {
        use rand::Rng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let frames: Vec<Vec<f32>> = (0..len)
                    .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                    .collect();
                let labels = (0..len).map(|t| t % 3).collect();
                (frames, labels)
            })
            .collect()
    }

    #[test]
    fn init_project_compile_matches_the_hand_chained_path_bit_for_bit() {
        // The pipeline must be a pure re-packaging of the old free
        // functions: same RNG stream, same calls, same bits.
        let spec = ModelSpec::new(CellType::Gru, 6, 4).layer_dims(&[16]);
        let mut rng_a = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let out = Pipeline::paper(spec)
            .expect("valid spec")
            .block_policy(BlockPolicy::uniform(4))
            .init(&mut rng_a)
            .project()
            .expect("pow2 block")
            .quantize()
            .expect("valid datapath")
            .compile()
            .expect("known device");

        let mut rng_b = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let dense = NetworkBuilder::new(CellType::Gru, 6, 4)
            .layer_dims(&[16])
            .build(&mut rng_b);
        let net = compress_network(&dense, BlockPolicy::uniform(4));
        let by_hand =
            CompiledModel::compile(&net, &DatapathConfig::paper_12bit(), ernn_fpga::XCKU060);

        let frames = vec![vec![0.3f32; 6]; 5];
        assert_eq!(out.model().infer(&frames), by_hand.infer(&frames));
        assert_eq!(out.model().stage_cycles(), by_hand.stage_cycles());
        assert_eq!(out.model().spec(), by_hand.spec());
    }

    #[test]
    fn trained_compressed_pipeline_round_trips_through_bytes() {
        let data = toy_data(6, 8, 5);
        let spec = ModelSpec::new(CellType::Gru, 4, 3).layer_dims(&[8]);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let out = Pipeline::spec(spec)
            .expect("valid spec")
            .block_policy(BlockPolicy::uniform(4))
            .source("pipeline unit test")
            .train(
                &data,
                TrainSettings {
                    epochs: 2,
                    ..TrainSettings::default()
                },
                &mut rng,
            )
            .expect("non-empty data")
            .compress(
                &data,
                CompressSettings {
                    admm: AdmmConfig {
                        iterations: 2,
                        epochs_per_iter: 1,
                        retrain_epochs: 1,
                        ..AdmmConfig::default()
                    },
                    lr: 0.02,
                },
                &mut rng,
            )
            .expect("non-empty data")
            .quantize()
            .expect("valid datapath")
            .compile()
            .expect("known device");

        // ADMM provenance was captured.
        let admm = out.artifact().provenance.admm.expect("admm ran");
        assert!(admm.iterations >= 1);
        assert_eq!(out.artifact().provenance.source, "pipeline unit test");

        // Bytes round-trip into an identical servable model.
        let bytes = out.save_bytes();
        let loaded = ModelArtifact::load_bytes(&bytes).expect("decodes");
        let reloaded = CompiledModel::from_artifact(&loaded);
        let frames = vec![vec![0.2f32; 4]; 6];
        let mut scratch = ExecScratch::new();
        assert_eq!(
            reloaded.infer_with(&frames, &mut scratch),
            out.model().infer(&frames)
        );
        assert_eq!(reloaded.stage_cycles(), out.model().stage_cycles());
    }

    #[test]
    fn stage_validation_returns_errors_not_panics() {
        // Invalid spec.
        let empty = ModelSpec::new(CellType::Gru, 0, 4);
        assert!(matches!(
            Pipeline::spec(empty),
            Err(PipelineError::InvalidSpec(_))
        ));
        // Empty training set.
        let spec = ModelSpec::new(CellType::Gru, 4, 3).layer_dims(&[8]);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let err = Pipeline::spec(spec.clone())
            .expect("valid")
            .train(&[], TrainSettings::default(), &mut rng)
            .unwrap_err();
        assert_eq!(err, PipelineError::EmptyTrainingSet);
        // Non-power-of-two block.
        let err = Pipeline::spec(spec.clone())
            .expect("valid")
            .block_policy(BlockPolicy::uniform(6))
            .init(&mut rng)
            .project()
            .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidBlockPolicy(_)));
        // Degenerate datapath.
        let err = Pipeline::spec(spec.clone())
            .expect("valid")
            .block_policy(BlockPolicy::uniform(4))
            .init(&mut rng)
            .project()
            .expect("pow2")
            .quantize_with(DatapathConfig {
                weight_bits: 0,
                activation_bits: 12,
                pwl_segments: 64,
            })
            .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidDatapath(_)));
        // Mismatched pretrained network.
        let other = NetworkBuilder::new(CellType::Lstm, 4, 3)
            .layer_dims(&[8])
            .build(&mut rng);
        let err = Pipeline::spec(spec)
            .expect("valid")
            .with_pretrained(other)
            .unwrap_err();
        assert!(matches!(err, PipelineError::ShapeMismatch(_)));
    }
}
