//! Dynamic batching: group compatible requests under a max-batch /
//! max-wait policy.
//!
//! The batcher is the classic serving trade-off dial (cf. C-LSTM and the
//! parameterised-LSTM-accelerator line of work): larger batches amortize
//! the CGPipe fill and scheduling overhead, longer waits add queueing
//! latency. [`BatchPolicy`] expresses the dial; [`DynamicBatcher`] is the
//! deterministic queue the runtime's event loop drives.
//!
//! With streaming sessions, batches form **across sessions at the same
//! chunk boundary**: several sessions' chunks ride one lockstep batch,
//! each lane resuming its own recurrent state. Two formation rules keep
//! that sound (shared with the scheduler's EDF queue): a batch closes
//! before a second chunk of a session already in it (two lanes of one
//! session would double-apply state), and before a chunk whose session
//! is bound to a different device than the batch (state never migrates).
//! Both rules *close* the batch rather than skip the request, preserving
//! the queue-order prefix property the no-deadline-inversion tests pin.

use crate::request::{Request, Workload};
use std::collections::VecDeque;

/// When to close a forming batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many requests are queued.
    pub max_batch: usize,
    /// Dispatch once the oldest queued request has waited this long (µs),
    /// even if the batch is not full.
    pub max_wait_us: f64,
}

impl BatchPolicy {
    /// No batching: every request dispatches alone, immediately.
    pub fn immediate() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_wait_us: 0.0,
        }
    }

    /// Batch up to `max_batch`, waiting at most `max_wait_us`.
    pub fn new(max_batch: usize, max_wait_us: f64) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        assert!(max_wait_us >= 0.0, "max_wait_us must be non-negative");
        BatchPolicy {
            max_batch,
            max_wait_us,
        }
    }
}

/// What the forming batch needs from the event loop — a total snapshot of
/// the batcher's dispatch state.
///
/// This is the structured replacement for the old
/// `flush_deadline_us().expect(..)` pattern: the event loop `match`es on
/// one value instead of combining a length check with an `Option` unwrap
/// whose invariant ("non-empty ⇒ has a flush deadline") lived only in a
/// panic message. A batcher refactor that breaks the invariant now fails
/// to type-check the loop rather than killing it at runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchReadiness {
    /// Nothing queued; wait for the next arrival.
    Empty,
    /// A batch is forming; unless it fills first, it must dispatch no
    /// later than `flush_at_us` (oldest member's arrival + max wait).
    Forming {
        /// Absolute flush time (µs).
        flush_at_us: f64,
    },
    /// The batch is full: dispatch now.
    Full,
}

/// FIFO queue that forms batches according to a [`BatchPolicy`].
#[derive(Debug)]
pub struct DynamicBatcher {
    policy: BatchPolicy,
    queue: VecDeque<Request>,
}

impl DynamicBatcher {
    /// An empty batcher under the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        DynamicBatcher {
            policy,
            queue: VecDeque::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Queued request count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues an arrived request.
    pub fn push(&mut self, request: Request) {
        self.queue.push_back(request);
    }

    /// Arrival time (µs) of the oldest queued request, or `None` when
    /// the queue is empty. FIFO order makes the front the oldest, so
    /// this is O(1) — the timeline sampler reads it on every clock
    /// advance.
    pub fn oldest_arrival_us(&self) -> Option<f64> {
        self.queue.front().map(|r| r.arrival_us)
    }

    /// The absolute time (µs) at which the forming batch must dispatch
    /// even if still under-full, or `None` when the queue is empty.
    pub fn flush_deadline_us(&self) -> Option<f64> {
        self.queue
            .front()
            .map(|oldest| oldest.arrival_us + self.policy.max_wait_us)
    }

    /// The dispatch state the event loop switches on (see
    /// [`BatchReadiness`]). Empty, full, and forming are mutually
    /// exclusive by construction, so the loop cannot observe a non-empty
    /// batcher without a flush deadline.
    pub fn readiness(&self) -> BatchReadiness {
        match self.queue.front() {
            None => BatchReadiness::Empty,
            Some(_) if self.queue.len() >= self.policy.max_batch => BatchReadiness::Full,
            Some(oldest) => BatchReadiness::Forming {
                flush_at_us: oldest.arrival_us + self.policy.max_wait_us,
            },
        }
    }

    /// Whether a batch should dispatch at time `now_us`: the queue is
    /// full, or the oldest request has exhausted its wait budget.
    pub fn ready(&self, now_us: f64) -> bool {
        if self.queue.len() >= self.policy.max_batch {
            return true;
        }
        match self.flush_deadline_us() {
            Some(deadline) => now_us >= deadline,
            None => false,
        }
    }

    /// Removes and returns the next batch: up to `max_batch` requests in
    /// FIFO order, closing early at a streaming-session conflict (a
    /// second chunk of a session already in the batch, or a chunk whose
    /// `affinity` device disagrees with the batch's pinned device).
    /// Returns the batch plus the device it is pinned to, if any member's
    /// session was bound. Returns an empty batch only when nothing is
    /// queued.
    pub fn take_batch(&mut self, affinity: &dyn Fn(u64) -> Option<usize>) -> TakenBatch {
        let mut batch: Vec<Request> = Vec::new();
        let mut pinned = None;
        while batch.len() < self.policy.max_batch {
            let Some(front) = self.queue.front() else {
                break;
            };
            if let Workload::Chunk { session, .. } = front.workload {
                if batch.iter().any(|r| r.session() == Some(session)) {
                    break;
                }
                if let Some(d) = affinity(session) {
                    if pinned.is_some_and(|p| p != d) {
                        break;
                    }
                    pinned = Some(d);
                }
            }
            batch.push(self.queue.pop_front().expect("front exists"));
        }
        TakenBatch { batch, pinned }
    }
}

/// A formed batch plus its device constraint.
#[derive(Debug)]
pub struct TakenBatch {
    /// The batch members, in queue order.
    pub batch: Vec<Request>,
    /// Device the batch must run on (some member's session is bound
    /// there), or `None` when placement is free.
    pub pinned: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival: f64) -> Request {
        Request::new(id, vec![vec![0.0; 2]], arrival)
    }

    fn chunk(id: u64, session: u64, index: u32, arrival: f64) -> Request {
        Request::chunk(id, session, index, false, vec![vec![0.0; 2]], arrival)
    }

    /// No sessions bound anywhere: formation is unconstrained.
    fn unbound(_session: u64) -> Option<usize> {
        None
    }

    #[test]
    fn full_queue_is_ready_immediately() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(2, 1000.0));
        b.push(req(0, 0.0));
        assert!(!b.ready(0.0));
        b.push(req(1, 1.0));
        assert!(b.ready(1.0));
        let batch = b.take_batch(&unbound).batch;
        assert_eq!(batch.len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn wait_budget_flushes_partial_batch() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(8, 50.0));
        b.push(req(0, 10.0));
        assert!(!b.ready(59.0));
        assert!(b.ready(60.0));
        assert_eq!(b.flush_deadline_us(), Some(60.0));
        assert_eq!(b.take_batch(&unbound).batch.len(), 1);
    }

    #[test]
    fn take_batch_respects_max_and_fifo_order() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(3, 0.0));
        for i in 0..5 {
            b.push(req(i, i as f64));
        }
        let taken = b.take_batch(&unbound);
        let ids: Vec<u64> = taken.batch.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(taken.pinned, None);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn immediate_policy_dispatches_singletons() {
        let mut b = DynamicBatcher::new(BatchPolicy::immediate());
        b.push(req(0, 5.0));
        assert!(b.ready(5.0));
        assert_eq!(b.take_batch(&unbound).batch.len(), 1);
    }

    #[test]
    fn readiness_tracks_empty_forming_full() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(2, 50.0));
        assert_eq!(b.readiness(), BatchReadiness::Empty);
        b.push(req(0, 10.0));
        assert_eq!(b.readiness(), BatchReadiness::Forming { flush_at_us: 60.0 });
        b.push(req(1, 11.0));
        assert_eq!(b.readiness(), BatchReadiness::Full);
        let _ = b.take_batch(&unbound);
        assert_eq!(b.readiness(), BatchReadiness::Empty);
    }

    #[test]
    fn batch_closes_before_a_second_chunk_of_one_session() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(4, 0.0));
        b.push(chunk(0, 7, 0, 0.0));
        b.push(chunk(1, 8, 0, 1.0)); // different session: batches fine
        b.push(chunk(2, 7, 1, 2.0)); // same session again: closes batch
        b.push(req(3, 3.0));
        let first = b.take_batch(&unbound);
        assert_eq!(
            first.batch.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1]
        );
        let second = b.take_batch(&unbound);
        assert_eq!(
            second.batch.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn batch_closes_at_an_affinity_conflict_and_reports_the_pin() {
        let mut b = DynamicBatcher::new(BatchPolicy::new(4, 0.0));
        b.push(chunk(0, 7, 0, 0.0)); // bound to device 1
        b.push(req(1, 0.5)); // utterances ride along freely
        b.push(chunk(2, 8, 0, 1.0)); // bound to device 0: conflict
        let bind = |s: u64| Some(if s == 7 { 1 } else { 0 });
        let first = b.take_batch(&bind);
        assert_eq!(
            first.batch.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(first.pinned, Some(1));
        let second = b.take_batch(&bind);
        assert_eq!(second.batch.len(), 1);
        assert_eq!(second.pinned, Some(0));
    }
}
