//! Critical-path analysis over a captured [`TraceJournal`].
//!
//! The journal records *events*; operators ask about *requests*. This
//! module reconstructs each served request's span chain — admit →
//! enqueue → batch → load-stall → dispatch → complete — and decomposes
//! its end-to-end latency into the stages that produced it:
//!
//! * **queue** — arrival to batch start on the device,
//! * **load** — weight-image streaming stalls the batch paid,
//! * **state** — session-state reload stalls the batch paid,
//! * **compute** — the remainder of device occupancy until the
//!   request's frames finished.
//!
//! The decomposition is exact by construction: `queue + load + state +
//! compute` equals the observed `complete − arrival` latency bit-for-bit
//! (`sched_sweep` asserts this against every [`Response`] of a real
//! run). A batch's stalls sit on every member's critical path, so each
//! member is charged the full stall — these are per-request critical
//! paths, not a cost attribution (that is
//! [`StageAttribution`](crate::trace::StageAttribution)'s job).
//!
//! [`analyze`] also surfaces the top-[`TOP_K`] slowest requests as
//! exemplars, each with its event slice (everything mentioning the
//! request plus its batch's device-side events), which is what you want
//! in hand when a p99.9 regresses.
//!
//! [`Response`]: crate::Response

use crate::trace::{TraceEvent, TraceJournal};

/// How many slow-request exemplars [`analyze`] keeps.
pub const TOP_K: usize = 8;

/// One served request's critical-path decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSpan {
    /// Request id.
    pub id: u64,
    /// Served model.
    pub model: usize,
    /// Serving device.
    pub device: usize,
    /// Arrival time (µs).
    pub arrival_us: f64,
    /// Batch start on the device (µs).
    pub dispatch_us: f64,
    /// Completion time (µs).
    pub complete_us: f64,
    /// Whether the request's deadline (if any) was met.
    pub deadline_met: bool,
    /// Arrival → device start (µs).
    pub queue_us: f64,
    /// Weight-load stalls on the critical path (µs).
    pub load_us: f64,
    /// Session-state reload stalls on the critical path (µs).
    pub state_us: f64,
    /// Remaining device occupancy until this request completed (µs).
    pub compute_us: f64,
}

impl RequestSpan {
    /// Observed end-to-end latency (µs).
    pub fn latency_us(&self) -> f64 {
        self.complete_us - self.arrival_us
    }

    /// Sum of the decomposed stages (µs); equals
    /// [`Self::latency_us`] exactly.
    pub fn total_us(&self) -> f64 {
        self.queue_us + self.load_us + self.state_us + self.compute_us
    }
}

/// A slow-request exemplar: the span plus every journal event that
/// mentions the request or its batch's device-side activity.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowRequest {
    /// The request's decomposed span.
    pub span: RequestSpan,
    /// The event slice: id-matching events plus device events inside
    /// the request's dispatch window, in journal order.
    pub events: Vec<TraceEvent>,
}

/// Run-wide sums of the per-request stages (µs each).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PathTotals {
    /// Total queue wait across spans.
    pub queue_us: f64,
    /// Total weight-load stall across spans.
    pub load_us: f64,
    /// Total state-load stall across spans.
    pub state_us: f64,
    /// Total compute across spans.
    pub compute_us: f64,
    /// Total observed latency across spans (the sum of the other four).
    pub latency_us: f64,
}

/// What [`analyze`] reconstructs from one journal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceAnalysis {
    /// One span per `Complete` event, in completion (journal) order.
    pub spans: Vec<RequestSpan>,
    /// The [`TOP_K`] slowest spans with their event slices, slowest
    /// first.
    pub slowest: Vec<SlowRequest>,
    /// Run-wide stage sums.
    pub totals: PathTotals,
}

/// Reconstructs per-request critical paths from a captured journal.
///
/// Requests whose `Complete` event was lost to ring overwrite are
/// absent; a request whose batch's `Dispatch`/load events were lost
/// still gets a span, with its stalls folded into `compute_us` (the
/// decomposition invariant holds either way).
pub fn analyze(journal: &TraceJournal) -> TraceAnalysis {
    // One record per dispatched batch: where it ran and what stalls it
    // paid. Loads are matched into their batch by device + occupancy
    // window.
    struct Batch {
        device: usize,
        start_us: f64,
        end_us: f64,
        load_us: f64,
        state_us: f64,
    }
    let mut batches: Vec<Batch> = Vec::new();
    for e in &journal.events {
        if let TraceEvent::Dispatch {
            device,
            start_us,
            busy_us,
            ..
        } = *e
        {
            batches.push(Batch {
                device,
                start_us,
                end_us: start_us + busy_us,
                load_us: 0.0,
                state_us: 0.0,
            });
        }
    }
    let find_batch = |batches: &[Batch], device: usize, t_us: f64| -> Option<usize> {
        batches
            .iter()
            .position(|b| b.device == device && t_us >= b.start_us && t_us <= b.end_us)
    };
    for e in &journal.events {
        match *e {
            TraceEvent::ResidencyLoad {
                t_us,
                device,
                load_us,
                ..
            } => {
                if let Some(i) = find_batch(&batches, device, t_us) {
                    batches[i].load_us += load_us;
                }
            }
            TraceEvent::SessionStateLoad {
                t_us,
                device,
                load_us,
                ..
            } => {
                if let Some(i) = find_batch(&batches, device, t_us) {
                    batches[i].state_us += load_us;
                }
            }
            _ => {}
        }
    }

    let mut spans = Vec::new();
    let mut totals = PathTotals::default();
    for e in &journal.events {
        let TraceEvent::Complete {
            t_us,
            id,
            device,
            model,
            arrival_us,
            dispatch_us,
            deadline_met,
        } = *e
        else {
            continue;
        };
        let (load_us, state_us) = batches
            .iter()
            .find(|b| b.device == device && b.start_us == dispatch_us)
            .map_or((0.0, 0.0), |b| (b.load_us, b.state_us));
        let queue_us = dispatch_us - arrival_us;
        let service_us = t_us - dispatch_us;
        // compute is defined as the service remainder, so the four
        // stages sum to the observed latency bit-for-bit.
        let compute_us = service_us - load_us - state_us;
        let span = RequestSpan {
            id,
            model,
            device,
            arrival_us,
            dispatch_us,
            complete_us: t_us,
            deadline_met,
            queue_us,
            load_us,
            state_us,
            compute_us,
        };
        totals.queue_us += queue_us;
        totals.load_us += load_us;
        totals.state_us += state_us;
        totals.compute_us += compute_us;
        totals.latency_us += span.latency_us();
        spans.push(span);
    }

    // Top-k slowest, ties broken by id for determinism.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        spans[b]
            .latency_us()
            .total_cmp(&spans[a].latency_us())
            .then(spans[a].id.cmp(&spans[b].id))
    });
    let slowest = order
        .iter()
        .take(TOP_K)
        .map(|&i| {
            let span = spans[i];
            let events = journal
                .events
                .iter()
                .filter(|e| match **e {
                    TraceEvent::Admit { id, .. }
                    | TraceEvent::Shed { id, .. }
                    | TraceEvent::Enqueue { id, .. }
                    | TraceEvent::Dequeue { id, .. }
                    | TraceEvent::Complete { id, .. }
                    | TraceEvent::RetryScheduled { id, .. }
                    | TraceEvent::Failover { id, .. } => id == span.id,
                    TraceEvent::Dispatch {
                        device, start_us, ..
                    } => device == span.device && start_us == span.dispatch_us,
                    TraceEvent::ResidencyLoad { t_us, device, .. }
                    | TraceEvent::SessionStateLoad { t_us, device, .. } => {
                        device == span.device
                            && t_us >= span.dispatch_us
                            && t_us <= span.complete_us
                    }
                    _ => false,
                })
                .copied()
                .collect();
            SlowRequest { span, events }
        })
        .collect();

    TraceAnalysis {
        spans,
        slowest,
        totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-request batch with a weight load and a state reload:
    /// dispatch at 10, stalls 10+2, completes at 30 and 34.
    fn journal() -> TraceJournal {
        let events = vec![
            TraceEvent::Admit {
                t_us: 0.0,
                id: 1,
                model: 0,
                predicted_us: 25.0,
            },
            TraceEvent::Enqueue {
                t_us: 0.0,
                id: 1,
                model: 0,
                depth: 1,
            },
            TraceEvent::Enqueue {
                t_us: 4.0,
                id: 2,
                model: 0,
                depth: 2,
            },
            TraceEvent::Dequeue {
                t_us: 10.0,
                id: 1,
                model: 0,
                queued_us: 10.0,
            },
            TraceEvent::Dequeue {
                t_us: 10.0,
                id: 2,
                model: 0,
                queued_us: 6.0,
            },
            TraceEvent::BatchFormed {
                t_us: 10.0,
                model: 0,
                size: 2,
                max_frames: 8,
                total_frames: 14,
            },
            TraceEvent::ResidencyLoad {
                t_us: 10.0,
                device: 0,
                model: 0,
                load_us: 10.0,
                stall_cycles: 2000,
                evicted: 0,
            },
            TraceEvent::SessionStateLoad {
                t_us: 20.0,
                device: 0,
                session: 9,
                load_us: 2.0,
                stall_cycles: 400,
                evicted: 0,
            },
            TraceEvent::Dispatch {
                t_us: 10.0,
                device: 0,
                model: 0,
                size: 2,
                start_us: 10.0,
                busy_us: 24.0,
            },
            TraceEvent::Complete {
                t_us: 30.0,
                id: 1,
                device: 0,
                model: 0,
                arrival_us: 0.0,
                dispatch_us: 10.0,
                deadline_met: true,
            },
            TraceEvent::Complete {
                t_us: 34.0,
                id: 2,
                device: 0,
                model: 0,
                arrival_us: 4.0,
                dispatch_us: 10.0,
                deadline_met: false,
            },
        ];
        TraceJournal {
            events,
            dropped: 0,
            capacity: 64,
        }
    }

    #[test]
    fn decomposition_sums_to_observed_latency() {
        let analysis = analyze(&journal());
        assert_eq!(analysis.spans.len(), 2);
        for span in &analysis.spans {
            assert_eq!(
                span.total_us(),
                span.latency_us(),
                "span {} decomposition does not sum",
                span.id
            );
        }
        let s1 = analysis.spans[0];
        assert_eq!(s1.id, 1);
        assert_eq!(s1.queue_us, 10.0);
        assert_eq!(s1.load_us, 10.0);
        assert_eq!(s1.state_us, 2.0);
        assert_eq!(s1.compute_us, 8.0);
        let s2 = analysis.spans[1];
        // Request 2 arrived later: less queue, same stalls, more
        // compute (its frames finish later).
        assert_eq!(s2.queue_us, 6.0);
        assert_eq!(s2.load_us, 10.0);
        assert_eq!(s2.compute_us, 12.0);
        assert_eq!(
            analysis.totals.latency_us,
            analysis.totals.queue_us
                + analysis.totals.load_us
                + analysis.totals.state_us
                + analysis.totals.compute_us
        );
    }

    #[test]
    fn slowest_exemplars_carry_their_event_slices() {
        let analysis = analyze(&journal());
        assert_eq!(analysis.slowest.len(), 2);
        // Request 1 is slower end-to-end (30 µs vs 30 − 4 = 30... id 1:
        // 30, id 2: 30). Equal latency ties break by id.
        assert_eq!(analysis.slowest[0].span.id, 1);
        let kinds: Vec<&str> = analysis.slowest[0]
            .events
            .iter()
            .map(|e| e.kind())
            .collect();
        assert_eq!(
            kinds,
            vec![
                "admit",
                "enqueue",
                "dequeue",
                "residency_load",
                "session_state_load",
                "dispatch",
                "complete"
            ]
        );
        // The other member's id-events don't leak into this slice.
        assert!(!analysis.slowest[0].events.iter().any(|e| matches!(
            e,
            TraceEvent::Enqueue { id: 2, .. } | TraceEvent::Complete { id: 2, .. }
        )));
    }

    #[test]
    fn missing_dispatch_folds_stalls_into_compute() {
        let mut j = journal();
        // Simulate ring overwrite of the batch's device-side events.
        j.events.retain(|e| {
            !matches!(
                e,
                TraceEvent::Dispatch { .. }
                    | TraceEvent::ResidencyLoad { .. }
                    | TraceEvent::SessionStateLoad { .. }
            )
        });
        j.dropped = 3;
        let analysis = analyze(&j);
        assert_eq!(analysis.spans.len(), 2);
        let s1 = analysis.spans[0];
        assert_eq!(s1.load_us, 0.0);
        assert_eq!(s1.state_us, 0.0);
        assert_eq!(s1.compute_us, 20.0);
        assert_eq!(s1.total_us(), s1.latency_us());
    }

    #[test]
    fn empty_journal_analyzes_to_nothing() {
        let analysis = analyze(&TraceJournal::default());
        assert!(analysis.spans.is_empty());
        assert!(analysis.slowest.is_empty());
        assert_eq!(analysis.totals, PathTotals::default());
    }
}
