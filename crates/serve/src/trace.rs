//! Flight-recorder tracing and streaming telemetry for the serving stack.
//!
//! End-of-run aggregates ([`ServeMetrics`]) say *that* a p99.9 deadline
//! was missed; this module records *why*: every request-lifecycle event —
//! admission, queueing, batch formation, residency loads, device
//! dispatch, completion — is stamped on the **virtual clock** and kept in
//! a bounded [`FlightRecorder`] ring buffer. Because every timestamp is
//! virtual, the journal inherits the executor-determinism contract: the
//! same run traced under [`ExecutorKind::Inline`](crate::ExecutorKind) and
//! [`ExecutorKind::ThreadPool`](crate::ExecutorKind) produces a
//! bit-identical event sequence (asserted by `sched_sweep` and the
//! `trace_journal` proptests).
//!
//! Three layers, cheapest first:
//!
//! * [`LatencyHistogram`] — fixed-bucket log-linear histogram replacing
//!   store-every-sample latency vectors: O(1) memory at million-request
//!   scale, quantiles that never underestimate and overestimate by at
//!   most 1/16 (see [`LatencyHistogram::RELATIVE_ERROR_BOUND`]).
//! * [`StageAttribution`] — per-(device, model) totals of where virtual
//!   time went: queue wait, weight-load stalls, compute, padding waste.
//! * [`FlightRecorder`] — the bounded event journal proper, enabled per
//!   run via [`TraceConfig`]. Recording is a branch plus a `Copy` store
//!   into a pre-sized buffer: **zero steady-state heap allocations**
//!   (enforced by `tests/kernel_alloc.rs`), and the disabled mode is a
//!   single predictable branch.
//!
//! Exporters turn a captured [`RunTrace`] into standard tooling formats:
//! [`chrome_trace_json`] renders a Chrome trace-event document loadable
//! in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`, and
//! [`prometheus_snapshot`] / [`prometheus_snapshot_full`] render a
//! Prometheus text-exposition snapshot (the full form additionally
//! merges [`SchedStats`], the newest
//! [`Timeline`] sample, and the
//! [`HealthReport`]). The [`analyze`]
//! submodule reconstructs per-request critical paths from a captured
//! journal. See `docs/observability.md` for the event schema and a
//! Perfetto walkthrough.

pub mod analyze;

use crate::device::BatchExecution;
use crate::health::{HealthEvent, HealthReport, HealthRuleKind};
use crate::metrics::{LatencySummary, ServeMetrics};
use crate::request::{Request, Response};
use crate::sched::SchedStats;
use crate::timeline::Timeline;
use ernn_fpga::Device;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Per-run tracing configuration: disabled, or enabled with a journal
/// capacity.
///
/// The capacity bounds memory *and* allocation behavior: the recorder
/// buffer is pre-sized at construction, and once full the journal keeps
/// the most recent events (flight-recorder semantics) rather than
/// growing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceConfig {
    capacity: usize,
}

impl TraceConfig {
    /// Tracing off (the default): recording is a single branch, the
    /// journal stays empty, and nothing is allocated.
    pub fn disabled() -> Self {
        TraceConfig { capacity: 0 }
    }

    /// Tracing on, keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — use [`TraceConfig::disabled`].
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "an enabled trace needs a nonzero capacity");
        TraceConfig { capacity }
    }

    /// Whether events will be recorded.
    pub fn is_enabled(self) -> bool {
        self.capacity > 0
    }

    /// Journal capacity in events (0 when disabled).
    pub fn capacity(self) -> usize {
        self.capacity
    }
}

/// One request-lifecycle event, stamped on the virtual clock.
///
/// Events are `Copy` with fixed-size payloads — recording one is a plain
/// store, never an allocation — so list-shaped facts are carried as
/// counts (e.g. [`TraceEvent::ResidencyLoad::evicted`] is how *many*
/// models were evicted; the eviction set itself lives in
/// [`SchedStats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An arrival passed admission control into the queue.
    Admit {
        /// Virtual time of the decision (µs).
        t_us: f64,
        /// Request id.
        id: u64,
        /// Target model.
        model: usize,
        /// The admission predictor's completion estimate (µs).
        predicted_us: f64,
    },
    /// An arrival was rejected by admission control (predicted late).
    Shed {
        /// Virtual time of the decision (µs).
        t_us: f64,
        /// Request id.
        id: u64,
        /// Target model.
        model: usize,
        /// The admission predictor's completion estimate (µs).
        predicted_us: f64,
        /// The deadline the estimate overshot (µs).
        deadline_us: f64,
    },
    /// A request entered the scheduling queue (or single-model batcher).
    Enqueue {
        /// Virtual time (µs).
        t_us: f64,
        /// Request id.
        id: u64,
        /// Target model.
        model: usize,
        /// Queue depth including this request.
        depth: usize,
    },
    /// A request left the queue into a forming batch.
    Dequeue {
        /// Virtual time (µs).
        t_us: f64,
        /// Request id.
        id: u64,
        /// Target model.
        model: usize,
        /// Time spent queued, arrival → batch formation (µs).
        queued_us: f64,
    },
    /// A batch was formed, with the padding waste batching accepted.
    BatchFormed {
        /// Virtual time (µs).
        t_us: f64,
        /// The batch's (single) model.
        model: usize,
        /// Member count.
        size: usize,
        /// Longest member utterance (frames) — the padded length.
        max_frames: u64,
        /// Sum of member utterance lengths (frames); padding waste is
        /// `size · max_frames − total_frames` frames.
        total_frames: u64,
    },
    /// A cold weight image was streamed onto a device (residency miss).
    ResidencyLoad {
        /// Virtual time the stall begins on the device (µs).
        t_us: f64,
        /// Stalled device.
        device: usize,
        /// Model being loaded.
        model: usize,
        /// Stall length (µs).
        load_us: f64,
        /// The same stall in device clock cycles
        /// ([`Device::cycles_for_us`](ernn_fpga::Device::cycles_for_us)).
        stall_cycles: u64,
        /// Number of models evicted to make room.
        evicted: usize,
    },
    /// A session's recurrent-state image was streamed back onto a device
    /// (state residency miss: the state had been evicted since the
    /// session's previous chunk).
    SessionStateLoad {
        /// Virtual time the stall begins on the device (µs).
        t_us: f64,
        /// Stalled device.
        device: usize,
        /// The streaming session whose state is reloading.
        session: u64,
        /// Stall length (µs).
        load_us: f64,
        /// The same stall in device clock cycles
        /// ([`Device::cycles_for_us`](ernn_fpga::Device::cycles_for_us)).
        stall_cycles: u64,
        /// Number of resident images evicted to make room.
        evicted: usize,
    },
    /// A formed batch started occupying a device.
    Dispatch {
        /// Virtual time of the placement decision (µs).
        t_us: f64,
        /// Chosen device.
        device: usize,
        /// The batch's model.
        model: usize,
        /// Member count.
        size: usize,
        /// When the batch starts occupying the device (µs).
        start_us: f64,
        /// Device occupancy, load stall included (µs).
        busy_us: f64,
    },
    /// One request's frames finished streaming through the device.
    Complete {
        /// Virtual completion time (µs).
        t_us: f64,
        /// Request id.
        id: u64,
        /// Serving device.
        device: usize,
        /// Served model.
        model: usize,
        /// The request's arrival time (µs) — `t_us − arrival_us` is the
        /// end-to-end latency.
        arrival_us: f64,
        /// When the request's batch started on the device (µs).
        dispatch_us: f64,
        /// Whether the deadline (if any) was met.
        deadline_met: bool,
    },
    /// A device crashed: its BRAM contents are lost and it leaves the
    /// pool until recovery.
    DeviceDown {
        /// Virtual time of the crash (µs).
        t_us: f64,
        /// The crashed device.
        device: usize,
        /// How long it stays down (µs); `INFINITY` = permanent.
        down_us: f64,
    },
    /// A crashed device recovered and rejoined the pool (cold: its BRAM
    /// is empty until images re-load).
    DeviceUp {
        /// Virtual time of the recovery (µs).
        t_us: f64,
        /// The recovered device.
        device: usize,
    },
    /// A fault aborted a request's in-flight batch; the request re-enters
    /// the scheduler after a capped exponential backoff.
    RetryScheduled {
        /// Virtual time of the abort (µs).
        t_us: f64,
        /// The aborted request.
        id: u64,
        /// Device the aborted batch was running on.
        device: usize,
        /// Retry attempt number (1-indexed).
        attempt: u32,
        /// When the request re-enters the scheduler (µs).
        retry_at_us: f64,
    },
    /// A retried request landed on a different device than the one its
    /// aborted batch ran on — a failover re-placement.
    Failover {
        /// Virtual time of the re-placement (µs).
        t_us: f64,
        /// The re-placed request.
        id: u64,
        /// Device the aborted batch ran on.
        from_device: usize,
        /// Surviving device that took the request.
        to_device: usize,
    },
    /// A pinned streaming session re-pinned to a new device after a
    /// crash, its recurrent-state image recharged on the virtual clock.
    StateMigration {
        /// Virtual time of the re-pin (µs).
        t_us: f64,
        /// The migrated session.
        session: u64,
        /// The crashed (or drained) device the session left.
        from_device: usize,
        /// The surviving device it re-pinned to.
        to_device: usize,
        /// Stall charged to re-materialize the state image (µs).
        reload_us: f64,
    },
    /// A [`HealthMonitor`](crate::health::HealthMonitor) rule fired on a
    /// timeline sample.
    Health {
        /// Virtual time of the timeline sample that fired (µs).
        t_us: f64,
        /// The rule that fired.
        rule: HealthRuleKind,
        /// Device index for per-device rules; `None` for run-wide rules.
        device: Option<usize>,
        /// Observed value (burn multiple, stuck samples, loads/retries
        /// per window).
        value: f64,
        /// The configured threshold the value crossed.
        threshold: f64,
    },
    /// The cluster router forwarded a request to a shard, charging the
    /// inter-node transfer of its feature frames.
    Forward {
        /// Virtual time of the routing decision (µs).
        t_us: f64,
        /// Request id (cluster-global).
        id: u64,
        /// Target model (cluster-global id).
        model: usize,
        /// The shard the request was forwarded to.
        shard: usize,
        /// Wire time charged for the frames (µs); the request reaches
        /// the shard's scheduler at `t_us + transfer_us` at the
        /// earliest.
        transfer_us: f64,
    },
    /// A model artifact finished replicating onto a shard (chain
    /// replication: each replica streams from the previous holder).
    Replicate {
        /// Virtual time the replica becomes servable (µs).
        t_us: f64,
        /// The replicated model (cluster-global id).
        model: usize,
        /// The shard the artifact bytes streamed from.
        from_shard: usize,
        /// The shard that now holds a servable replica.
        to_shard: usize,
        /// Serialized artifact size (bytes) — the replication unit.
        bytes: u64,
        /// Wire time charged for the artifact bytes (µs).
        transfer_us: f64,
    },
    /// A shard was killed by the cluster fault plan: it leaves the
    /// routing table and its undispatched backlog is reclaimed.
    ShardDown {
        /// Virtual time of the kill (µs).
        t_us: f64,
        /// The killed shard.
        shard: usize,
        /// Backlog requests reclaimed from it (rerouted to survivors
        /// when failover is on, shed otherwise).
        reclaimed: usize,
    },
    /// A streaming session re-pinned from a dead shard to a survivor —
    /// the cluster-level analogue of [`TraceEvent::StateMigration`].
    SessionReroute {
        /// Virtual time of the re-pin (µs).
        t_us: f64,
        /// The rerouted session (cluster-global id).
        session: u64,
        /// The dead shard the session left.
        from_shard: usize,
        /// The surviving shard it re-pinned to.
        to_shard: usize,
    },
}

impl TraceEvent {
    /// The event's virtual timestamp (µs).
    pub fn t_us(&self) -> f64 {
        match *self {
            TraceEvent::Admit { t_us, .. }
            | TraceEvent::Shed { t_us, .. }
            | TraceEvent::Enqueue { t_us, .. }
            | TraceEvent::Dequeue { t_us, .. }
            | TraceEvent::BatchFormed { t_us, .. }
            | TraceEvent::ResidencyLoad { t_us, .. }
            | TraceEvent::SessionStateLoad { t_us, .. }
            | TraceEvent::Dispatch { t_us, .. }
            | TraceEvent::Complete { t_us, .. }
            | TraceEvent::DeviceDown { t_us, .. }
            | TraceEvent::DeviceUp { t_us, .. }
            | TraceEvent::RetryScheduled { t_us, .. }
            | TraceEvent::Failover { t_us, .. }
            | TraceEvent::StateMigration { t_us, .. }
            | TraceEvent::Health { t_us, .. }
            | TraceEvent::Forward { t_us, .. }
            | TraceEvent::Replicate { t_us, .. }
            | TraceEvent::ShardDown { t_us, .. }
            | TraceEvent::SessionReroute { t_us, .. } => t_us,
        }
    }

    /// A short stable name for the event kind (used by exporters).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Admit { .. } => "admit",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::BatchFormed { .. } => "batch_formed",
            TraceEvent::ResidencyLoad { .. } => "residency_load",
            TraceEvent::SessionStateLoad { .. } => "session_state_load",
            TraceEvent::Dispatch { .. } => "dispatch",
            TraceEvent::Complete { .. } => "complete",
            TraceEvent::DeviceDown { .. } => "device_down",
            TraceEvent::DeviceUp { .. } => "device_up",
            TraceEvent::RetryScheduled { .. } => "retry_scheduled",
            TraceEvent::Failover { .. } => "failover",
            TraceEvent::StateMigration { .. } => "state_migration",
            TraceEvent::Health { .. } => "health",
            TraceEvent::Forward { .. } => "forward",
            TraceEvent::Replicate { .. } => "replicate",
            TraceEvent::ShardDown { .. } => "shard_down",
            TraceEvent::SessionReroute { .. } => "session_reroute",
        }
    }
}

/// Bounded virtual-time event journal with flight-recorder semantics:
/// once full, the oldest event is overwritten, so the buffer always
/// holds the most recent `capacity` events.
///
/// The buffer is pre-sized at construction; [`FlightRecorder::record`]
/// on the steady state is a branch plus a `Copy` store and performs no
/// heap allocation (proved by `tests/kernel_alloc.rs`). A disabled
/// recorder ([`TraceConfig::disabled`]) reduces `record` to one
/// predictable branch.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    buf: Vec<TraceEvent>,
    /// Overwrite cursor once the buffer is saturated: index of the
    /// *oldest* retained event.
    head: usize,
    /// Total events offered (recorded + overwritten).
    offered: u64,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder for one run; allocates the full buffer up front when
    /// the config is enabled, nothing otherwise.
    pub fn new(config: TraceConfig) -> Self {
        FlightRecorder {
            buf: Vec::with_capacity(config.capacity()),
            head: 0,
            offered: 0,
            capacity: config.capacity(),
        }
    }

    /// A recorder that drops everything (tracing off).
    pub fn disabled() -> Self {
        Self::new(TraceConfig::disabled())
    }

    /// Whether this recorder keeps events.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Journal capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events offered over the run, including overwritten ones.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Events lost to ring-buffer overwrite.
    pub fn dropped(&self) -> u64 {
        self.offered - self.buf.len() as u64
    }

    /// Records one event. Steady state performs no heap allocation; a
    /// disabled recorder returns after one branch.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        self.offered += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Consumes the recorder into the journal a report carries.
    pub fn into_journal(self) -> TraceJournal {
        TraceJournal {
            events: self.events(),
            dropped: self.dropped(),
            capacity: self.capacity,
        }
    }
}

/// The captured event journal of one run, oldest event first.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceJournal {
    /// Retained events in virtual-time order.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer overwrite (0 unless the run outgrew
    /// the configured capacity).
    pub dropped: u64,
    /// The capacity the run was traced with (0 = tracing was off).
    pub capacity: usize,
}

/// Number of sub-buckets per power-of-two octave in
/// [`LatencyHistogram`]: the bucket layout is fixed at compile time, so
/// histograms from different runs always merge and compare.
pub const HIST_SUB_BUCKETS: usize = 16;
/// Octaves covered: values in `[1 µs, 2^40 µs)` land in a log-linear
/// bucket; below is one underflow bucket, above one overflow bucket.
const HIST_OCTAVES: usize = 40;
const HIST_BUCKETS: usize = 1 + HIST_OCTAVES * HIST_SUB_BUCKETS + 1;

/// Streaming fixed-bucket log-linear latency histogram (µs).
///
/// Replaces store-every-sample latency vectors in [`ServeMetrics`]:
/// memory is a fixed 642-bucket array regardless of sample count, and
/// [`LatencyHistogram::record`] is O(1) with no allocation. Count, sum
/// (→ mean), and max are tracked exactly; quantiles come from the
/// containing bucket's **upper** bound (clamped to the exact max), so a
/// reported quantile **never underestimates** the exact nearest-rank
/// sample and overestimates it by at most
/// [`LatencyHistogram::RELATIVE_ERROR_BOUND`] (plus an absolute 1 µs for
/// sub-µs samples, which share one underflow bucket).
///
/// Bucket indexing is pure bit arithmetic on the IEEE-754 exponent and
/// top mantissa bits — no `log2`, so results are deterministic across
/// platforms. Non-finite or negative samples are counted (in the
/// underflow/overflow buckets) without poisoning the exact sum, so a NaN
/// can never panic or corrupt the metrics path.
#[derive(Clone, PartialEq)]
pub struct LatencyHistogram {
    buckets: Box<[u64; HIST_BUCKETS]>,
    count: u64,
    sum_us: f64,
    max_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Worst-case relative overestimate of a quantile for samples ≥ 1 µs:
    /// one bucket width over the bucket's lower edge, `1/HIST_SUB_BUCKETS`.
    pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / HIST_SUB_BUCKETS as f64;

    /// An empty histogram (one fixed-size allocation).
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new([0; HIST_BUCKETS]),
            count: 0,
            sum_us: 0.0,
            max_us: 0.0,
        }
    }

    /// Records one sample (µs). O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, v_us: f64) {
        self.count += 1;
        if v_us.is_finite() {
            self.sum_us += v_us;
            if v_us > self.max_us {
                self.max_us = v_us;
            }
        }
        self.buckets[Self::bucket_index(v_us)] += 1;
    }

    /// Total samples recorded (non-finite samples included).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of the finite samples (µs).
    pub fn sum_us(&self) -> f64 {
        self.sum_us
    }

    /// Exact mean of the finite samples (µs); 0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.count > 0 {
            self.sum_us / self.count as f64
        } else {
            0.0
        }
    }

    /// Exact maximum finite sample (µs); 0 when empty.
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// Nearest-rank quantile from the bucket boundaries: the upper bound
    /// of the bucket containing the rank-`⌈q·count⌉` sample, clamped to
    /// the exact max. Never underestimates the exact nearest-rank value;
    /// overestimates by ≤ [`Self::RELATIVE_ERROR_BOUND`] relative (for
    /// samples ≥ 1 µs).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile rank {q}");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_us(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// The standard summary derived from the histogram: count, exact
    /// mean and max, bucket-bound p50/p95/p99/p99.9.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count as usize,
            mean_us: self.mean_us(),
            p50_us: self.quantile(0.50),
            p95_us: self.quantile(0.95),
            p99_us: self.quantile(0.99),
            p999_us: self.quantile(0.999),
            max_us: self.max_us,
        }
    }

    /// Merges another histogram into this one (bucket layouts are fixed,
    /// so merging is element-wise).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        if other.max_us > self.max_us {
            self.max_us = other.max_us;
        }
    }

    /// Cumulative non-empty buckets as `(upper_bound_us, cumulative
    /// count)`, ending with `(∞, count)` — the Prometheus histogram
    /// exposition shape.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                seen += n;
                out.push((Self::bucket_upper_us(i), seen));
            }
        }
        if out.last().is_none_or(|&(le, _)| le.is_finite()) {
            out.push((f64::INFINITY, self.count));
        }
        out
    }

    /// Bucket index for a sample: 0 for anything below 1 µs (or
    /// non-orderable), the last bucket for ≥ 2^40 µs (or +∞), otherwise
    /// log-linear from the IEEE-754 exponent and top mantissa bits.
    #[inline]
    fn bucket_index(v_us: f64) -> usize {
        if v_us.is_nan() || v_us < 1.0 {
            // NaN, negative, and sub-µs samples share the underflow
            // bucket.
            return 0;
        }
        let bits = v_us.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
        if exp >= HIST_OCTAVES as i64 {
            return HIST_BUCKETS - 1;
        }
        let sub = ((bits >> 48) & 0xf) as usize;
        1 + exp as usize * HIST_SUB_BUCKETS + sub
    }

    /// Upper (inclusive-reporting) bound of a bucket in µs.
    fn bucket_upper_us(index: usize) -> f64 {
        if index == 0 {
            return 1.0;
        }
        if index == HIST_BUCKETS - 1 {
            return f64::INFINITY;
        }
        let i = index - 1;
        let exp = (i / HIST_SUB_BUCKETS) as i32;
        let sub = (i % HIST_SUB_BUCKETS) as f64;
        f64::powi(2.0, exp) * (1.0 + (sub + 1.0) / HIST_SUB_BUCKETS as f64)
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 642 raw buckets would drown assertion diffs; show the summary
        // plus the non-empty buckets only.
        let nonzero: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect();
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("sum_us", &self.sum_us)
            .field("max_us", &self.max_us)
            .field("nonzero_buckets", &nonzero)
            .finish()
    }
}

/// Where one (device, model) pair's virtual time went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageBreakdown {
    /// Requests served through this cell.
    pub requests: u64,
    /// Batches dispatched through this cell.
    pub batches: u64,
    /// Total queue wait across member requests, arrival → device start
    /// (µs).
    pub queue_us: f64,
    /// Weight-image streaming stalls charged to this cell (µs).
    pub load_us: f64,
    /// Session-state reload stalls charged to this cell (µs) — the cost
    /// of resuming a streaming session whose recurrent state was evicted
    /// between chunks.
    pub state_us: f64,
    /// Device compute occupancy, load stalls excluded (µs).
    pub compute_us: f64,
    /// Padding waste: the padded frames' worth of steady-state frame
    /// time the batch shape implies — the cost
    /// [`PaddingModel`](crate::sched::PaddingModel) gates on (µs).
    pub padding_us: f64,
    /// Occupancy wasted by fault-aborted batches: the device burned
    /// these cycles but no request completed (µs). Not part of
    /// [`Self::busy_us`], which attributes *productive* occupancy only.
    pub aborted_us: f64,
}

impl StageBreakdown {
    /// Device occupancy attributed to this cell: weight-load stalls +
    /// state-load stalls + compute.
    pub fn busy_us(&self) -> f64 {
        self.load_us + self.state_us + self.compute_us
    }
}

/// Per-(device, model) stage-time attribution for one run.
///
/// Charged once per dispatched batch; after a cell's first batch
/// (warmup), further charges mutate the existing entry without
/// allocating.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageAttribution {
    cells: BTreeMap<(usize, usize), StageBreakdown>,
}

impl StageAttribution {
    /// An empty attribution table.
    pub fn new() -> Self {
        StageAttribution::default()
    }

    /// Adds one batch's stage times to the `(device, model)` cell.
    pub fn charge(&mut self, device: usize, model: usize, delta: StageBreakdown) {
        let cell = self.cells.entry((device, model)).or_default();
        cell.requests += delta.requests;
        cell.batches += delta.batches;
        cell.queue_us += delta.queue_us;
        cell.load_us += delta.load_us;
        cell.state_us += delta.state_us;
        cell.compute_us += delta.compute_us;
        cell.padding_us += delta.padding_us;
        cell.aborted_us += delta.aborted_us;
    }

    /// The accumulated breakdown for a cell (zeroes if it never served).
    pub fn get(&self, device: usize, model: usize) -> StageBreakdown {
        self.cells
            .get(&(device, model))
            .copied()
            .unwrap_or_default()
    }

    /// Iterates cells as `(device, model, breakdown)`, ordered by device
    /// then model.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &StageBreakdown)> {
        self.cells.iter().map(|(&(d, m), b)| (d, m, b))
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether any cell was charged.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Everything observability captured for one run: the event journal plus
/// the stage-time attribution table. Carried on
/// [`ServeReport`](crate::ServeReport) and
/// [`SchedReport`](crate::sched::SchedReport); derived `PartialEq` is
/// what the executor bit-identity assertions compare.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTrace {
    /// The captured event journal (empty when tracing was disabled).
    pub journal: TraceJournal,
    /// Per-(device, model) stage-time totals (always collected — the
    /// cost is one table update per batch).
    pub attribution: StageAttribution,
}

/// The event-loop side of observability: owns one run's recorder and
/// attribution table and translates lifecycle moments into
/// [`TraceEvent`]s, so both runtimes emit an identical event vocabulary
/// from one code path.
pub(crate) struct Observer {
    recorder: FlightRecorder,
    attribution: StageAttribution,
}

impl Observer {
    pub(crate) fn new(config: TraceConfig) -> Self {
        Observer {
            recorder: FlightRecorder::new(config),
            attribution: StageAttribution::new(),
        }
    }

    /// An arrival passed admission control.
    #[inline]
    pub(crate) fn admitted(&mut self, t_us: f64, request: &Request, predicted_us: f64) {
        self.recorder.record(TraceEvent::Admit {
            t_us,
            id: request.id,
            model: request.model,
            predicted_us,
        });
    }

    /// An arrival was shed by admission control.
    #[inline]
    pub(crate) fn shed(&mut self, t_us: f64, request: &Request, predicted_us: f64) {
        self.recorder.record(TraceEvent::Shed {
            t_us,
            id: request.id,
            model: request.model,
            predicted_us,
            deadline_us: request.deadline_us.unwrap_or(f64::INFINITY),
        });
    }

    /// A request entered the queue/batcher at the given resulting depth.
    #[inline]
    pub(crate) fn enqueued(&mut self, t_us: f64, request: &Request, depth: usize) {
        self.recorder.record(TraceEvent::Enqueue {
            t_us,
            id: request.id,
            model: request.model,
            depth,
        });
    }

    /// A cold weight image is streaming onto `device` starting at
    /// `start_us`; translates the stall into device cycles via the
    /// [`Device::cycles_for_us`] hook.
    #[inline]
    pub(crate) fn residency_load(
        &mut self,
        start_us: f64,
        device: usize,
        model: usize,
        load_us: f64,
        evicted: usize,
    ) {
        self.recorder.record(TraceEvent::ResidencyLoad {
            t_us: start_us,
            device,
            model,
            load_us,
            stall_cycles: Device::cycles_for_us(load_us),
            evicted,
        });
    }

    /// A session's evicted recurrent state is streaming back onto
    /// `device` starting at `start_us`.
    #[inline]
    pub(crate) fn session_state_load(
        &mut self,
        start_us: f64,
        device: usize,
        session: u64,
        load_us: f64,
        evicted: usize,
    ) {
        self.recorder.record(TraceEvent::SessionStateLoad {
            t_us: start_us,
            device,
            session,
            load_us,
            stall_cycles: Device::cycles_for_us(load_us),
            evicted,
        });
    }

    /// A formed batch landed on a device: records per-member dequeues,
    /// the batch-formation and dispatch events, and charges the
    /// (device, model) attribution cell — queue wait from arrivals,
    /// weight-load/state-load/compute split of the device occupancy, and
    /// padding waste at the model's steady-state frame time (`ii_cycles`
    /// per frame).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn batch_dispatched(
        &mut self,
        t_us: f64,
        model: usize,
        batch: &[Request],
        frame_counts: &[u64],
        exec: &BatchExecution,
        load_us: f64,
        state_us: f64,
        ii_cycles: u64,
    ) {
        let size = batch.len();
        let max_frames = frame_counts.iter().copied().max().unwrap_or(0);
        let total_frames: u64 = frame_counts.iter().sum();
        let mut queue_us = 0.0;
        for r in batch {
            self.recorder.record(TraceEvent::Dequeue {
                t_us,
                id: r.id,
                model: r.model,
                queued_us: t_us - r.arrival_us,
            });
            queue_us += exec.start_us - r.arrival_us;
        }
        self.recorder.record(TraceEvent::BatchFormed {
            t_us,
            model,
            size,
            max_frames,
            total_frames,
        });
        self.recorder.record(TraceEvent::Dispatch {
            t_us,
            device: exec.device,
            model,
            size,
            start_us: exec.start_us,
            busy_us: exec.free_us - exec.start_us,
        });
        let padded_frames = size as u64 * max_frames - total_frames;
        self.attribution.charge(
            exec.device,
            model,
            StageBreakdown {
                requests: size as u64,
                batches: 1,
                queue_us,
                load_us,
                state_us,
                compute_us: exec.free_us - exec.start_us - load_us - state_us,
                padding_us: padded_frames as f64 * ii_cycles as f64 * Device::clock_period_us(),
                aborted_us: 0.0,
            },
        );
    }

    /// A fault aborted a forming batch after it had occupied the device
    /// for `aborted_us`: the waste is attributed to the cell, but no
    /// requests, batches, or productive stage time are counted.
    pub(crate) fn batch_aborted(&mut self, device: usize, model: usize, aborted_us: f64) {
        self.attribution.charge(
            device,
            model,
            StageBreakdown {
                aborted_us,
                ..StageBreakdown::default()
            },
        );
    }

    /// A device crashed at `t_us` and stays down for `down_us`.
    #[inline]
    pub(crate) fn device_down(&mut self, t_us: f64, device: usize, down_us: f64) {
        self.recorder.record(TraceEvent::DeviceDown {
            t_us,
            device,
            down_us,
        });
    }

    /// A crashed device recovered at `t_us`.
    #[inline]
    pub(crate) fn device_up(&mut self, t_us: f64, device: usize) {
        self.recorder.record(TraceEvent::DeviceUp { t_us, device });
    }

    /// A request's batch aborted at `t_us`; it retries at `retry_at_us`.
    #[inline]
    pub(crate) fn retry_scheduled(
        &mut self,
        t_us: f64,
        id: u64,
        device: usize,
        attempt: u32,
        retry_at_us: f64,
    ) {
        self.recorder.record(TraceEvent::RetryScheduled {
            t_us,
            id,
            device,
            attempt,
            retry_at_us,
        });
    }

    /// A retried request re-placed onto a surviving device.
    #[inline]
    pub(crate) fn failover(&mut self, t_us: f64, id: u64, from_device: usize, to_device: usize) {
        self.recorder.record(TraceEvent::Failover {
            t_us,
            id,
            from_device,
            to_device,
        });
    }

    /// A streaming session re-pinned from `from_device` to `to_device`.
    #[inline]
    pub(crate) fn state_migration(
        &mut self,
        t_us: f64,
        session: u64,
        from_device: usize,
        to_device: usize,
        reload_us: f64,
    ) {
        self.recorder.record(TraceEvent::StateMigration {
            t_us,
            session,
            from_device,
            to_device,
            reload_us,
        });
    }

    /// A health rule fired; mirrors the [`HealthEvent`] into the journal
    /// so alerts land inline with the lifecycle events that caused them.
    #[inline]
    pub(crate) fn health(&mut self, event: &HealthEvent) {
        self.recorder.record(TraceEvent::Health {
            t_us: event.t_us,
            rule: event.rule,
            device: event.device,
            value: event.value,
            threshold: event.threshold,
        });
    }

    /// A served response's frames finished streaming through its device.
    /// Shed responses carry no device and never complete, so they record
    /// nothing here (the [`TraceEvent::Shed`] event already covers them).
    #[inline]
    pub(crate) fn completed(&mut self, r: &Response) {
        let Some(device) = r.device else { return };
        self.recorder.record(TraceEvent::Complete {
            t_us: r.complete_us,
            id: r.id,
            device,
            model: r.model,
            arrival_us: r.arrival_us,
            dispatch_us: r.dispatch_us,
            deadline_met: r.deadline_met,
        });
    }

    /// The cluster router forwarded a request to a shard.
    #[inline]
    pub(crate) fn forwarded(
        &mut self,
        t_us: f64,
        id: u64,
        model: usize,
        shard: usize,
        transfer_us: f64,
    ) {
        self.recorder.record(TraceEvent::Forward {
            t_us,
            id,
            model,
            shard,
            transfer_us,
        });
    }

    /// A model artifact finished replicating onto `to_shard` at `t_us`.
    #[inline]
    pub(crate) fn replicated(
        &mut self,
        t_us: f64,
        model: usize,
        from_shard: usize,
        to_shard: usize,
        bytes: u64,
        transfer_us: f64,
    ) {
        self.recorder.record(TraceEvent::Replicate {
            t_us,
            model,
            from_shard,
            to_shard,
            bytes,
            transfer_us,
        });
    }

    /// A shard was killed, reclaiming `reclaimed` backlog requests.
    #[inline]
    pub(crate) fn shard_down(&mut self, t_us: f64, shard: usize, reclaimed: usize) {
        self.recorder.record(TraceEvent::ShardDown {
            t_us,
            shard,
            reclaimed,
        });
    }

    /// A streaming session re-pinned from a dead shard to a survivor.
    #[inline]
    pub(crate) fn session_reroute(
        &mut self,
        t_us: f64,
        session: u64,
        from_shard: usize,
        to_shard: usize,
    ) {
        self.recorder.record(TraceEvent::SessionReroute {
            t_us,
            session,
            from_shard,
            to_shard,
        });
    }

    /// Finalizes the capture into the report-carried [`RunTrace`].
    pub(crate) fn into_trace(self) -> RunTrace {
        RunTrace {
            journal: self.recorder.into_journal(),
            attribution: self.attribution,
        }
    }
}

/// Formats a float the way both exporters need it: shortest-round-trip
/// via `Display`, which is deterministic for a given bit pattern.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders a [`RunTrace`] as a Chrome trace-event JSON document, loadable
/// in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
///
/// Layout: process 0 is the scheduler (one track per model: queue spans
/// and request spans), process 1 is the device pool (one track per
/// device: batch and weight-load spans). Timestamps are virtual
/// microseconds, so the rendering is byte-identical across executors
/// whenever the journals are.
pub fn chrome_trace_json(trace: &RunTrace) -> String {
    let mut models: Vec<usize> = Vec::new();
    let mut devices: Vec<usize> = Vec::new();
    let mut shards: Vec<usize> = Vec::new();
    let note = |list: &mut Vec<usize>, v: usize| {
        if !list.contains(&v) {
            list.push(v);
        }
    };
    for e in &trace.journal.events {
        match *e {
            TraceEvent::Admit { model, .. }
            | TraceEvent::Shed { model, .. }
            | TraceEvent::Enqueue { model, .. }
            | TraceEvent::Dequeue { model, .. }
            | TraceEvent::BatchFormed { model, .. } => note(&mut models, model),
            TraceEvent::ResidencyLoad { device, model, .. }
            | TraceEvent::Dispatch { device, model, .. }
            | TraceEvent::Complete { device, model, .. } => {
                note(&mut models, model);
                note(&mut devices, device);
            }
            TraceEvent::SessionStateLoad { device, .. }
            | TraceEvent::DeviceDown { device, .. }
            | TraceEvent::DeviceUp { device, .. }
            | TraceEvent::RetryScheduled { device, .. } => note(&mut devices, device),
            TraceEvent::Failover {
                from_device,
                to_device,
                ..
            }
            | TraceEvent::StateMigration {
                from_device,
                to_device,
                ..
            } => {
                note(&mut devices, from_device);
                note(&mut devices, to_device);
            }
            TraceEvent::Health { device, .. } => {
                if let Some(d) = device {
                    note(&mut devices, d);
                }
            }
            TraceEvent::Forward { shard, .. } | TraceEvent::ShardDown { shard, .. } => {
                note(&mut shards, shard)
            }
            TraceEvent::Replicate {
                from_shard,
                to_shard,
                ..
            }
            | TraceEvent::SessionReroute {
                from_shard,
                to_shard,
                ..
            } => {
                note(&mut shards, from_shard);
                note(&mut shards, to_shard);
            }
        }
    }
    models.sort_unstable();
    devices.sort_unstable();
    shards.sort_unstable();

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&ev);
    };

    // Metadata: name the two processes and their tracks.
    push(
        &mut out,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"scheduler\"}}"
            .to_string(),
    );
    push(
        &mut out,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"devices\"}}"
            .to_string(),
    );
    for &m in &models {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{m},\
                 \"args\":{{\"name\":\"model {m}\"}}}}"
            ),
        );
    }
    for &d in &devices {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{d},\
                 \"args\":{{\"name\":\"device {d}\"}}}}"
            ),
        );
    }
    // Process 2 appears only in cluster-router journals: one track per
    // shard for forwards, replication, kills and session reroutes.
    if !shards.is_empty() {
        push(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"cluster\"}}"
                .to_string(),
        );
        for &s in &shards {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":{s},\
                     \"args\":{{\"name\":\"shard {s}\"}}}}"
                ),
            );
        }
    }

    for e in &trace.journal.events {
        let ev = match *e {
            TraceEvent::Admit {
                t_us,
                id,
                model,
                predicted_us,
            } => format!(
                "{{\"name\":\"admit\",\"cat\":\"admission\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":0,\"tid\":{model},\
                 \"args\":{{\"id\":{id},\"predicted_us\":{}}}}}",
                num(t_us),
                num(predicted_us)
            ),
            TraceEvent::Shed {
                t_us,
                id,
                model,
                predicted_us,
                deadline_us,
            } => format!(
                "{{\"name\":\"shed\",\"cat\":\"admission\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":0,\"tid\":{model},\
                 \"args\":{{\"id\":{id},\"predicted_us\":{},\"deadline_us\":{}}}}}",
                num(t_us),
                num(predicted_us),
                num(deadline_us)
            ),
            TraceEvent::Enqueue {
                t_us,
                id,
                model,
                depth,
            } => format!(
                "{{\"name\":\"enqueue\",\"cat\":\"queue\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":0,\"tid\":{model},\
                 \"args\":{{\"id\":{id},\"depth\":{depth}}}}}",
                num(t_us)
            ),
            TraceEvent::Dequeue {
                t_us,
                id,
                model,
                queued_us,
            } => format!(
                // The queue wait rendered as a span ending at dequeue.
                "{{\"name\":\"queued\",\"cat\":\"queue\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{model},\
                 \"args\":{{\"id\":{id}}}}}",
                num(t_us - queued_us),
                num(queued_us)
            ),
            TraceEvent::BatchFormed {
                t_us,
                model,
                size,
                max_frames,
                total_frames,
            } => format!(
                "{{\"name\":\"batch_formed\",\"cat\":\"batch\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":0,\"tid\":{model},\
                 \"args\":{{\"size\":{size},\"max_frames\":{max_frames},\
                 \"padded_frames\":{}}}}}",
                num(t_us),
                size as u64 * max_frames - total_frames
            ),
            TraceEvent::ResidencyLoad {
                t_us,
                device,
                model,
                load_us,
                stall_cycles,
                evicted,
            } => format!(
                "{{\"name\":\"load model {model}\",\"cat\":\"residency\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{device},\
                 \"args\":{{\"stall_cycles\":{stall_cycles},\"evicted\":{evicted}}}}}",
                num(t_us),
                num(load_us)
            ),
            TraceEvent::SessionStateLoad {
                t_us,
                device,
                session,
                load_us,
                stall_cycles,
                evicted,
            } => format!(
                "{{\"name\":\"state session {session}\",\"cat\":\"residency\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{device},\
                 \"args\":{{\"stall_cycles\":{stall_cycles},\"evicted\":{evicted}}}}}",
                num(t_us),
                num(load_us)
            ),
            TraceEvent::Dispatch {
                t_us: _,
                device,
                model,
                size,
                start_us,
                busy_us,
            } => format!(
                "{{\"name\":\"batch model {model} ×{size}\",\"cat\":\"device\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{device},\
                 \"args\":{{\"model\":{model},\"size\":{size}}}}}",
                num(start_us),
                num(busy_us)
            ),
            TraceEvent::Complete {
                t_us,
                id,
                device,
                model,
                arrival_us,
                dispatch_us: _,
                deadline_met,
            } => format!(
                "{{\"name\":\"request {id}\",\"cat\":\"request\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{model},\
                 \"args\":{{\"device\":{device},\"deadline_met\":{deadline_met}}}}}",
                num(arrival_us),
                num(t_us - arrival_us)
            ),
            TraceEvent::DeviceDown {
                t_us,
                device,
                down_us,
            } => format!(
                // A permanent crash (infinite down_us) renders with
                // dur 0 via num(); the instant marker still shows it.
                "{{\"name\":\"down\",\"cat\":\"fault\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{device},\
                 \"args\":{{\"down_us\":{}}}}}",
                num(t_us),
                num(down_us),
                num(down_us)
            ),
            TraceEvent::DeviceUp { t_us, device } => format!(
                "{{\"name\":\"up\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":1,\"tid\":{device},\"args\":{{}}}}",
                num(t_us)
            ),
            TraceEvent::RetryScheduled {
                t_us,
                id,
                device,
                attempt,
                retry_at_us,
            } => format!(
                "{{\"name\":\"retry {id}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":1,\"tid\":{device},\
                 \"args\":{{\"id\":{id},\"attempt\":{attempt},\"retry_at_us\":{}}}}}",
                num(t_us),
                num(retry_at_us)
            ),
            TraceEvent::Failover {
                t_us,
                id,
                from_device,
                to_device,
            } => format!(
                "{{\"name\":\"failover {id}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":1,\"tid\":{to_device},\
                 \"args\":{{\"id\":{id},\"from_device\":{from_device}}}}}",
                num(t_us)
            ),
            TraceEvent::StateMigration {
                t_us,
                session,
                from_device,
                to_device,
                reload_us,
            } => format!(
                "{{\"name\":\"migrate session {session}\",\"cat\":\"fault\",\"ph\":\"i\",\
                 \"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{to_device},\
                 \"args\":{{\"session\":{session},\"from_device\":{from_device},\
                 \"reload_us\":{}}}}}",
                num(t_us),
                num(reload_us)
            ),
            TraceEvent::Health {
                t_us,
                rule,
                device,
                value,
                threshold,
            } => {
                // Per-device rules land on the device track; run-wide
                // rules land on the scheduler process.
                let (pid, tid) = match device {
                    Some(d) => (1, d),
                    None => (0, 0),
                };
                format!(
                    "{{\"name\":\"health {}\",\"cat\":\"health\",\"ph\":\"i\",\"s\":\"g\",\
                     \"ts\":{},\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"value\":{},\"threshold\":{}}}}}",
                    rule.label(),
                    num(t_us),
                    num(value),
                    num(threshold)
                )
            }
            TraceEvent::Forward {
                t_us,
                id,
                model,
                shard,
                transfer_us,
            } => format!(
                "{{\"name\":\"forward {id}\",\"cat\":\"cluster\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":2,\"tid\":{shard},\
                 \"args\":{{\"id\":{id},\"model\":{model},\"transfer_us\":{}}}}}",
                num(t_us),
                num(transfer_us)
            ),
            TraceEvent::Replicate {
                t_us,
                model,
                from_shard,
                to_shard,
                bytes,
                transfer_us,
            } => format!(
                // The wire time rendered as a span ending when the
                // replica becomes servable.
                "{{\"name\":\"replicate model {model}\",\"cat\":\"cluster\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":2,\"tid\":{to_shard},\
                 \"args\":{{\"model\":{model},\"from_shard\":{from_shard},\"bytes\":{bytes}}}}}",
                num(t_us - transfer_us),
                num(transfer_us)
            ),
            TraceEvent::ShardDown {
                t_us,
                shard,
                reclaimed,
            } => format!(
                "{{\"name\":\"shard down\",\"cat\":\"cluster\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":2,\"tid\":{shard},\
                 \"args\":{{\"reclaimed\":{reclaimed}}}}}",
                num(t_us)
            ),
            TraceEvent::SessionReroute {
                t_us,
                session,
                from_shard,
                to_shard,
            } => format!(
                "{{\"name\":\"reroute session {session}\",\"cat\":\"cluster\",\"ph\":\"i\",\
                 \"s\":\"t\",\"ts\":{},\"pid\":2,\"tid\":{to_shard},\
                 \"args\":{{\"session\":{session},\"from_shard\":{from_shard}}}}}",
                num(t_us)
            ),
        };
        push(&mut out, ev);
    }
    let _ = write!(
        out,
        "],\"otherData\":{{\"dropped_events\":{},\"capacity\":{}}}}}",
        trace.journal.dropped, trace.journal.capacity
    );
    out
}

/// Renders run metrics plus attribution as a Prometheus text-exposition
/// snapshot (counters, two histograms, per-cell stage gauges).
///
/// Equivalent to [`prometheus_snapshot_full`] with no scheduler stats,
/// timeline, health report, or shard gauges.
pub fn prometheus_snapshot(metrics: &ServeMetrics, trace: &RunTrace) -> String {
    prometheus_snapshot_full(metrics, trace, None, None, None, None)
}

/// Per-shard point-in-time gauges for the cluster-scope Prometheus
/// export: one row per shard in a
/// [`ClusterReport`](crate::cluster::ClusterReport), rendered by
/// [`prometheus_snapshot_full`] as `ernn_shard_*` gauge families with a
/// `shard` label.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardGauges {
    /// Shard index.
    pub shard: usize,
    /// End-of-run queue-delay EWMA (µs) — the load-feedback signal the
    /// router steered on.
    pub ewma_queue_us: f64,
    /// Bytes resident across the shard's devices (weight +
    /// session-state images).
    pub resident_bytes: u64,
    /// Streaming sessions live on the shard at end of run.
    pub live_sessions: usize,
}

/// The full Prometheus snapshot: everything [`prometheus_snapshot`]
/// renders, plus (when given) the scheduler's
/// [`SchedStats`] counters — residency,
/// session-state, fault, retry, failover, and migration activity — the
/// newest [`Timeline`] sample as point-in-time
/// gauges with the queue-delay EWMA, the
/// [`HealthReport`] rule-firing counters, and the cluster tier's
/// per-shard [`ShardGauges`].
pub fn prometheus_snapshot_full(
    metrics: &ServeMetrics,
    trace: &RunTrace,
    sched: Option<&SchedStats>,
    timeline: Option<&Timeline>,
    health: Option<&HealthReport>,
    shards: Option<&[ShardGauges]>,
) -> String {
    let mut out = String::new();
    let counter = |out: &mut String, name: &str, help: &str, v: String| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    };
    counter(
        &mut out,
        "ernn_requests_completed_total",
        "Requests served to completion.",
        metrics.completed.to_string(),
    );
    counter(
        &mut out,
        "ernn_requests_shed_total",
        "Requests rejected by admission control.",
        metrics.shed.to_string(),
    );
    counter(
        &mut out,
        "ernn_trace_events_total",
        "Trace events offered to the flight recorder.",
        (trace.journal.events.len() as u64 + trace.journal.dropped).to_string(),
    );
    counter(
        &mut out,
        "ernn_trace_events_dropped_total",
        "Trace events lost to ring-buffer overwrite.",
        trace.journal.dropped.to_string(),
    );

    for (name, help, hist) in [
        (
            "ernn_latency_us",
            "End-to-end request latency (virtual µs).",
            &metrics.latency_hist,
        ),
        (
            "ernn_queue_us",
            "Queueing delay, arrival to device start (virtual µs).",
            &metrics.queue_hist,
        ),
    ] {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (le, cum) in hist.cumulative_buckets() {
            let le = if le.is_finite() {
                format!("{le}")
            } else {
                "+Inf".to_string()
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_sum {}", num(hist.sum_us()));
        let _ = writeln!(out, "{name}_count {}", hist.count());
    }

    let _ = writeln!(
        out,
        "# HELP ernn_stage_us Virtual time attributed per (device, model, stage)."
    );
    let _ = writeln!(out, "# TYPE ernn_stage_us gauge");
    for (device, model, cell) in trace.attribution.iter() {
        for (stage, v) in [
            ("queue", cell.queue_us),
            ("load", cell.load_us),
            ("state", cell.state_us),
            ("compute", cell.compute_us),
            ("padding", cell.padding_us),
            ("aborted", cell.aborted_us),
        ] {
            let _ = writeln!(
                out,
                "ernn_stage_us{{device=\"{device}\",model=\"{model}\",stage=\"{stage}\"}} {}",
                num(v)
            );
        }
    }
    for (device, model, cell) in trace.attribution.iter() {
        let _ = writeln!(
            out,
            "ernn_stage_requests_total{{device=\"{device}\",model=\"{model}\"}} {}",
            cell.requests
        );
    }

    if let Some(s) = sched {
        for (name, help, v) in [
            (
                "ernn_sched_admitted_total",
                "Arrivals admitted into the scheduler queue.",
                s.admitted as u64,
            ),
            (
                "ernn_sched_shed_total",
                "Arrivals shed by admission control.",
                s.shed as u64,
            ),
            (
                "ernn_sched_model_loads_total",
                "Cold weight-image loads (residency misses).",
                s.model_loads,
            ),
            (
                "ernn_sched_model_evictions_total",
                "Weight images evicted from device BRAM.",
                s.model_evictions,
            ),
            (
                "ernn_sched_degraded_batches_total",
                "Batches capped by overload degradation.",
                s.degraded_batches,
            ),
            (
                "ernn_sched_state_loads_total",
                "Session-state reloads after eviction.",
                s.state_loads,
            ),
            (
                "ernn_sched_state_evictions_total",
                "Session-state images evicted from device BRAM.",
                s.state_evictions,
            ),
            (
                "ernn_sched_device_crashes_total",
                "Device crash faults applied.",
                s.device_crashes,
            ),
            (
                "ernn_sched_device_brownouts_total",
                "Device brownout faults applied.",
                s.device_brownouts,
            ),
            (
                "ernn_sched_device_transients_total",
                "Transient device faults applied.",
                s.device_transients,
            ),
            (
                "ernn_sched_batches_aborted_total",
                "In-flight batches aborted by faults.",
                s.batches_aborted,
            ),
            (
                "ernn_sched_retries_scheduled_total",
                "Aborted requests re-queued with backoff.",
                s.retries_scheduled,
            ),
            (
                "ernn_sched_retries_exhausted_total",
                "Requests shed after exhausting their retry budget.",
                s.retries_exhausted,
            ),
            (
                "ernn_sched_failovers_total",
                "Retried requests re-placed onto a different device.",
                s.failovers,
            ),
            (
                "ernn_sched_state_migrations_total",
                "Pinned sessions re-pinned after a device crash.",
                s.state_migrations,
            ),
        ] {
            counter(&mut out, name, help, v.to_string());
        }
        for (name, help, v) in [
            (
                "ernn_sched_load_us_total",
                "Virtual time spent streaming weight images (µs).",
                s.load_us_total,
            ),
            (
                "ernn_sched_state_load_us_total",
                "Virtual time spent reloading session state (µs).",
                s.state_load_us_total,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", num(v));
        }
    }

    if let Some(t) = timeline {
        let gauge = |out: &mut String, name: &str, help: &str, v: String| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "ernn_timeline_samples_total",
            "Timeline samples emitted (retained + overwritten).",
            (t.samples.len() as u64 + t.dropped).to_string(),
        );
        counter(
            &mut out,
            "ernn_timeline_dropped_total",
            "Timeline samples lost to ring wraparound.",
            t.dropped.to_string(),
        );
        gauge(
            &mut out,
            "ernn_ewma_queue_delay_us",
            "EWMA of per-request queue delay (virtual µs) - the calibrated load signal.",
            num(t.ewma_queue_us),
        );
        if let Some(i) = t.samples.len().checked_sub(1) {
            let s = &t.samples[i];
            gauge(
                &mut out,
                "ernn_queue_depth",
                "Queued requests at the newest timeline sample.",
                s.queue_depth.to_string(),
            );
            gauge(
                &mut out,
                "ernn_oldest_wait_us",
                "Wait of the longest-queued request at the newest sample (virtual µs).",
                num(s.oldest_wait_us),
            );
            gauge(
                &mut out,
                "ernn_live_sessions",
                "Live streaming sessions at the newest sample.",
                s.live_sessions.to_string(),
            );
            let _ = writeln!(
                out,
                "# HELP ernn_residency_bytes Resident image bytes by class at the newest sample."
            );
            let _ = writeln!(out, "# TYPE ernn_residency_bytes gauge");
            let _ = writeln!(
                out,
                "ernn_residency_bytes{{class=\"weights\"}} {}",
                s.weights_bytes
            );
            let _ = writeln!(
                out,
                "ernn_residency_bytes{{class=\"state\"}} {}",
                s.state_bytes
            );
            let _ = writeln!(
                out,
                "# HELP ernn_device_utilization Per-device utilization over the newest interval."
            );
            let _ = writeln!(out, "# TYPE ernn_device_utilization gauge");
            for (d, u) in t.device_util_row(i).iter().enumerate() {
                let _ = writeln!(out, "ernn_device_utilization{{device=\"{d}\"}} {}", num(*u));
            }
        }
    }

    if let Some(h) = health {
        counter(
            &mut out,
            "ernn_health_events_total",
            "Health rule firings over the run.",
            (h.events.len() as u64 + h.dropped).to_string(),
        );
        counter(
            &mut out,
            "ernn_health_events_dropped_total",
            "Health rule firings lost past the event cap.",
            h.dropped.to_string(),
        );
        let _ = writeln!(out, "# HELP ernn_health_rule_fired_total Firings per rule.");
        let _ = writeln!(out, "# TYPE ernn_health_rule_fired_total counter");
        for rule in [
            HealthRuleKind::SloBurnRate,
            HealthRuleKind::DeviceStuck,
            HealthRuleKind::ResidencyThrash,
            HealthRuleKind::RetryStorm,
        ] {
            let _ = writeln!(
                out,
                "ernn_health_rule_fired_total{{rule=\"{}\"}} {}",
                rule.label(),
                h.count(rule)
            );
        }
    }

    if let Some(shards) = shards {
        let _ = writeln!(
            out,
            "# HELP ernn_shard_ewma_queue_delay_us Per-shard queue-delay EWMA, \
             the router's load-feedback signal."
        );
        let _ = writeln!(out, "# TYPE ernn_shard_ewma_queue_delay_us gauge");
        for g in shards {
            let _ = writeln!(
                out,
                "ernn_shard_ewma_queue_delay_us{{shard=\"{}\"}} {}",
                g.shard,
                num(g.ewma_queue_us)
            );
        }
        let _ = writeln!(
            out,
            "# HELP ernn_shard_resident_bytes Bytes resident across the shard's \
             devices (weight + session-state images)."
        );
        let _ = writeln!(out, "# TYPE ernn_shard_resident_bytes gauge");
        for g in shards {
            let _ = writeln!(
                out,
                "ernn_shard_resident_bytes{{shard=\"{}\"}} {}",
                g.shard, g.resident_bytes
            );
        }
        let _ = writeln!(
            out,
            "# HELP ernn_shard_live_sessions Streaming sessions live on the shard."
        );
        let _ = writeln!(out, "# TYPE ernn_shard_live_sessions gauge");
        for g in shards {
            let _ = writeln!(
                out,
                "ernn_shard_live_sessions{{shard=\"{}\"}} {}",
                g.shard, g.live_sessions
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64) -> TraceEvent {
        TraceEvent::Enqueue {
            t_us: t,
            id: t as u64,
            model: 0,
            depth: 1,
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = FlightRecorder::disabled();
        assert!(!r.is_enabled());
        for i in 0..100 {
            r.record(ev(i as f64));
        }
        assert!(r.is_empty());
        assert_eq!(r.offered(), 0);
        assert_eq!(r.dropped(), 0);
        assert!(r.into_journal().events.is_empty());
    }

    #[test]
    fn ring_buffer_keeps_the_most_recent_events() {
        let mut r = FlightRecorder::new(TraceConfig::enabled(4));
        for i in 0..10 {
            r.record(ev(i as f64));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.offered(), 10);
        assert_eq!(r.dropped(), 6);
        let times: Vec<f64> = r.events().iter().map(|e| e.t_us()).collect();
        assert_eq!(times, vec![6.0, 7.0, 8.0, 9.0]);
        let journal = r.into_journal();
        assert_eq!(journal.dropped, 6);
        assert_eq!(journal.capacity, 4);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn enabled_config_rejects_zero_capacity() {
        let _ = TraceConfig::enabled(0);
    }

    #[test]
    fn histogram_tracks_exact_count_mean_max() {
        let mut h = LatencyHistogram::new();
        for v in [2.0, 4.0, 10.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean_us() - 29.0).abs() < 1e-12);
        assert_eq!(h.max_us(), 100.0);
    }

    #[test]
    fn histogram_quantiles_never_underestimate() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 3.7).collect();
        let mut h = LatencyHistogram::new();
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        for &v in &samples {
            h.record(v);
        }
        for q in [0.5, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.quantile(q);
            assert!(est >= exact - 1e-9, "q={q}: {est} < exact {exact}");
            assert!(
                est <= exact * (1.0 + LatencyHistogram::RELATIVE_ERROR_BOUND) + 1e-9,
                "q={q}: {est} overshoots exact {exact}"
            );
        }
    }

    #[test]
    fn histogram_swallows_hostile_samples() {
        let mut h = LatencyHistogram::new();
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0, 0.5, 2.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        // Only the finite samples reach the exact stats.
        assert_eq!(h.max_us(), 2.0);
        assert!(h.sum_us().is_finite());
        // Quantiles stay finite and ordered.
        assert!(h.quantile(0.5) <= h.quantile(1.0));
        assert!(h.quantile(1.0).is_finite());
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let (mut a, mut b, mut c) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for i in 0..50 {
            let v = (i * 17 % 900) as f64 + 0.5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_total() {
        let mut h = LatencyHistogram::new();
        for i in 0..200 {
            h.record((i % 37) as f64 + 0.25);
        }
        let buckets = h.cumulative_buckets();
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(buckets.last().unwrap().1, 200);
        assert!(buckets.last().unwrap().0.is_infinite());
    }

    #[test]
    fn attribution_accumulates_per_cell() {
        let mut a = StageAttribution::new();
        let delta = StageBreakdown {
            requests: 2,
            batches: 1,
            queue_us: 3.0,
            load_us: 1.0,
            state_us: 0.5,
            compute_us: 5.0,
            padding_us: 0.5,
            aborted_us: 0.25,
        };
        a.charge(0, 1, delta);
        a.charge(0, 1, delta);
        a.charge(1, 0, delta);
        assert_eq!(a.len(), 2);
        let cell = a.get(0, 1);
        assert_eq!(cell.requests, 4);
        assert_eq!(cell.batches, 2);
        assert!((cell.queue_us - 6.0).abs() < 1e-12);
        // busy_us counts productive occupancy only: aborted time is
        // tracked separately.
        assert!((cell.busy_us() - 13.0).abs() < 1e-12);
        assert!((cell.aborted_us - 0.5).abs() < 1e-12);
        assert_eq!(a.get(3, 3), StageBreakdown::default());
        let cells: Vec<(usize, usize)> = a.iter().map(|(d, m, _)| (d, m)).collect();
        assert_eq!(cells, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn chrome_export_is_structurally_sound() {
        let mut r = FlightRecorder::new(TraceConfig::enabled(64));
        r.record(TraceEvent::Admit {
            t_us: 0.0,
            id: 7,
            model: 1,
            predicted_us: 12.5,
        });
        r.record(TraceEvent::Dequeue {
            t_us: 4.0,
            id: 7,
            model: 1,
            queued_us: 4.0,
        });
        r.record(TraceEvent::ResidencyLoad {
            t_us: 4.0,
            device: 0,
            model: 1,
            load_us: 2.0,
            stall_cycles: 400,
            evicted: 1,
        });
        r.record(TraceEvent::Dispatch {
            t_us: 4.0,
            device: 0,
            model: 1,
            size: 1,
            start_us: 4.0,
            busy_us: 8.0,
        });
        r.record(TraceEvent::Complete {
            t_us: 12.0,
            id: 7,
            device: 0,
            model: 1,
            arrival_us: 0.0,
            dispatch_us: 4.0,
            deadline_met: true,
        });
        r.record(TraceEvent::DeviceDown {
            t_us: 14.0,
            device: 0,
            down_us: f64::INFINITY,
        });
        r.record(TraceEvent::DeviceUp {
            t_us: 20.0,
            device: 2,
        });
        r.record(TraceEvent::RetryScheduled {
            t_us: 14.0,
            id: 8,
            device: 0,
            attempt: 1,
            retry_at_us: 14.5,
        });
        r.record(TraceEvent::Failover {
            t_us: 15.0,
            id: 8,
            from_device: 0,
            to_device: 2,
        });
        r.record(TraceEvent::StateMigration {
            t_us: 15.0,
            session: 3,
            from_device: 0,
            to_device: 2,
            reload_us: 0.75,
        });
        r.record(TraceEvent::Health {
            t_us: 16.0,
            rule: HealthRuleKind::SloBurnRate,
            device: None,
            value: 7.5,
            threshold: 5.0,
        });
        r.record(TraceEvent::Health {
            t_us: 17.0,
            rule: HealthRuleKind::DeviceStuck,
            device: Some(2),
            value: 8.0,
            threshold: 8.0,
        });
        let mut trace = RunTrace {
            journal: r.into_journal(),
            attribution: StageAttribution::new(),
        };
        trace.attribution.charge(0, 1, StageBreakdown::default());
        let doc = chrome_trace_json(&trace);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with('}'));
        // Braces and brackets balance (no string in the doc contains
        // them, so plain counting is sound).
        let depth = doc.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced JSON nesting");
        for needle in [
            "\"admit\"",
            "\"queued\"",
            "\"load model 1\"",
            "\"batch model 1 ×1\"",
            "\"request 7\"",
            "\"process_name\"",
            "\"dropped_events\":0",
            "\"down\"",
            "\"up\"",
            "\"retry 8\"",
            "\"failover 8\"",
            "\"migrate session 3\"",
            "\"health slo_burn_rate\"",
            "\"health device_stuck\"",
            // The permanent crash's infinite down_us renders as 0, not
            // as bare `inf` (invalid JSON).
            "\"down_us\":0",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
    }

    #[test]
    fn prometheus_export_has_counters_histograms_and_stages() {
        use crate::request::{Response, Workload};
        let responses = vec![Response::served(
            0,
            0,
            Workload::Utterance,
            0.0,
            1.0,
            5.0,
            0,
            1,
            None,
        )];
        let metrics = ServeMetrics::compute(&responses, vec![4.0]);
        let mut trace = RunTrace::default();
        trace.attribution.charge(
            0,
            0,
            StageBreakdown {
                requests: 1,
                batches: 1,
                queue_us: 1.0,
                load_us: 0.0,
                state_us: 0.0,
                compute_us: 4.0,
                padding_us: 0.0,
                aborted_us: 0.0,
            },
        );
        let text = prometheus_snapshot(&metrics, &trace);
        assert!(text.contains("ernn_requests_completed_total 1"));
        assert!(text.contains("ernn_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("ernn_latency_us_count 1"));
        assert!(text.contains("ernn_stage_us{device=\"0\",model=\"0\",stage=\"compute\"} 4"));
        assert!(text.contains("ernn_stage_requests_total{device=\"0\",model=\"0\"} 1"));
        // The plain snapshot carries no scheduler/timeline/health series.
        assert!(!text.contains("ernn_sched_"));
        assert!(!text.contains("ernn_timeline_"));
        assert!(!text.contains("ernn_health_"));
        // Every exposition line is either a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn full_prometheus_export_merges_sched_timeline_and_health() {
        use crate::request::{Response, Workload};
        use crate::sched::SchedStats;
        use crate::timeline::{Timeline, TimelineSample};

        let responses = vec![Response::served(
            0,
            0,
            Workload::Utterance,
            0.0,
            1.0,
            5.0,
            0,
            1,
            None,
        )];
        let metrics = ServeMetrics::compute(&responses, vec![4.0]);
        let trace = RunTrace::default();
        let sched = SchedStats {
            admitted: 10,
            shed: 2,
            model_loads: 3,
            state_loads: 1,
            retries_scheduled: 4,
            failovers: 1,
            state_migrations: 1,
            load_us_total: 123.5,
            ..SchedStats::default()
        };
        let timeline = Timeline {
            interval_us: 100.0,
            num_devices: 2,
            dropped: 1,
            ewma_queue_us: 250.25,
            samples: vec![TimelineSample {
                t_us: 100.0,
                queue_depth: 3,
                oldest_wait_us: 40.0,
                live_sessions: 2,
                weights_bytes: 2048,
                state_bytes: 128,
                ..TimelineSample::default()
            }],
            device_util: vec![0.75, 0.25],
        };
        let health = HealthReport {
            events: vec![HealthEvent {
                t_us: 100.0,
                rule: HealthRuleKind::RetryStorm,
                device: None,
                value: 9.0,
                threshold: 8.0,
            }],
            dropped: 0,
            ewma_queue_us: 250.25,
            samples_evaluated: 1,
        };
        let text = prometheus_snapshot_full(
            &metrics,
            &trace,
            Some(&sched),
            Some(&timeline),
            Some(&health),
            None,
        );
        for needle in [
            "ernn_sched_admitted_total 10",
            "ernn_sched_shed_total 2",
            "ernn_sched_model_loads_total 3",
            "ernn_sched_retries_scheduled_total 4",
            "ernn_sched_failovers_total 1",
            "ernn_sched_state_migrations_total 1",
            "ernn_sched_load_us_total 123.5",
            "ernn_timeline_samples_total 2",
            "ernn_ewma_queue_delay_us 250.25",
            "ernn_queue_depth 3",
            "ernn_residency_bytes{class=\"weights\"} 2048",
            "ernn_residency_bytes{class=\"state\"} 128",
            "ernn_device_utilization{device=\"0\"} 0.75",
            "ernn_device_utilization{device=\"1\"} 0.25",
            "ernn_health_events_total 1",
            "ernn_health_rule_fired_total{rule=\"retry_storm\"} 1",
            "ernn_health_rule_fired_total{rule=\"slo_burn_rate\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        // Line discipline holds for the merged series too.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }
}
