//! Traffic generation for the serving runtime.
//!
//! Two canonical load shapes:
//!
//! * **Open-loop Poisson** — arrivals follow an exponential inter-arrival
//!   process at a fixed offered rate, independent of completions. This is
//!   the "heavy traffic from many users" shape; the system has no back
//!   pressure and queues grow when the offered rate exceeds capacity.
//! * **Closed-loop** — a fixed population of clients, each submitting its
//!   next request the moment the previous one completes. Throughput here
//!   is latency-bound (`concurrency / mean latency`).
//!
//! Open-loop traffic is materialized up front as a request list; closed
//! loops need completion feedback and are driven by
//! [`crate::runtime::ServeRuntime::run_closed_loop`].

use crate::request::Request;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Draws an exponential inter-arrival gap (µs) for the given rate.
fn exp_gap_us(rate_rps: f64, rng: &mut ChaCha8Rng) -> f64 {
    // Inverse-CDF sampling; clamp the uniform away from 0 so ln stays finite.
    let u: f64 = rng.gen_range(1e-12f64..1.0);
    -u.ln() / rate_rps * 1e6
}

/// Generates `num_requests` open-loop Poisson arrivals at `rate_rps`
/// requests/second, cycling through `utterances` for payloads.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `utterances` is empty or `rate_rps` is not positive.
pub fn open_loop_poisson(
    utterances: &[Vec<Vec<f32>>],
    num_requests: usize,
    rate_rps: f64,
    seed: u64,
) -> Vec<Request> {
    assert!(!utterances.is_empty(), "need at least one utterance");
    assert!(rate_rps > 0.0, "rate must be positive, got {rate_rps}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut now_us = 0.0f64;
    (0..num_requests)
        .map(|i| {
            now_us += exp_gap_us(rate_rps, &mut rng);
            Request::new(i as u64, utterances[i % utterances.len()].clone(), now_us)
        })
        .collect()
}

/// Attaches a uniform latency deadline (`slo_us` after arrival) to every
/// request.
pub fn with_uniform_slo(requests: Vec<Request>, slo_us: f64) -> Vec<Request> {
    requests
        .into_iter()
        .map(|r| {
            let arrival = r.arrival_us;
            r.with_deadline(arrival + slo_us)
        })
        .collect()
}

/// Synthesizes `count` random utterances of `dim`-dimensional frames with
/// lengths drawn from `frames` (inclusive). Deterministic in `seed`;
/// useful for benches and tests that don't need the full ASR corpus.
pub fn synthetic_utterances(
    count: usize,
    frames: (usize, usize),
    dim: usize,
    seed: u64,
) -> Vec<Vec<Vec<f32>>> {
    assert!(frames.0 >= 1 && frames.0 <= frames.1, "bad frame range");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(frames.0..=frames.1);
            (0..len)
                .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_increasing_and_rate_matched() {
        let utts = synthetic_utterances(4, (3, 6), 8, 1);
        let reqs = open_loop_poisson(&utts, 2000, 10_000.0, 7);
        assert_eq!(reqs.len(), 2000);
        for w in reqs.windows(2) {
            assert!(w[0].arrival_us < w[1].arrival_us);
        }
        // 2000 requests at 10k rps ≈ 200 ms span; allow generous slack.
        let span_s = reqs.last().unwrap().arrival_us * 1e-6;
        let empirical_rate = 2000.0 / span_s;
        assert!(
            (empirical_rate - 10_000.0).abs() / 10_000.0 < 0.15,
            "empirical rate {empirical_rate}"
        );
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let utts = synthetic_utterances(2, (2, 4), 4, 3);
        let a = open_loop_poisson(&utts, 50, 1000.0, 42);
        let b = open_loop_poisson(&utts, 50, 1000.0, 42);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.arrival_us, y.arrival_us);
        }
        let c = open_loop_poisson(&utts, 50, 1000.0, 43);
        assert_ne!(a[0].arrival_us, c[0].arrival_us);
    }

    #[test]
    fn slo_attaches_relative_deadline() {
        let utts = synthetic_utterances(1, (2, 2), 4, 3);
        let reqs = with_uniform_slo(open_loop_poisson(&utts, 5, 1000.0, 1), 500.0);
        for r in &reqs {
            assert_eq!(r.deadline_us, Some(r.arrival_us + 500.0));
        }
    }

    #[test]
    fn synthetic_utterances_respect_shape() {
        let utts = synthetic_utterances(10, (3, 7), 5, 9);
        assert_eq!(utts.len(), 10);
        for u in &utts {
            assert!((3..=7).contains(&u.len()));
            assert!(u.iter().all(|f| f.len() == 5));
        }
    }
}
