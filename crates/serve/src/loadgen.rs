//! Traffic generation for the serving runtime.
//!
//! Two canonical load shapes:
//!
//! * **Open-loop Poisson** — arrivals follow an exponential inter-arrival
//!   process at a fixed offered rate, independent of completions. This is
//!   the "heavy traffic from many users" shape; the system has no back
//!   pressure and queues grow when the offered rate exceeds capacity.
//! * **Closed-loop** — a fixed population of clients, each submitting its
//!   next request the moment the previous one completes. Throughput here
//!   is latency-bound (`concurrency / mean latency`).
//!
//! Open-loop traffic is materialized up front as a request list; closed
//! loops need completion feedback and are driven by
//! [`crate::runtime::ServeRuntime::run_closed_loop`].

use crate::request::Request;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Shape of an open-loop streaming-session load: how sessions start, how
/// their utterances are chunked, and what per-chunk deadline they carry.
#[derive(Debug, Clone, Copy)]
pub struct SessionLoad {
    /// Poisson session-start rate (sessions/second).
    pub session_rate_sps: f64,
    /// Frames per chunk (the last chunk of an utterance may be shorter).
    pub chunk_frames: usize,
    /// Real-time cadence between a session's chunk arrivals (µs) — a
    /// microphone delivering `chunk_frames` of audio per interval.
    pub chunk_gap_us: f64,
    /// Per-chunk deadline, relative to each chunk's arrival (µs);
    /// `None` leaves chunks deadline-free.
    pub chunk_slo_us: Option<f64>,
}

/// Draws an exponential inter-arrival gap (µs) for the given rate.
fn exp_gap_us(rate_rps: f64, rng: &mut ChaCha8Rng) -> f64 {
    // Inverse-CDF sampling; clamp the uniform away from 0 so ln stays finite.
    let u: f64 = rng.gen_range(1e-12f64..1.0);
    -u.ln() / rate_rps * 1e6
}

/// Generates `num_requests` open-loop Poisson arrivals at `rate_rps`
/// requests/second, cycling through `utterances` for payloads.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `utterances` is empty or `rate_rps` is not positive.
pub fn open_loop_poisson(
    utterances: &[Vec<Vec<f32>>],
    num_requests: usize,
    rate_rps: f64,
    seed: u64,
) -> Vec<Request> {
    assert!(!utterances.is_empty(), "need at least one utterance");
    assert!(rate_rps > 0.0, "rate must be positive, got {rate_rps}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut now_us = 0.0f64;
    (0..num_requests)
        .map(|i| {
            now_us += exp_gap_us(rate_rps, &mut rng);
            Request::new(i as u64, utterances[i % utterances.len()].clone(), now_us)
        })
        .collect()
}

/// Generates `num_sessions` open-loop streaming sessions: session starts
/// follow a Poisson process at `shape.session_rate_sps`, each session
/// streams one utterance from the pool (cycled) as
/// `shape.chunk_frames`-frame chunks arriving every `shape.chunk_gap_us`,
/// and every chunk carries session id, chunk index, a `last` mark on the
/// final chunk, and (optionally) a per-chunk deadline. Request ids are
/// globally unique and the returned list is sorted by arrival time, so
/// concurrent sessions interleave exactly as a runtime would see them.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `utterances` is empty, the rate is not positive,
/// `chunk_frames` is zero, or `chunk_gap_us` is not positive.
pub fn open_loop_sessions(
    utterances: &[Vec<Vec<f32>>],
    num_sessions: usize,
    shape: SessionLoad,
    seed: u64,
) -> Vec<Request> {
    assert!(!utterances.is_empty(), "need at least one utterance");
    assert!(
        shape.session_rate_sps > 0.0,
        "session rate must be positive, got {}",
        shape.session_rate_sps
    );
    assert!(shape.chunk_frames >= 1, "chunks need at least one frame");
    assert!(
        shape.chunk_gap_us > 0.0,
        "chunk cadence must be positive, got {}",
        shape.chunk_gap_us
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut start_us = 0.0f64;
    let mut requests = Vec::new();
    let mut next_id = 0u64;
    for session in 0..num_sessions {
        start_us += exp_gap_us(shape.session_rate_sps, &mut rng);
        let utt = &utterances[session % utterances.len()];
        let num_chunks = utt.len().div_ceil(shape.chunk_frames);
        for i in 0..num_chunks {
            let frames =
                utt[i * shape.chunk_frames..((i + 1) * shape.chunk_frames).min(utt.len())].to_vec();
            let arrival = start_us + i as f64 * shape.chunk_gap_us;
            let mut r = Request::chunk(
                next_id,
                session as u64,
                i as u32,
                i == num_chunks - 1,
                frames,
                arrival,
            );
            if let Some(slo) = shape.chunk_slo_us {
                r = r.with_deadline(arrival + slo);
            }
            requests.push(r);
            next_id += 1;
        }
    }
    requests.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us).then(a.id.cmp(&b.id)));
    requests
}

/// Attaches a uniform latency deadline (`slo_us` after arrival) to every
/// request.
pub fn with_uniform_slo(requests: Vec<Request>, slo_us: f64) -> Vec<Request> {
    requests
        .into_iter()
        .map(|r| {
            let arrival = r.arrival_us;
            r.with_deadline(arrival + slo_us)
        })
        .collect()
}

/// Synthesizes `count` random utterances of `dim`-dimensional frames with
/// lengths drawn from `frames` (inclusive). Deterministic in `seed`;
/// useful for benches and tests that don't need the full ASR corpus.
pub fn synthetic_utterances(
    count: usize,
    frames: (usize, usize),
    dim: usize,
    seed: u64,
) -> Vec<Vec<Vec<f32>>> {
    assert!(frames.0 >= 1 && frames.0 <= frames.1, "bad frame range");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(frames.0..=frames.1);
            (0..len)
                .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_increasing_and_rate_matched() {
        let utts = synthetic_utterances(4, (3, 6), 8, 1);
        let reqs = open_loop_poisson(&utts, 2000, 10_000.0, 7);
        assert_eq!(reqs.len(), 2000);
        for w in reqs.windows(2) {
            assert!(w[0].arrival_us < w[1].arrival_us);
        }
        // 2000 requests at 10k rps ≈ 200 ms span; allow generous slack.
        let span_s = reqs.last().unwrap().arrival_us * 1e-6;
        let empirical_rate = 2000.0 / span_s;
        assert!(
            (empirical_rate - 10_000.0).abs() / 10_000.0 < 0.15,
            "empirical rate {empirical_rate}"
        );
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let utts = synthetic_utterances(2, (2, 4), 4, 3);
        let a = open_loop_poisson(&utts, 50, 1000.0, 42);
        let b = open_loop_poisson(&utts, 50, 1000.0, 42);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.arrival_us, y.arrival_us);
        }
        let c = open_loop_poisson(&utts, 50, 1000.0, 43);
        assert_ne!(a[0].arrival_us, c[0].arrival_us);
    }

    #[test]
    fn slo_attaches_relative_deadline() {
        let utts = synthetic_utterances(1, (2, 2), 4, 3);
        let reqs = with_uniform_slo(open_loop_poisson(&utts, 5, 1000.0, 1), 500.0);
        for r in &reqs {
            assert_eq!(r.deadline_us, Some(r.arrival_us + 500.0));
        }
    }

    #[test]
    fn session_loads_are_valid_interleaved_streams() {
        let utts = synthetic_utterances(3, (7, 13), 8, 5);
        let shape = SessionLoad {
            session_rate_sps: 20_000.0,
            chunk_frames: 4,
            chunk_gap_us: 40.0,
            chunk_slo_us: Some(500.0),
        };
        let reqs = open_loop_sessions(&utts, 6, shape, 11);
        // Globally sorted, unique ids.
        for w in reqs.windows(2) {
            assert!(w[0].arrival_us <= w[1].arrival_us);
        }
        let mut ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reqs.len());
        // Per session: contiguous indices, strict cadence, a final
        // `last`, per-chunk deadlines, frames re-assembling the
        // utterance.
        for s in 0..6u64 {
            let mut chunks: Vec<&Request> =
                reqs.iter().filter(|r| r.session() == Some(s)).collect();
            chunks.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us));
            let frames: usize = chunks.iter().map(|c| c.num_frames()).sum();
            assert_eq!(frames, utts[s as usize % 3].len());
            for (i, c) in chunks.iter().enumerate() {
                let crate::request::Workload::Chunk { index, last, .. } = c.workload else {
                    panic!("session loads are all chunks");
                };
                assert_eq!(index as usize, i);
                assert_eq!(last, i == chunks.len() - 1);
                assert_eq!(c.deadline_us, Some(c.arrival_us + 500.0));
            }
        }
        // Sessions at this rate overlap: some interleaving must occur.
        let sessions_in_order: Vec<_> = reqs.iter().map(|r| r.session().unwrap()).collect();
        let mut changes = 0;
        for w in sessions_in_order.windows(2) {
            changes += usize::from(w[0] != w[1]);
        }
        assert!(changes + 1 > 6, "sessions interleave: {changes} switches");
    }

    #[test]
    fn synthetic_utterances_respect_shape() {
        let utts = synthetic_utterances(10, (3, 7), 5, 9);
        assert_eq!(utts.len(), 10);
        for u in &utts {
            assert!((3..=7).contains(&u.len()));
            assert!(u.iter().all(|f| f.len() == 5));
        }
    }
}
